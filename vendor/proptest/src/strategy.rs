//! Value-generation strategies (no shrinking; see crate docs).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy; used by `prop_oneof!` so type inference can unify
/// differently-shaped arms.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn new_value(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer types usable as range-strategy bounds.
pub trait RangeValue: Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self {
                assert!(low < high, "range strategy: empty range");
                let span = (high as i128 - low as i128) as u128;
                let scaled = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + scaled) as $t
            }
            fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                assert!(low <= high, "range strategy: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let scaled = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + scaled) as $t
            }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof: all weights are zero");
        Union {
            choices,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.u64_below(self.total_weight);
        for (weight, strat) in &self.choices {
            if pick < *weight as u64 {
                return strat.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick exceeded total weight");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..10_000 {
            let x = (0u64..(1 << 44)).new_value(&mut rng);
            assert!(x < (1 << 44));
            let y = (3usize..15).new_value(&mut rng);
            assert!((3..15).contains(&y));
            let z = (0u8..=4).new_value(&mut rng);
            assert!(z <= 4);
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::for_case(1);
        let s = (0u8..10).prop_map(|v| v as u64 + 100);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((100..110).contains(&v));
        }
        assert_eq!(Just(41u8).new_value(&mut rng), 41);
    }

    #[test]
    fn union_respects_zero_weight() {
        let mut rng = TestRng::for_case(2);
        let u = Union::new(vec![(0, boxed(Just(1u8))), (5, boxed(Just(2u8)))]);
        for _ in 0..200 {
            assert_eq!(u.new_value(&mut rng), 2);
        }
    }

    #[test]
    fn union_hits_every_positive_arm() {
        let mut rng = TestRng::for_case(3);
        let u = Union::new(vec![
            (1, boxed(Just(0usize))),
            (2, boxed(Just(1usize))),
            (3, boxed(Just(2usize))),
        ]);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[u.new_value(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case(4);
        let (a, b, c) = (0u8..2, 10u16..12, any::<bool>()).new_value(&mut rng);
        assert!(a < 2);
        assert!((10..12).contains(&b));
        let _: bool = c;
    }

    #[test]
    fn collection_vec_respects_size_range() {
        let mut rng = TestRng::for_case(5);
        let s = crate::collection::vec(any::<u8>(), 2..7);
        for _ in 0..500 {
            let v = s.new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }
}
