//! Case runner support: configuration, per-case RNG, and the error type
//! `prop_assert!` returns.

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (SplitMix64). Case `i` of every test
/// uses the same stream on every run, so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case`.
    pub fn for_case(case: u64) -> Self {
        // Golden-ratio offset decorrelates consecutive case indices.
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below: zero bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[low, high)`.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "usize_in: empty range");
        low + self.u64_below((high - low) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4).map(|_| TestRng::for_case(7).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(
            TestRng::for_case(1).next_u64(),
            TestRng::for_case(2).next_u64()
        );
    }

    #[test]
    fn u64_below_in_bounds() {
        let mut rng = TestRng::for_case(9);
        for _ in 0..10_000 {
            assert!(rng.u64_below(17) < 17);
        }
    }
}
