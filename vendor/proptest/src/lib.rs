//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Same macro and strategy surface (`proptest!`, `prop_assert!`,
//! `prop_oneof!`, `any`, `Just`, `prop_map`, `collection::vec`,
//! `ProptestConfig`) backed by a deterministic random-case runner.
//! Two deliberate simplifications relative to upstream:
//!
//! * **No shrinking** — a failing case reports its exact inputs (all
//!   strategies here produce `Debug` values) instead of a minimised one.
//! * **Deterministic seeding** — case `i` of every test derives its RNG
//!   from `i`, so CI failures reproduce exactly.
//!
//! Swap the path dependency for the real crate when crates.io is
//! reachable; test sources need no changes.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// One-glob import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                    $(let $arg = ($strat).new_value(&mut rng);)+
                    let inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest case {case}/{} failed: {err}\n  inputs: {inputs}",
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}
