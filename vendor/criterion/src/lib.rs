//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides the same macro and method surface (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`) backed by a plain wall-clock harness that prints
//! mean/min/max per benchmark. No statistics, plots, or baselines — swap
//! the path dependency for the real crate when crates.io is reachable.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle; one per bench binary.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Parses harness arguments. Cargo passes `--bench` plus optional
    /// filters; this shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.default_sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (required by the real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    println!(
        "bench {id}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        b.samples.len()
    );
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: an untimed warm-up call sizes a per-sample batch
    /// so each timed sample runs long enough (≥ ~100 µs) that clock-read
    /// overhead cannot swamp nanosecond-scale routines, then records
    /// `sample_size` samples of the mean per-call duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const TARGET_SAMPLE: Duration = Duration::from_micros(100);
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed();
        let batch = if once >= TARGET_SAMPLE {
            1
        } else {
            // Integer ceil of target/once, capped to keep pathological
            // sub-nanosecond readings from exploding the run time.
            (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

/// Declares a bench entry point, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
        });
        g.finish();
        // Routine is slower than the batch target: 1 warm-up + 3 samples,
        // one call each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn macros_compile_into_callables() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, target);
        benches();
    }
}
