//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access; this crate provides the
//! same trait/method names (`Rng::gen`, `gen_range`, `gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`) over a xoshiro256++
//! generator. Streams differ from upstream `rand`, which is fine here:
//! every consumer seeds explicitly and compares against a model computed
//! in the same run, never against recorded upstream sequences.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (SplitMix64-expanded, so nearby
    /// seeds give unrelated streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Widening multiply: unbiased to within 2^-64 for the
                // spans this workspace uses.
                let scaled = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + scaled) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let scaled = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + scaled) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample(rng)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, f64::from_bits(high.to_bits() + 1))
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// NOT the upstream `StdRng` algorithm (ChaCha12); see the crate docs
    /// for why that is acceptable here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(b'a'..=b'e');
            assert!((b'a'..=b'e').contains(&y));
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
