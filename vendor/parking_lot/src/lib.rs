//! Offline shim for the subset of `parking_lot` this workspace uses,
//! implemented over `std::sync`. The build environment has no crates.io
//! access; swap this path dependency for the real crate when it does.
//!
//! Differences from real `parking_lot` are invisible to this workspace:
//! poisoning is swallowed (parking_lot has none), and fairness/eventual
//! fairness is whatever `std::sync::Mutex` provides.

use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (non-poisoning, like `parking_lot`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` wait API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until the condvar is notified, atomically releasing the
    /// guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard invariant");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }
}
