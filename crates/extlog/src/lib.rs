//! External object-granularity undo log (paper §4.2).
//!
//! The external log is the conventional fallback the InCLL design leans on
//! for infrequent, complex modifications: node splits, internal-node
//! updates, layer conversions, and any case the in-cache-line logs cannot
//! cover (two values in one cache line modified in one epoch, a remove
//! followed by an insert into the same slot, epoch-tag wrap-around).
//!
//! Protocol (per logged object):
//!
//! 1. copy the object's current bytes into the log as an entry tagged with
//!    the current epoch and a checksum,
//! 2. `clwb` the entry's cache lines and `sfence` — the entry is durable,
//! 3. only then may the caller modify the object.
//!
//! A node is logged at most once per epoch (the caller tracks this with the
//! node's `logged` bit), so entries are mutually independent and recovery
//! can replay them in any order or in parallel (§4.2).
//!
//! The log is *logically* discarded at every epoch boundary — after the
//! checkpoint flush, all logged pre-images are obsolete — by resetting the
//! per-slot append cursors. Entries are never erased; epoch tags plus the
//! contiguous-failed-run rule (see [`ExtLog::replay`]) make stale entries
//! inert. Crucially, cursors are **not** reset by recovery itself: replay
//! writes are unflushed, so the pre-images they came from must survive
//! until the first post-recovery checkpoint (the paper: "if the system
//! crashes before recovery is complete, it can be applied again").
//!
//! # Batched persistence
//!
//! Step 2's per-entry `clwb`+`sfence` is the default, but the fence cost
//! dominates small entries. [`ExtLog::set_persistence_granularity`]
//! enables a **staged** protocol for the entries that can tolerate it.
//! Which entries can is fixed by the write-ahead invariant above: an
//! undo entry guards an in-place modification the caller performs the
//! moment the append returns, and any dirty line may be evicted — i.e.
//! persisted — at a crash, so the pre-image must be durable *before*
//! the modification is even issued. Undo appends therefore always
//! complete step 2 before returning, at every granularity. What a
//! nonzero granularity changes is *how*: the append seals the slot's
//! whole staged run (this entry plus anything staged before it) with
//! one `clwb_range`+`sfence`, so entries that guard nothing yet can
//! share the guarded entry's fence.
//!
//! The entries that guard nothing yet are batch **intents**
//! ([`ExtLog::log_intent_in`]): an intent describes an operation whose
//! guarded store — the batch's commit record — has not happened when
//! the intent is appended. Under a nonzero granularity intents
//! accumulate in their (thread, domain) buffer and one
//! `clwb_range`+`sfence` covers the run per `granularity` bytes — or
//! earlier, at the explicit [`ExtLog::drain`] the batch layer issues
//! before flushing the commit record, or the domain's boundary
//! ([`ExtLog::drain_domain`]). Crash semantics are unchanged: an
//! un-drained intent is indistinguishable from one never staged, and a
//! batch with no durable commit record is dropped either way.
//!
//! # Epoch domains
//!
//! Under per-shard epoch domains the log region is subdivided into one
//! append buffer per **(thread, domain)** pair, because the per-domain
//! state above — discard cursors at *that domain's* boundary, replay *that
//! domain's* contiguous failed run — only works if one buffer never mixes
//! entries from two domains' epoch timelines. [`ExtLog::create_sharded`]
//! fixes the domain count on media ([`superblock::SB_EXTLOG_DOMAINS`]);
//! [`ExtLog::log_object_in`] appends to the caller's (thread, domain)
//! buffer, sealing the domain id into the checksummed entry tag;
//! [`ExtLog::reset_domain`] and [`ExtLog::replay_domain`] scope discard
//! and replay to one domain. A 1-domain log is bit-identical to the
//! pre-domain layout.

use std::sync::atomic::{AtomicU64, Ordering};

use incll_pmem::{superblock, PArena};

mod checksum;
pub use checksum::fnv1a64;

/// Fixed per-entry header size in bytes.
const HEADER: u64 = 32;

/// The header's third word packs the payload length (low 48 bits) with an
/// opaque caller tag (high 16 bits — the durable tree stores the owning
/// shard id there so recovery can attribute replay work per shard).
const LEN_MASK: u64 = (1 << 48) - 1;

/// Tag bit marking a batch **intent** entry (see [`ExtLog::log_intent_in`]).
/// An intent shares its (thread, domain) buffer with that domain's undo
/// entries — its tag is `domain | INTENT_TAG_BIT` — but carries a redo
/// payload instead of a pre-image: replay checksum-validates it, collects
/// it into [`ReplayReport::intents`], and skips it without copying
/// anything back. Domain ids are shard indices (< 64), so the bit never
/// collides with a real domain tag.
pub const INTENT_TAG_BIT: u16 = 1 << 15;

#[inline]
fn pack_len(len: u64, tag: u16) -> u64 {
    debug_assert!(len <= LEN_MASK);
    len | (tag as u64) << 48
}

/// Per-thread append state, padded to avoid false sharing.
#[repr(align(64))]
struct Cursor(AtomicU64);

/// Start of a slot's **staged** (appended but not yet persisted) byte
/// range, which always ends at the slot's cursor. `staged == cursor`
/// means the slot is fully drained. Only meaningful under a nonzero
/// [`ExtLog::set_persistence_granularity`]; the eager path keeps it
/// pinned to the cursor.
#[repr(align(64))]
struct Staged(AtomicU64);

/// Per-tag replay totals (see [`ExtLog::log_object_tagged`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TagCounts {
    /// The caller-supplied entry tag.
    pub tag: u16,
    /// Entries replayed carrying this tag.
    pub entries: u64,
    /// Payload bytes replayed carrying this tag.
    pub bytes: u64,
}

/// A batch intent entry surfaced (not applied) by replay: the staged redo
/// payload of one batch operation on one shard, awaiting in-doubt
/// resolution by the layer that owns the batch-commit table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentEntry {
    /// The thread slot the intent was appended from.
    pub thread: usize,
    /// The domain epoch the intent was staged in.
    pub epoch: u64,
    /// The batch id (stored in the entry's target word — intents have no
    /// target object; they describe an operation, not a pre-image).
    pub batch_id: u64,
    /// The opaque redo payload, exactly as staged.
    pub payload: Vec<u8>,
}

/// Report returned by [`ExtLog::replay`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Entries copied back into their objects.
    pub entries_applied: u64,
    /// Total payload bytes copied back.
    pub bytes_applied: u64,
    /// Where each slot's valid prefix ended (cursor positions after
    /// replay).
    pub scan_stopped_at: Vec<u64>,
    /// Every applied `(target, len)`, for structural post-passes (the
    /// durable tree re-derives child parent pointers from restored
    /// interior images).
    pub applied: Vec<(u64, u64)>,
    /// Replay totals grouped by entry tag, ascending by tag (tags that
    /// never appeared are absent).
    pub per_tag: Vec<TagCounts>,
    /// Batch intent entries found in the scanned valid prefixes, in slot
    /// order then append order (deterministic at any caller parallelism
    /// over distinct domains). Intents are validated and collected, never
    /// applied — resolution belongs to the batch-commit layer.
    pub intents: Vec<IntentEntry>,
}

impl ReplayReport {
    fn count_tag(&mut self, tag: u16, bytes: u64) {
        match self.per_tag.binary_search_by_key(&tag, |t| t.tag) {
            Ok(i) => {
                self.per_tag[i].entries += 1;
                self.per_tag[i].bytes += bytes;
            }
            Err(i) => self.per_tag.insert(
                i,
                TagCounts {
                    tag,
                    entries: 1,
                    bytes,
                },
            ),
        }
    }
}

/// The external undo log: per-thread durable append buffers.
///
/// # Example
///
/// ```
/// use incll_pmem::{superblock, PArena};
/// use incll_extlog::ExtLog;
///
/// # fn main() -> Result<(), incll_pmem::Error> {
/// let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
/// superblock::format(&arena);
/// let log = ExtLog::create(&arena, 2, 64 * 1024)?;
///
/// // A durable object we will clobber and then restore.
/// let obj = arena.carve(64, 64)?;
/// arena.pwrite_u64(obj, 0xAAAA);
/// log.log_object(0, /*epoch*/ 1, obj, 64); // undo image
/// arena.pwrite_u64(obj, 0xBBBB); // the guarded modification
///
/// // Crash in epoch 1: replay restores the pre-image.
/// let report = log.replay(1, 1);
/// assert_eq!(report.entries_applied, 1);
/// assert_eq!(arena.pread_u64(obj), 0xAAAA);
/// # Ok(())
/// # }
/// ```
pub struct ExtLog {
    arena: PArena,
    region: u64,
    /// Capacity of one (thread, domain) buffer, in bytes.
    per_slot: u64,
    /// Thread slots.
    threads: usize,
    /// Epoch domains (1 = the legacy single-domain layout).
    domains: usize,
    /// One cursor per (thread, domain), thread-major.
    cursors: Vec<Cursor>,
    /// One staged-range start per (thread, domain), thread-major.
    staged: Vec<Staged>,
    /// Batched-persistence threshold in bytes; 0 = eager per-entry
    /// `clwb`+`sfence` (the legacy protocol, byte-for-byte).
    granularity: AtomicU64,
}

impl ExtLog {
    /// Carves a fresh single-domain log region for `slots` threads of
    /// `per_thread` bytes each and records it in the superblock.
    ///
    /// # Errors
    ///
    /// Propagates arena carve failures ([`incll_pmem::Error::OutOfMemory`]).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn create(arena: &PArena, slots: usize, per_thread: usize) -> incll_pmem::Result<Self> {
        Self::create_sharded(arena, slots, per_thread, 1)
    }

    /// Carves a fresh log region subdivided per (thread, domain): each of
    /// `threads` thread slots gets `domains` independent buffers of
    /// `per_thread / domains` bytes (the per-thread total is unchanged by
    /// sharding), and the layout is recorded in the superblock.
    ///
    /// # Errors
    ///
    /// Propagates arena carve failures ([`incll_pmem::Error::OutOfMemory`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `domains` is zero.
    pub fn create_sharded(
        arena: &PArena,
        threads: usize,
        per_thread: usize,
        domains: usize,
    ) -> incll_pmem::Result<Self> {
        assert!(threads > 0, "external log needs at least one slot");
        assert!(domains > 0, "external log needs at least one domain");
        let per_slot = ((per_thread / domains) as u64 + 63) & !63;
        let region = arena.carve(per_slot as usize * threads * domains, 64)?;
        arena.pwrite_u64(superblock::SB_EXTLOG_OFF, region);
        arena.pwrite_u64(superblock::SB_EXTLOG_THREADS, threads as u64);
        arena.pwrite_u64(superblock::SB_EXTLOG_PER_THREAD, per_slot);
        arena.pwrite_u64(superblock::SB_EXTLOG_DOMAINS, domains as u64);
        arena.clwb_range(superblock::SB_EXTLOG_OFF, 32);
        arena.sfence();
        Ok(Self::with_layout(
            arena.clone(),
            region,
            per_slot,
            threads,
            domains,
        ))
    }

    /// Opens the log recorded in the superblock of a recovered arena.
    ///
    /// Cursors start at zero; [`ExtLog::replay`] repositions them past the
    /// surviving valid prefix so new entries do not clobber pre-images that
    /// are still needed.
    ///
    /// # Panics
    ///
    /// Panics if the superblock carries no log descriptor.
    pub fn open(arena: &PArena) -> Self {
        let region = arena.pread_u64(superblock::SB_EXTLOG_OFF);
        let threads = arena.pread_u64(superblock::SB_EXTLOG_THREADS) as usize;
        let per_slot = arena.pread_u64(superblock::SB_EXTLOG_PER_THREAD);
        // 0 reads as 1 so a descriptor written without the domain word
        // (tests poking at raw layouts) stays interpretable.
        let domains = (arena.pread_u64(superblock::SB_EXTLOG_DOMAINS) as usize).max(1);
        assert!(
            region != 0 && threads > 0,
            "arena has no external log descriptor"
        );
        Self::with_layout(arena.clone(), region, per_slot, threads, domains)
    }

    fn with_layout(
        arena: PArena,
        region: u64,
        per_slot: u64,
        threads: usize,
        domains: usize,
    ) -> Self {
        ExtLog {
            arena,
            region,
            per_slot,
            threads,
            domains,
            cursors: (0..threads * domains)
                .map(|_| Cursor(AtomicU64::new(0)))
                .collect(),
            staged: (0..threads * domains)
                .map(|_| Staged(AtomicU64::new(0)))
                .collect(),
            granularity: AtomicU64::new(0),
        }
    }

    /// Sets the batched-persistence threshold: with `bytes == 0` (the
    /// default) every append is made durable individually before it
    /// returns — the paper's per-entry `clwb`+`sfence` protocol,
    /// byte-for-byte. With `bytes > 0`, batch **intents**
    /// ([`ExtLog::log_intent_in`]) **stage**: they accumulate in their
    /// (thread, domain) buffer and one `clwb_range`+`sfence` covers the
    /// whole staged run once it reaches `bytes` — or earlier, at the
    /// explicit [`ExtLog::drain`] the batch layer issues before its
    /// commit record, or the domain's epoch boundary
    /// ([`ExtLog::drain_domain`]).
    ///
    /// Undo-object appends ([`ExtLog::log_object`] and friends) are
    /// **never** staged past their return: they guard an in-place
    /// modification the caller performs immediately, and a crash may
    /// persist that modification's lines at any time, so the pre-image
    /// must be durable first (the write-ahead invariant). At a nonzero
    /// granularity an undo append still pays exactly one
    /// `clwb_range`+`sfence`, but it covers the slot's whole staged run
    /// — intents staged since the last drain ride along for free.
    ///
    /// Crash semantics are unchanged at every granularity: an un-drained
    /// intent is indistinguishable from one never staged — replay's
    /// valid-prefix scan stops at it — and its batch, necessarily
    /// lacking a commit record, is dropped either way.
    ///
    /// Set once, before appends begin (the store wires it from its open
    /// options); it is not meant to be toggled mid-stream.
    pub fn set_persistence_granularity(&self, bytes: u64) {
        self.granularity.store(bytes, Ordering::Relaxed);
    }

    /// The current batched-persistence threshold (0 = eager).
    pub fn persistence_granularity(&self) -> u64 {
        self.granularity.load(Ordering::Relaxed)
    }

    /// Bytes appended to `(thread, domain)`'s buffer but not yet
    /// persisted (staged behind the granularity threshold).
    pub fn staged_bytes(&self, thread: usize, domain: usize) -> u64 {
        let slot = self.slot_index(thread, domain);
        self.cursors[slot]
            .0
            .load(Ordering::Relaxed)
            .saturating_sub(self.staged[slot].0.load(Ordering::Relaxed))
    }

    /// Persists `(thread, domain)`'s staged run, if any: one
    /// `clwb_range` over it plus one `sfence`. The batch layer calls
    /// this after staging a batch's intents and before flushing the
    /// commit record, so an intent is always durable before the record
    /// that makes it actionable. No-op when fully drained (in
    /// particular, always, under eager granularity 0 — and always after
    /// an undo-object append, which seals its own run).
    pub fn drain(&self, thread: usize, domain: usize) {
        let slot = self.slot_index(thread, domain);
        if self.drain_clwb(slot) {
            self.arena.sfence();
        }
    }

    /// Persists every thread's staged run in `domain` — the domain's
    /// epoch-boundary drain (writers are quiesced there, so the sweep is
    /// race-free). All slots' `clwb`s share a single trailing `sfence`.
    pub fn drain_domain(&self, domain: usize) {
        let mut any = false;
        for t in 0..self.threads {
            any |= self.drain_clwb(self.slot_index(t, domain));
        }
        if any {
            self.arena.sfence();
        }
    }

    /// Issues the `clwb_range` for `slot`'s staged run and marks it
    /// drained; returns whether anything was staged. The caller owns the
    /// trailing `sfence`.
    fn drain_clwb(&self, slot: usize) -> bool {
        let cur = self.cursors[slot].0.load(Ordering::Relaxed);
        let start = self.staged[slot].0.load(Ordering::Relaxed);
        if start >= cur {
            return false;
        }
        let slot_base = self.region + (slot as u64) * self.per_slot;
        self.arena
            .clwb_range(slot_base + start, (cur - start) as usize);
        self.staged[slot].0.store(cur, Ordering::Relaxed);
        true
    }

    /// Number of per-thread slots.
    pub fn slots(&self) -> usize {
        self.threads
    }

    /// Number of epoch domains the region is subdivided for.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The raw buffer index of `(thread, domain)`.
    #[inline]
    fn slot_index(&self, thread: usize, domain: usize) -> usize {
        debug_assert!(thread < self.threads && domain < self.domains);
        thread * self.domains + domain
    }

    /// Bytes currently appended in thread `slot`'s domain-0 buffer.
    pub fn used(&self, slot: usize) -> u64 {
        self.used_in(slot, 0)
    }

    /// Bytes currently appended in `(thread, domain)`'s buffer.
    pub fn used_in(&self, thread: usize, domain: usize) -> u64 {
        self.cursors[self.slot_index(thread, domain)]
            .0
            .load(Ordering::Relaxed)
    }

    /// Logs the `len` bytes at arena offset `target` as an undo entry for
    /// `epoch` in thread `slot`'s **domain-0** buffer, making the entry
    /// durable (`clwb` + `sfence`) before returning — at every
    /// persistence granularity, since the caller may modify the object
    /// as soon as this returns (the write-ahead invariant).
    ///
    /// Each slot is single-writer: callers pass their own thread's slot.
    ///
    /// Entries carry tag 0; use [`ExtLog::log_object_in`] on a sharded log
    /// (the durable tree tags each entry with its shard id), or
    /// [`ExtLog::log_object_tagged`] for an arbitrary tag.
    ///
    /// # Panics
    ///
    /// Panics if the slot's buffer is full (size the log for the worst-case
    /// nodes-per-epoch; the paper measures 84 K nodes per 64 ms epoch on a
    /// 1 M-key tree, §6.3) or if `slot` is out of range.
    pub fn log_object(&self, slot: usize, epoch: u64, target: u64, len: usize) {
        self.log_object_tagged(slot, epoch, target, len, 0);
    }

    /// Logs an undo entry for `epoch` **of domain `domain`** in
    /// `(thread, domain)`'s buffer. The domain id is sealed into the
    /// checksummed entry tag, so replay can verify attribution.
    ///
    /// # Panics
    ///
    /// As for [`ExtLog::log_object`], plus out-of-range `domain`.
    pub fn log_object_in(&self, thread: usize, domain: usize, epoch: u64, target: u64, len: usize) {
        self.append(
            self.slot_index(thread, domain),
            epoch,
            target,
            len,
            domain as u16,
        );
    }

    /// Stages a batch **intent** for `epoch` of domain `domain` in
    /// `(thread, domain)`'s buffer. The entry's tag is
    /// `domain | `[`INTENT_TAG_BIT`] and its target word carries
    /// `batch_id`; `payload` is an opaque redo description owned by the
    /// batch layer. Replay of the domain validates and collects intents
    /// ([`ReplayReport::intents`]) without applying them, and they are
    /// discarded with the rest of the buffer at the domain's next epoch
    /// boundary.
    ///
    /// Durable before return under eager granularity 0; under a nonzero
    /// granularity the intent may stay **staged** until the threshold,
    /// an [`ExtLog::drain`], or the boundary — the caller must drain
    /// before publishing anything (a commit record) that makes the
    /// intent actionable.
    ///
    /// # Panics
    ///
    /// As for [`ExtLog::log_object_in`].
    pub fn log_intent_in(
        &self,
        thread: usize,
        domain: usize,
        epoch: u64,
        batch_id: u64,
        payload: &[u8],
    ) {
        self.append_slice(
            self.slot_index(thread, domain),
            epoch,
            batch_id,
            payload,
            domain as u16 | INTENT_TAG_BIT,
        );
    }

    /// [`ExtLog::log_object`] with an opaque 16-bit `tag` sealed into the
    /// entry header; [`ExtLog::replay`] aggregates applied entries per tag
    /// ([`ReplayReport::per_tag`]). Appends to thread `slot`'s domain-0
    /// buffer.
    pub fn log_object_tagged(&self, slot: usize, epoch: u64, target: u64, len: usize, tag: u16) {
        self.append(self.slot_index(slot, 0), epoch, target, len, tag);
    }

    fn append(&self, slot: usize, epoch: u64, target: u64, len: usize, tag: u16) {
        let need = HEADER + ((len as u64 + 7) & !7);
        let cur = self.cursors[slot].0.load(Ordering::Relaxed);
        assert!(
            cur + need <= self.per_slot,
            "external log slot {slot} overflow: {cur} + {need} > {}; \
             increase per-thread log capacity",
            self.per_slot
        );
        let base = self.region + (slot as u64) * self.per_slot + cur;

        // Payload first (chunked copy arena->arena), checksum streamed.
        let mut hash = checksum::FNV_OFFSET;
        let mut copied = 0usize;
        let mut chunk = [0u8; 512];
        while copied < len {
            let n = (len - copied).min(512);
            self.arena
                .pread_bytes(target + copied as u64, &mut chunk[..n]);
            hash = checksum::fnv1a64_update(hash, &chunk[..n]);
            self.arena
                .pwrite_bytes(base + HEADER + copied as u64, &chunk[..n]);
            copied += n;
        }
        let len_word = pack_len(len as u64, tag);
        let sum = checksum::seal(hash, epoch, target, len_word);

        // Header second; the entry is only valid once the checksum matches,
        // so a torn entry is detected and ignored by replay.
        self.arena.pwrite_u64(base, epoch);
        self.arena.pwrite_u64(base + 8, target);
        self.arena.pwrite_u64(base + 16, len_word);
        self.arena.pwrite_u64(base + 24, sum);

        // Seal before return, at every granularity: the caller modifies
        // the logged object the moment we return, and a crash may
        // persist any dirty line of that modification — the pre-image
        // must already be durable (write-ahead). See `seal_entry`.
        self.seal_entry(slot, base, len, cur, need, true);
        self.arena.stats().add_ext_logged(len as u64);
    }

    /// Completes an appended entry's durability protocol and publishes
    /// the slot cursor.
    ///
    /// Eager (granularity 0): `clwb` the entry, `sfence`, exactly the
    /// legacy per-entry protocol, for guarded and unguarded entries
    /// alike. Buffered (granularity > 0):
    ///
    /// * `guarding == true` — the entry guards an in-place modification
    ///   the caller performs as soon as the append returns (the
    ///   undo-object path). The write-ahead invariant requires the entry
    ///   durable *before* that modification, because a crash may persist
    ///   any dirty line of the modified object while dropping unflushed
    ///   log lines. The whole staged run — this entry plus any intents
    ///   staged behind it — is sealed with one `clwb_range`+`sfence`.
    /// * `guarding == false` — the entry's own guarded store (the batch
    ///   commit record) has not happened yet, so it may stay staged: it
    ///   joins the run, and the run drains once it reaches the
    ///   threshold (or earlier, at the batch layer's explicit
    ///   [`ExtLog::drain`] before the commit record, or the boundary).
    ///   A crash while it is staged drops an entry whose batch has no
    ///   commit record — indistinguishable from never staged.
    fn seal_entry(&self, slot: usize, base: u64, len: usize, cur: u64, need: u64, guarding: bool) {
        let gran = self.granularity.load(Ordering::Relaxed);
        if gran == 0 {
            self.arena.clwb_range(base, (HEADER as usize) + len);
            self.arena.sfence();
            self.cursors[slot].0.store(cur + need, Ordering::Relaxed);
            // Keep the staged mark pinned to the cursor so a later switch
            // of drain paths never re-flushes eager history.
            self.staged[slot].0.store(cur + need, Ordering::Relaxed);
            return;
        }
        self.cursors[slot].0.store(cur + need, Ordering::Relaxed);
        let start = self.staged[slot].0.load(Ordering::Relaxed);
        let staged = cur + need - start;
        if guarding || staged >= gran {
            let slot_base = self.region + (slot as u64) * self.per_slot;
            self.arena.clwb_range(slot_base + start, staged as usize);
            self.arena.sfence();
            self.staged[slot].0.store(cur + need, Ordering::Relaxed);
        }
    }

    /// [`ExtLog::append`] twinned for a DRAM-sourced payload: intents are
    /// staged from the caller's batch description, not copied out of the
    /// arena. Same entry format; durability is immediate under eager
    /// granularity 0 and deferred to the threshold / explicit drain
    /// otherwise (see [`ExtLog::set_persistence_granularity`]).
    fn append_slice(&self, slot: usize, epoch: u64, target: u64, payload: &[u8], tag: u16) {
        let len = payload.len();
        let need = HEADER + ((len as u64 + 7) & !7);
        let cur = self.cursors[slot].0.load(Ordering::Relaxed);
        assert!(
            cur + need <= self.per_slot,
            "external log slot {slot} overflow: {cur} + {need} > {}; \
             increase per-thread log capacity",
            self.per_slot
        );
        let base = self.region + (slot as u64) * self.per_slot + cur;

        self.arena.pwrite_bytes(base + HEADER, payload);
        let len_word = pack_len(len as u64, tag);
        let hash = checksum::fnv1a64_update(checksum::FNV_OFFSET, payload);
        let sum = checksum::seal(hash, epoch, target, len_word);

        self.arena.pwrite_u64(base, epoch);
        self.arena.pwrite_u64(base + 8, target);
        self.arena.pwrite_u64(base + 16, len_word);
        self.arena.pwrite_u64(base + 24, sum);

        // Intents guard nothing until the batch's commit record lands,
        // so they are the entries a nonzero granularity may stage: the
        // batch layer drains the run before flushing the record.
        self.seal_entry(slot, base, len, cur, need, false);
        self.arena.stats().add_ext_logged(len as u64);
    }

    /// Logically discards the whole log (epoch-boundary hook on a
    /// single-domain store, after the checkpoint flush has made every
    /// pre-image obsolete).
    pub fn reset(&self) {
        for (c, s) in self.cursors.iter().zip(&self.staged) {
            c.0.store(0, Ordering::Relaxed);
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// Logically discards one domain's buffers (that domain's
    /// epoch-boundary hook): its completed epoch's pre-images are obsolete,
    /// while other domains' still-at-risk entries are untouched.
    pub fn reset_domain(&self, domain: usize) {
        for t in 0..self.threads {
            let slot = self.slot_index(t, domain);
            self.cursors[slot].0.store(0, Ordering::Relaxed);
            self.staged[slot].0.store(0, Ordering::Relaxed);
        }
    }

    /// Replays every valid entry (in every domain's buffers) whose epoch
    /// lies in `[min_epoch, max_epoch]` — the contiguous run of failed
    /// epochs ending at the crashed epoch — copying pre-images back over
    /// their objects. Scanning stops at the first entry that is torn or
    /// outside the range (stale debris from completed epochs); cursors are
    /// repositioned to the end of each valid prefix so subsequent appends
    /// preserve still-needed entries.
    ///
    /// Replay performs no flushes: if the system crashes again before the
    /// next checkpoint, the entries are simply replayed again (§4.3).
    ///
    /// Single-domain form; per-shard recovery uses
    /// [`ExtLog::replay_domain`] with each shard's own failed run.
    pub fn replay(&self, min_epoch: u64, max_epoch: u64) -> ReplayReport {
        let mut report = ReplayReport::default();
        for slot in 0..self.threads * self.domains {
            self.replay_slot(slot, min_epoch, max_epoch, None, &mut report);
        }
        self.arena.stats().add_ext_replayed(report.entries_applied);
        report
    }

    /// Replays domain `domain`'s buffers only, filtering by the **pair**
    /// of shard tag and that shard's failed-epoch run `[min_epoch,
    /// max_epoch]`: an entry must both live in the domain's buffer and
    /// carry the domain's sealed tag to be applied (a mismatched tag is
    /// treated as corruption and stops the slot's scan, exactly like a
    /// torn checksum).
    ///
    /// # Concurrency
    ///
    /// `&self`-concurrent across **distinct** domains: each call touches
    /// only its domain's buffers, cursors and (shard-owned) target
    /// objects, and builds its own report — parallel recovery calls this
    /// from one worker per shard. Two concurrent calls on the *same*
    /// domain race on its cursors and are not supported.
    pub fn replay_domain(&self, domain: usize, min_epoch: u64, max_epoch: u64) -> ReplayReport {
        let mut report = ReplayReport::default();
        for t in 0..self.threads {
            self.replay_slot(
                self.slot_index(t, domain),
                min_epoch,
                max_epoch,
                Some(domain as u16),
                &mut report,
            );
        }
        self.arena.stats().add_ext_replayed(report.entries_applied);
        report
    }

    fn replay_slot(
        &self,
        slot: usize,
        min_epoch: u64,
        max_epoch: u64,
        require_tag: Option<u16>,
        report: &mut ReplayReport,
    ) {
        {
            let slot_base = self.region + (slot as u64) * self.per_slot;
            let mut cur = 0u64;
            loop {
                if cur + HEADER > self.per_slot {
                    break;
                }
                let base = slot_base + cur;
                let epoch = self.arena.pread_u64(base);
                let target = self.arena.pread_u64(base + 8);
                let len_word = self.arena.pread_u64(base + 16);
                let sum = self.arena.pread_u64(base + 24);
                let len = len_word & LEN_MASK;
                let tag = (len_word >> 48) as u16;
                let is_intent = tag & INTENT_TAG_BIT != 0;
                // Three-way tag check under a required (domain) tag: the
                // domain's own undo entries apply, its own intents are
                // collected below, anything else is corruption and stops
                // the slot scan like a torn checksum.
                if epoch < min_epoch
                    || epoch > max_epoch
                    || len == 0
                    || cur + HEADER + len > self.per_slot
                    || require_tag.is_some_and(|t| tag != t && tag != (t | INTENT_TAG_BIT))
                {
                    break;
                }
                // Verify the checksum before trusting the entry.
                let mut hash = checksum::FNV_OFFSET;
                let mut chunk = [0u8; 512];
                let mut copied = 0usize;
                while copied < len as usize {
                    let n = (len as usize - copied).min(512);
                    self.arena
                        .pread_bytes(base + HEADER + copied as u64, &mut chunk[..n]);
                    hash = checksum::fnv1a64_update(hash, &chunk[..n]);
                    copied += n;
                }
                if checksum::seal(hash, epoch, target, len_word) != sum {
                    break; // torn tail entry: its modification never started
                }
                if is_intent {
                    // Collect, never apply: the batch layer resolves
                    // intents against the durable commit table after undo
                    // replay finishes.
                    let mut payload = vec![0u8; len as usize];
                    self.arena.pread_bytes(base + HEADER, &mut payload);
                    report.intents.push(IntentEntry {
                        thread: slot / self.domains,
                        epoch,
                        batch_id: target,
                        payload,
                    });
                } else {
                    // Apply: copy the pre-image back.
                    let mut copied = 0usize;
                    while copied < len as usize {
                        let n = (len as usize - copied).min(512);
                        self.arena
                            .pread_bytes(base + HEADER + copied as u64, &mut chunk[..n]);
                        self.arena.pwrite_bytes(target + copied as u64, &chunk[..n]);
                        copied += n;
                    }
                    report.entries_applied += 1;
                    report.bytes_applied += len;
                    report.applied.push((target, len));
                    report.count_tag(tag, len);
                }
                cur += HEADER + ((len + 7) & !7);
            }
            self.cursors[slot].0.store(cur, Ordering::Relaxed);
            // The surviving prefix is durable by construction; nothing is
            // staged behind it.
            self.staged[slot].0.store(cur, Ordering::Relaxed);
            report.scan_stopped_at.push(cur);
            // Emulated NVM device time for streaming this buffer's valid
            // prefix (no-op unless the latency model configures a rate;
            // see `LatencyModel::stall_replay_read`).
            self.arena.latency().stall_replay_read(cur);
        }
    }
}

impl std::fmt::Debug for ExtLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtLog")
            .field("threads", &self.threads)
            .field("domains", &self.domains)
            .field("per_slot", &self.per_slot)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(slots: usize) -> (PArena, ExtLog, u64) {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create(&arena, slots, 8 * 1024).unwrap();
        let obj = arena.carve(320, 64).unwrap();
        (arena, log, obj)
    }

    fn fill(arena: &PArena, obj: u64, pattern: u64) {
        for i in 0..40 {
            arena.pwrite_u64(obj + i * 8, pattern + i);
        }
    }

    fn check(arena: &PArena, obj: u64, pattern: u64) -> bool {
        (0..40).all(|i| arena.pread_u64(obj + i * 8) == pattern + i)
    }

    #[test]
    fn log_and_replay_restores_preimage() {
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object(0, 1, obj, 320);
        fill(&arena, obj, 999);
        let r = log.replay(1, 1);
        assert_eq!(r.entries_applied, 1);
        assert_eq!(r.bytes_applied, 320);
        assert!(check(&arena, obj, 100));
    }

    #[test]
    fn replay_ignores_completed_epochs() {
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object(0, 1, obj, 320);
        fill(&arena, obj, 200);
        // Epoch 1 completed; its entries are stale.
        let r = log.replay(2, 2);
        assert_eq!(r.entries_applied, 0);
        assert!(check(&arena, obj, 200));
    }

    #[test]
    fn reset_discards_entries() {
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object(0, 1, obj, 320);
        log.reset();
        assert_eq!(log.used(0), 0);
        fill(&arena, obj, 200);
        // New entry from epoch 2 overwrites slot start.
        log.log_object(0, 2, obj, 320);
        fill(&arena, obj, 300);
        let r = log.replay(2, 2);
        assert_eq!(r.entries_applied, 1);
        assert!(check(&arena, obj, 200));
    }

    #[test]
    fn multi_slot_entries_replay_independently() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create(&arena, 4, 4 * 1024).unwrap();
        let objs: Vec<u64> = (0..4).map(|_| arena.carve(64, 64).unwrap()).collect();
        for (slot, &obj) in objs.iter().enumerate() {
            arena.pwrite_u64(obj, slot as u64 + 10);
            log.log_object(slot, 3, obj, 64);
            arena.pwrite_u64(obj, 0);
        }
        let r = log.replay(3, 3);
        assert_eq!(r.entries_applied, 4);
        for (slot, &obj) in objs.iter().enumerate() {
            assert_eq!(arena.pread_u64(obj), slot as u64 + 10);
        }
    }

    #[test]
    fn contiguous_failed_run_replays_all_generations() {
        // Crash in epoch 5, recovery appended epoch-6 entries (no reset),
        // crash again in 6: both generations replay.
        let (arena, log, obj) = setup(1);
        let obj2 = arena.carve(64, 64).unwrap();
        fill(&arena, obj, 100);
        log.log_object(0, 5, obj, 320);
        fill(&arena, obj, 500);
        // recovery for 5 would replay here; then epoch 6 logs another obj
        arena.pwrite_u64(obj2, 42);
        log.log_object(0, 6, obj2, 64);
        arena.pwrite_u64(obj2, 0);
        let r = log.replay(5, 6);
        assert_eq!(r.entries_applied, 2);
        assert!(check(&arena, obj, 100));
        assert_eq!(arena.pread_u64(obj2), 42);
    }

    #[test]
    fn stale_failed_epoch_beyond_prefix_is_not_replayed() {
        // Failed = {3, 9}. Epoch 3 wrote a big entry; epochs 4..8 completed
        // with no logging (cursor reset each time); epoch 9 wrote one small
        // entry at the buffer start. The intact epoch-3 debris further in
        // must NOT replay (epochs 4..8 committed over it).
        let (arena, log, obj) = setup(1);
        let obj2 = arena.carve(64, 64).unwrap();
        fill(&arena, obj, 100);
        log.log_object(0, 3, obj, 320); // epoch-3 debris
        log.reset(); // epochs 4..8 complete
        arena.pwrite_u64(obj2, 7);
        log.log_object(0, 9, obj2, 64); // epoch-9 entry (small)
        arena.pwrite_u64(obj2, 8);
        fill(&arena, obj, 400); // committed post-3 state of obj

        // Replay range = contiguous failed run ending at 9 = [9, 9].
        let r = log.replay(9, 9);
        assert_eq!(r.entries_applied, 1);
        assert_eq!(arena.pread_u64(obj2), 7);
        assert!(check(&arena, obj, 400), "epoch-3 debris must stay inert");
    }

    #[test]
    fn torn_entry_is_ignored() {
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object(0, 1, obj, 320);
        // Corrupt the payload to simulate a torn write.
        let base = arena.pread_u64(superblock::SB_EXTLOG_OFF);
        arena.pwrite_u64(base + HEADER + 8, 0xBAD);
        fill(&arena, obj, 500);
        let r = log.replay(1, 1);
        assert_eq!(r.entries_applied, 0);
        assert!(check(&arena, obj, 500));
    }

    #[test]
    fn replay_repositions_cursor_for_safe_append() {
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object(0, 1, obj, 320);
        let used = log.used(0);
        // Simulate restart: fresh handle, cursors at zero.
        let log2 = ExtLog::open(&arena);
        assert_eq!(log2.used(0), 0);
        let r = log2.replay(1, 1);
        assert_eq!(r.entries_applied, 1);
        assert_eq!(log2.used(0), used, "cursor must skip surviving entries");
    }

    #[test]
    fn entry_is_durable_before_modification() {
        // Tracked arena: the log entry must survive a crash taken right
        // after log_object returns, even though nothing else was flushed.
        let arena = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        arena.global_flush();
        let log = ExtLog::create(&arena, 1, 4 * 1024).unwrap();
        let obj = arena.carve(64, 64).unwrap();
        arena.pwrite_u64(obj, 11);
        log.log_object(0, 1, obj, 64);
        arena.pwrite_u64(obj, 22); // modification, unflushed
        arena.crash_seeded(3); // adversarial cut everywhere
        let log2 = ExtLog::open(&arena);
        let r = log2.replay(1, 1);
        assert_eq!(r.entries_applied, 1, "sealed entry must survive crash");
        assert_eq!(arena.pread_u64(obj), 11);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics_with_guidance() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create(&arena, 1, 1024).unwrap();
        let obj = arena.carve(320, 64).unwrap();
        for _ in 0..10 {
            log.log_object(0, 1, obj, 320);
        }
    }

    #[test]
    fn tagged_entries_replay_and_aggregate_per_tag() {
        let (arena, log, obj) = setup(1);
        let obj2 = arena.carve(64, 64).unwrap();
        fill(&arena, obj, 100);
        log.log_object_tagged(0, 1, obj, 320, 3);
        arena.pwrite_u64(obj2, 9);
        log.log_object_tagged(0, 1, obj2, 64, 1);
        log.log_object_tagged(0, 1, obj2, 64, 3);
        fill(&arena, obj, 999);
        arena.pwrite_u64(obj2, 0);
        let r = log.replay(1, 1);
        assert_eq!(r.entries_applied, 3);
        assert!(check(&arena, obj, 100));
        assert_eq!(arena.pread_u64(obj2), 9);
        assert_eq!(
            r.per_tag,
            vec![
                TagCounts {
                    tag: 1,
                    entries: 1,
                    bytes: 64
                },
                TagCounts {
                    tag: 3,
                    entries: 2,
                    bytes: 384
                },
            ]
        );
        // Untagged entries land on tag 0.
        log.reset();
        log.log_object(0, 2, obj, 320);
        let r = log.replay(2, 2);
        assert_eq!(r.per_tag.len(), 1);
        assert_eq!(r.per_tag[0].tag, 0);
    }

    #[test]
    fn tag_is_covered_by_the_checksum() {
        // Flipping the tag bits of a sealed entry must invalidate it: a
        // torn header cannot silently reattribute (or resize) an entry.
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object_tagged(0, 1, obj, 320, 7);
        fill(&arena, obj, 500);
        let base = arena.pread_u64(superblock::SB_EXTLOG_OFF);
        let w = arena.pread_u64(base + 16);
        arena.pwrite_u64(base + 16, (w & LEN_MASK) | (8u64 << 48));
        let r = log.replay(1, 1);
        assert_eq!(r.entries_applied, 0);
        assert!(check(&arena, obj, 500));
    }

    #[test]
    fn domain_buffers_reset_and_replay_independently() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create_sharded(&arena, 1, 16 * 1024, 2).unwrap();
        assert_eq!(log.domains(), 2);
        let obj0 = arena.carve(64, 64).unwrap();
        let obj1 = arena.carve(64, 64).unwrap();

        // Domain 0 in its epoch 4, domain 1 in its (independent) epoch 9.
        arena.pwrite_u64(obj0, 100);
        log.log_object_in(0, 0, 4, obj0, 64);
        arena.pwrite_u64(obj0, 999);
        arena.pwrite_u64(obj1, 200);
        log.log_object_in(0, 1, 9, obj1, 64);
        arena.pwrite_u64(obj1, 999);

        // Domain 0 completes its epoch: only its buffer resets.
        log.reset_domain(0);
        assert_eq!(log.used_in(0, 0), 0);
        assert!(log.used_in(0, 1) > 0);

        // Domain 1 crashes in epoch 9: replay touches only domain 1.
        let r = log.replay_domain(1, 9, 9);
        assert_eq!(r.entries_applied, 1);
        assert_eq!(arena.pread_u64(obj1), 200);
        assert_eq!(arena.pread_u64(obj0), 999, "domain 0 must be untouched");
        assert_eq!(r.per_tag.len(), 1);
        assert_eq!(r.per_tag[0].tag, 1);
    }

    #[test]
    fn replay_domain_rejects_mismatched_tags() {
        // A domain buffer holding an entry sealed with a different tag is
        // corrupt; the scan must stop without applying it.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create_sharded(&arena, 1, 16 * 1024, 2).unwrap();
        let obj = arena.carve(64, 64).unwrap();
        arena.pwrite_u64(obj, 7);
        log.log_object_in(0, 1, 3, obj, 64);
        arena.pwrite_u64(obj, 8);
        // Rewrite the tag (re-sealing the checksum so only the tag check
        // can reject it).
        let base = arena.pread_u64(superblock::SB_EXTLOG_OFF) + log.per_slot;
        let len_word = pack_len(64, 0);
        let mut hash = checksum::FNV_OFFSET;
        let mut chunk = [0u8; 64];
        arena.pread_bytes(base + HEADER, &mut chunk);
        hash = checksum::fnv1a64_update(hash, &chunk);
        arena.pwrite_u64(base + 16, len_word);
        arena.pwrite_u64(base + 24, checksum::seal(hash, 3, obj, len_word));
        let r = log.replay_domain(1, 3, 3);
        assert_eq!(r.entries_applied, 0, "foreign tag must not replay");
        assert_eq!(arena.pread_u64(obj), 8);
    }

    #[test]
    fn sharded_layout_survives_reopen() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let obj = arena.carve(64, 64).unwrap();
        {
            let log = ExtLog::create_sharded(&arena, 2, 8 * 1024, 4).unwrap();
            arena.pwrite_u64(obj, 5);
            log.log_object_in(1, 3, 7, obj, 64);
            arena.pwrite_u64(obj, 6);
        }
        let log2 = ExtLog::open(&arena);
        assert_eq!(log2.slots(), 2);
        assert_eq!(log2.domains(), 4);
        let r = log2.replay_domain(3, 7, 7);
        assert_eq!(r.entries_applied, 1);
        assert_eq!(arena.pread_u64(obj), 5);
        assert_eq!(log2.used_in(1, 3), r.scan_stopped_at[1]);
    }

    #[test]
    fn concurrent_replay_of_distinct_domains_is_safe_and_exact() {
        // One worker per domain, all replaying at once (the parallel
        // recovery shape). Repeated many times to shake interleavings out
        // (no vendored loom; iteration count is the interleaving driver).
        const DOMAINS: usize = 4;
        const OBJS_PER_DOMAIN: usize = 8;
        for round in 0..50u64 {
            let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
            superblock::format(&arena);
            let log = ExtLog::create_sharded(&arena, 2, 32 * 1024, DOMAINS).unwrap();
            let mut objs = vec![Vec::new(); DOMAINS];
            for (d, dom_objs) in objs.iter_mut().enumerate() {
                for i in 0..OBJS_PER_DOMAIN {
                    let obj = arena.carve(64, 64).unwrap();
                    let val = (round + 1) * 1000 + (d as u64) * 100 + i as u64;
                    arena.pwrite_u64(obj, val);
                    // Each domain crashes in its own epoch 10 + d.
                    log.log_object_in(i % 2, d, 10 + d as u64, obj, 64);
                    arena.pwrite_u64(obj, 0xDEAD); // doomed overwrite
                    dom_objs.push((obj, val));
                }
            }
            let reports: Vec<ReplayReport> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..DOMAINS)
                    .map(|d| {
                        let log = &log;
                        s.spawn(move || log.replay_domain(d, 10 + d as u64, 10 + d as u64))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (d, r) in reports.iter().enumerate() {
                assert_eq!(
                    r.entries_applied, OBJS_PER_DOMAIN as u64,
                    "round {round}: domain {d} must replay exactly its own entries"
                );
                assert_eq!(r.per_tag.len(), 1);
                assert_eq!(r.per_tag[0].tag, d as u16);
                for &(obj, val) in &objs[d] {
                    assert_eq!(arena.pread_u64(obj), val, "round {round} domain {d}");
                }
                // Cursors repositioned past this domain's valid prefix.
                assert_eq!(r.scan_stopped_at.len(), 2);
            }
        }
    }

    #[test]
    fn poisoned_tag_in_one_domain_cannot_poison_other_workers_reports() {
        // Regression: a mismatched shard tag in one domain's buffer stops
        // THAT worker's slot scan; concurrent workers on other domains
        // must replay their full counts and report untouched totals.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create_sharded(&arena, 1, 16 * 1024, 3).unwrap();
        let mut objs = Vec::new();
        for d in 0..3usize {
            let obj = arena.carve(64, 64).unwrap();
            arena.pwrite_u64(obj, 40 + d as u64);
            log.log_object_in(0, d, 5, obj, 64);
            arena.pwrite_u64(obj, 0);
            objs.push(obj);
        }
        // Poison domain 1's entry: re-seal it with a foreign tag so only
        // the tag check (not the checksum) can reject it.
        let base = arena.pread_u64(superblock::SB_EXTLOG_OFF) + log.per_slot;
        let len_word = pack_len(64, 2);
        let mut chunk = [0u8; 64];
        arena.pread_bytes(base + HEADER, &mut chunk);
        let hash = checksum::fnv1a64_update(checksum::FNV_OFFSET, &chunk);
        arena.pwrite_u64(base + 16, len_word);
        arena.pwrite_u64(base + 24, checksum::seal(hash, 5, objs[1], len_word));

        let reports: Vec<ReplayReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|d| {
                    let log = &log;
                    s.spawn(move || log.replay_domain(d, 5, 5))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(reports[0].entries_applied, 1, "domain 0 unaffected");
        assert_eq!(reports[2].entries_applied, 1, "domain 2 unaffected");
        assert_eq!(reports[1].entries_applied, 0, "poisoned entry rejected");
        assert_eq!(arena.pread_u64(objs[0]), 40);
        assert_eq!(arena.pread_u64(objs[2]), 42);
        assert_eq!(arena.pread_u64(objs[1]), 0, "poisoned entry not applied");
        // The healthy workers' per-tag attributions carry only their own
        // tags — nothing leaked across reports.
        assert_eq!(reports[0].per_tag[0].tag, 0);
        assert_eq!(reports[2].per_tag[0].tag, 2);
    }

    #[test]
    fn intents_are_collected_not_applied_and_cursor_skips_them() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create_sharded(&arena, 1, 16 * 1024, 2).unwrap();
        let obj = arena.carve(64, 64).unwrap();

        // Domain 1's buffer interleaves an undo entry, an intent, and
        // another undo entry — all in epoch 7.
        arena.pwrite_u64(obj, 111);
        log.log_object_in(0, 1, 7, obj, 64);
        arena.pwrite_u64(obj, 222);
        log.log_intent_in(0, 1, 7, 42, b"put k=v");
        arena.pwrite_u64(obj, 333);

        let r = log.replay_domain(1, 7, 7);
        assert_eq!(r.entries_applied, 1, "only the undo entry applies");
        assert_eq!(arena.pread_u64(obj), 111, "pre-image restored");
        assert_eq!(r.intents.len(), 1);
        assert_eq!(r.intents[0].batch_id, 42);
        assert_eq!(r.intents[0].epoch, 7);
        assert_eq!(r.intents[0].thread, 0);
        assert_eq!(r.intents[0].payload, b"put k=v");
        // The cursor sits past BOTH entries: post-recovery appends must
        // not clobber a still-needed intent.
        assert_eq!(log.used_in(0, 1), r.scan_stopped_at[0]);
        assert_eq!(log.used_in(0, 1), (HEADER + 64) + (HEADER + 8));
    }

    #[test]
    fn torn_intent_stops_the_scan_without_surfacing() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create_sharded(&arena, 1, 16 * 1024, 1).unwrap();
        log.log_intent_in(0, 0, 3, 9, b"payload-bytes");
        // Corrupt the payload: the checksum no longer matches.
        let base = arena.pread_u64(superblock::SB_EXTLOG_OFF);
        arena.pwrite_u64(base + HEADER, 0xBAD);
        let r = log.replay_domain(0, 3, 3);
        assert!(r.intents.is_empty(), "torn intent must not surface");
        assert_eq!(r.entries_applied, 0);
    }

    #[test]
    fn foreign_domain_intent_tag_stops_the_scan() {
        // An intent sealed for domain 2 sitting in domain 1's buffer is
        // corruption, exactly like a foreign undo tag.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create_sharded(&arena, 1, 16 * 1024, 3).unwrap();
        log.log_intent_in(0, 1, 5, 77, b"x");
        // Re-seal domain 1's entry with domain 2's intent tag.
        let base = arena.pread_u64(superblock::SB_EXTLOG_OFF) + log.per_slot;
        let len_word = pack_len(1, 2 | INTENT_TAG_BIT);
        let hash = checksum::fnv1a64_update(checksum::FNV_OFFSET, b"x");
        arena.pwrite_u64(base + 16, len_word);
        arena.pwrite_u64(base + 24, checksum::seal(hash, 5, 77, len_word));
        let r = log.replay_domain(1, 5, 5);
        assert!(r.intents.is_empty());
        assert_eq!(r.scan_stopped_at, vec![0]);
    }

    #[test]
    fn untargeted_replay_also_surfaces_intents() {
        let (arena, log, obj) = setup(1);
        fill(&arena, obj, 100);
        log.log_object(0, 1, obj, 320);
        log.log_intent_in(0, 0, 1, 5, b"op");
        fill(&arena, obj, 500);
        let r = log.replay(1, 1);
        assert_eq!(r.entries_applied, 1);
        assert!(check(&arena, obj, 100));
        assert_eq!(r.intents.len(), 1);
        assert_eq!(r.intents[0].batch_id, 5);
    }

    #[test]
    fn intent_is_durable_before_return() {
        let arena = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        arena.global_flush();
        let log = ExtLog::create(&arena, 1, 4 * 1024).unwrap();
        log.log_intent_in(0, 0, 1, 8, b"durable-intent");
        arena.crash_seeded(11);
        let log2 = ExtLog::open(&arena);
        let r = log2.replay_domain(0, 1, 1);
        assert_eq!(r.intents.len(), 1, "sealed intent must survive a crash");
        assert_eq!(r.intents[0].payload, b"durable-intent");
    }

    #[test]
    fn buffered_appends_coalesce_intent_fences() {
        // Same sequence — 15 intents, then one undo entry whose object
        // is modified right after the append — eager vs a large
        // granularity. Buffered: the intents stage, and the guarded
        // append's single seal covers the whole run; eager pays one
        // fence per entry. In BOTH modes the undo entry is durable
        // before the modification (write-ahead), which the replay check
        // proves by restoring the pre-image.
        let count_fences = |gran: u64| {
            let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
            superblock::format(&arena);
            let log = ExtLog::create_sharded(&arena, 1, 32 * 1024, 2).unwrap();
            log.set_persistence_granularity(gran);
            let obj = arena.carve(64, 64).unwrap();
            arena.pwrite_u64(obj, 7);
            let before = arena.stats().snapshot().sfence;
            for i in 0..15 {
                log.log_intent_in(0, 1, 1, 40 + i, b"redo-op");
            }
            log.log_object_in(0, 1, 1, obj, 64);
            let fences = arena.stats().snapshot().sfence - before;
            arena.pwrite_u64(obj, 0xDEAD); // the guarded modification
            assert_eq!(
                log.staged_bytes(0, 1),
                0,
                "a guarded append seals the whole staged run"
            );
            let r = log.replay_domain(1, 1, 1);
            assert_eq!(r.entries_applied, 1, "the undo entry replays");
            assert_eq!(r.intents.len(), 15, "every intent is surfaced");
            assert_eq!(
                arena.pread_u64(obj),
                7,
                "pre-image was durable before the mutation"
            );
            fences
        };
        let eager = count_fences(0);
        let buffered = count_fences(1 << 16);
        assert_eq!(eager, 16, "eager mode fences per entry");
        assert_eq!(
            buffered, 1,
            "buffered mode: one seal covers intents + the guarded entry"
        );
    }

    #[test]
    fn staged_intents_flush_at_the_granularity_threshold() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let log = ExtLog::create(&arena, 1, 32 * 1024).unwrap();
        log.set_persistence_granularity(256);
        let obj = arena.carve(64, 64).unwrap();
        arena.pwrite_u64(obj, 1);
        // One 64-byte-payload intent occupies HEADER + 64 = 96 bytes:
        // two stage, the third crosses 256 and flushes the whole run.
        let p = [5u8; 64];
        log.log_intent_in(0, 0, 1, 9, &p);
        assert_eq!(log.staged_bytes(0, 0), 96);
        log.log_intent_in(0, 0, 1, 9, &p);
        assert_eq!(log.staged_bytes(0, 0), 192);
        log.log_intent_in(0, 0, 1, 9, &p);
        assert_eq!(log.staged_bytes(0, 0), 0, "threshold crossing drains");
        // Undo-object appends never leave the run staged: each guards an
        // imminent in-place modification, so its seal drains everything.
        log.log_intent_in(0, 0, 1, 9, &p);
        assert_eq!(log.staged_bytes(0, 0), 96);
        log.log_object(0, 1, obj, 64);
        assert_eq!(log.staged_bytes(0, 0), 0, "guarded append drains the run");
    }

    #[test]
    fn undrained_intent_is_indistinguishable_from_never_staged() {
        // Crash with a non-empty staging buffer: the durable prefix
        // replays, the staged intent tail does not — its batch,
        // necessarily lacking a commit record, is dropped either way.
        let arena = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        arena.global_flush();
        let log = ExtLog::create(&arena, 1, 32 * 1024).unwrap();
        log.set_persistence_granularity(1 << 20);
        let a = arena.carve(64, 64).unwrap();
        arena.pwrite_u64(a, 11);
        log.log_object(0, 1, a, 64); // durable before return
        arena.pwrite_u64(a, 12);
        log.log_intent_in(0, 0, 1, 77, b"staged-op"); // staged only
        assert!(log.staged_bytes(0, 0) > 0);
        // A power failure persisting nothing still in flight: the staged
        // intent vanishes with the rest of the cache.
        arena.crash_with(|_, _| 0);
        let log2 = ExtLog::open(&arena);
        let r = log2.replay(1, 1);
        assert_eq!(r.entries_applied, 1, "the sealed undo entry survives");
        assert!(r.intents.is_empty(), "the staged intent vanishes");
        assert_eq!(arena.pread_u64(a), 11, "pre-image restored");
    }

    #[test]
    fn granularity_zero_matches_legacy_flush_traffic() {
        // `persistence_granularity(0)` must reproduce today's per-entry
        // protocol byte-for-byte: identical clwb/sfence counts and
        // identical durable bytes versus a log never touched by the knob.
        let run = |set_zero: bool| {
            let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
            superblock::format(&arena);
            let log = ExtLog::create(&arena, 1, 32 * 1024).unwrap();
            if set_zero {
                log.set_persistence_granularity(0);
            }
            let obj = arena.carve(320, 64).unwrap();
            fill(&arena, obj, 100);
            for _ in 0..8 {
                log.log_object(0, 1, obj, 320);
            }
            log.log_intent_in(0, 0, 1, 3, b"op");
            log.drain(0, 0); // must be a no-op when eager
            let s = arena.stats().snapshot();
            (s.clwb, s.sfence, log.used(0))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stats_count_logged_nodes() {
        let (arena, log, obj) = setup(1);
        log.log_object(0, 1, obj, 320);
        log.log_object(0, 1, obj, 320);
        assert_eq!(arena.stats().ext_nodes_logged(), 2);
        assert_eq!(arena.stats().ext_bytes_logged(), 640);
    }
}
