//! FNV-1a 64-bit checksums for torn-entry detection.
//!
//! Log entries are sealed with a checksum over the payload and the header
//! fields. The checksum is not cryptographic; it only needs to make a
//! partially persisted (torn) entry overwhelmingly unlikely to validate.

/// FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Feeds `bytes` into a running FNV-1a hash.
#[inline]
pub(crate) fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_OFFSET, bytes)
}

/// Folds the header fields into a streamed payload hash, producing the
/// sealed checksum stored in the entry.
#[inline]
pub(crate) fn seal(payload_hash: u64, epoch: u64, target: u64, len: u64) -> u64 {
    let mut h = payload_hash;
    h = fnv1a64_update(h, &epoch.to_le_bytes());
    h = fnv1a64_update(h, &target.to_le_bytes());
    h = fnv1a64_update(h, &len.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") from the reference tables.
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello persistent world";
        let mut h = FNV_OFFSET;
        h = fnv1a64_update(h, &data[..7]);
        h = fnv1a64_update(h, &data[7..]);
        assert_eq!(h, fnv1a64(data));
    }

    #[test]
    fn seal_depends_on_every_field() {
        let p = fnv1a64(b"payload");
        let base = seal(p, 1, 2, 3);
        assert_ne!(base, seal(p, 9, 2, 3));
        assert_ne!(base, seal(p, 1, 9, 3));
        assert_ne!(base, seal(p, 1, 2, 9));
        assert_ne!(base, seal(fnv1a64(b"other"), 1, 2, 3));
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let mut data = vec![0u8; 320];
        let a = fnv1a64(&data);
        data[100] ^= 1;
        assert_ne!(a, fnv1a64(&data));
    }
}
