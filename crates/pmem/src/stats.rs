use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! stats_fields {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Persistence-event counters shared by every layer of the system.
        ///
        /// The evaluation section of the paper reports, besides throughput,
        /// the *number of externally logged nodes* (Fig. 7) and reasons about
        /// write-back/fence counts; these counters are the single sink all
        /// crates report into. All updates are relaxed atomics: the hot
        /// (InCLL) path performs none, and the cold paths (external log,
        /// epoch advance) are infrequent by design.
        #[derive(Debug, Default)]
        pub struct Stats {
            $( $(#[$doc])* $name: AtomicU64, )+
        }

        /// A point-in-time copy of [`Stats`].
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )+
        }

        impl Stats {
            /// Creates a zeroed counter set.
            pub fn new() -> Self {
                Self::default()
            }

            $(
                $(#[$doc])*
                #[inline]
                pub fn $name(&self) -> u64 {
                    self.$name.load(Ordering::Relaxed)
                }
            )+

            /// Takes a consistent-enough snapshot of all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }

            /// Resets every counter to zero.
            pub fn reset(&self) {
                $( self.$name.store(0, Ordering::Relaxed); )+
            }
        }

        impl StatsSnapshot {
            /// Returns `self - earlier`, field-wise (saturating).
            #[must_use]
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.saturating_sub(earlier.$name), )+
                }
            }
        }
    };
}

stats_fields! {
    /// Cache-line write-back (`clwb`) instructions issued.
    clwb,
    /// Persistence fences (`sfence`) issued.
    sfence,
    /// Whole-cache flushes (`wbinvd` analogue) issued at epoch boundaries.
    global_flush,
    /// Scoped (per-domain) flushes issued at per-shard epoch boundaries.
    scoped_flush,
    /// Nodes copied into the external undo log.
    ext_nodes_logged,
    /// Interior (non-leaf) nodes among those (§6.1 ablation).
    ext_interior_logged,
    /// Bytes written to the external undo log (headers + payloads).
    ext_bytes_logged,
    /// Permutation-field InCLL logs taken (first modification per epoch).
    incll_perm_logs,
    /// Value-slot InCLL logs taken.
    incll_val_logs,
    /// Allocator free-list InCLL logs taken.
    incll_alloc_logs,
    /// Objects handed out by the durable allocator.
    palloc_allocs,
    /// Objects returned to the durable allocator.
    palloc_frees,
    /// Nodes recovered lazily from their InCLLs after a crash.
    nodes_lazy_recovered,
    /// External-log entries replayed during recovery.
    ext_entries_replayed,
}

impl Stats {
    /// Adds `n` to a counter; the `$name` getters read them back.
    ///
    /// Incrementers are generated individually below to keep call sites
    /// greppable.
    #[inline]
    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` `clwb` instructions.
    #[inline]
    pub fn add_clwb(&self, n: u64) {
        Self::add(&self.clwb, n);
    }

    /// Records an `sfence`.
    #[inline]
    pub fn add_sfence(&self) {
        Self::add(&self.sfence, 1);
    }

    /// Records a whole-cache flush.
    #[inline]
    pub fn add_global_flush(&self) {
        Self::add(&self.global_flush, 1);
    }

    /// Records a scoped (per-domain) flush.
    #[inline]
    pub fn add_scoped_flush(&self) {
        Self::add(&self.scoped_flush, 1);
    }

    /// Records one externally logged node of `bytes` payload.
    #[inline]
    pub fn add_ext_logged(&self, bytes: u64) {
        Self::add(&self.ext_nodes_logged, 1);
        Self::add(&self.ext_bytes_logged, bytes);
    }

    /// Records an externally logged interior node.
    #[inline]
    pub fn add_ext_interior(&self) {
        Self::add(&self.ext_interior_logged, 1);
    }

    /// Records a permutation InCLL log.
    #[inline]
    pub fn add_incll_perm(&self) {
        Self::add(&self.incll_perm_logs, 1);
    }

    /// Records a value InCLL log.
    #[inline]
    pub fn add_incll_val(&self) {
        Self::add(&self.incll_val_logs, 1);
    }

    /// Records an allocator InCLL log.
    #[inline]
    pub fn add_incll_alloc(&self) {
        Self::add(&self.incll_alloc_logs, 1);
    }

    /// Records a durable allocation.
    #[inline]
    pub fn add_palloc_alloc(&self) {
        Self::add(&self.palloc_allocs, 1);
    }

    /// Records a durable free.
    #[inline]
    pub fn add_palloc_free(&self) {
        Self::add(&self.palloc_frees, 1);
    }

    /// Records a lazily recovered node.
    #[inline]
    pub fn add_lazy_recovered(&self) {
        Self::add(&self.nodes_lazy_recovered, 1);
    }

    /// Records `n` replayed external-log entries.
    #[inline]
    pub fn add_ext_replayed(&self, n: u64) {
        Self::add(&self.ext_entries_replayed, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.add_clwb(3);
        s.add_sfence();
        s.add_ext_logged(320);
        s.add_ext_logged(320);
        assert_eq!(s.clwb(), 3);
        assert_eq!(s.sfence(), 1);
        assert_eq!(s.ext_nodes_logged(), 2);
        assert_eq!(s.ext_bytes_logged(), 640);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.add_incll_perm();
        let a = s.snapshot();
        s.add_incll_perm();
        s.add_incll_val();
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.incll_perm_logs, 1);
        assert_eq!(d.incll_val_logs, 1);
        assert_eq!(d.clwb, 0);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.add_palloc_alloc();
        s.add_palloc_free();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
