use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Emulated NVM latency configuration.
///
/// The paper evaluates sensitivity to NVM speed by adding an artificial
/// delay *after* `sfence` instructions (`clwb` is asynchronous, so the fence
/// is where a program actually waits for the memory round trip; §6, Figs. 3
/// and 8). The whole-cache flush used at epoch boundaries costs 1.38–1.39 ms
/// on the paper's hardware (§6.2); the same stall can be injected here so
/// the checkpoint-cost experiment reproduces that overhead profile.
///
/// All fields are runtime-tunable atomics so a benchmark can sweep latencies
/// without rebuilding the arena.
#[derive(Debug, Default)]
pub struct LatencyModel {
    /// Delay injected after every [`sfence`](crate::PArena::sfence), in ns.
    sfence_ns: AtomicU64,
    /// Delay injected by every
    /// [`global_flush`](crate::PArena::global_flush), in ns.
    wbinvd_ns: AtomicU64,
    /// Delay injected by every
    /// [`flush_domain`](crate::PArena::flush_domain), in ns.
    scoped_flush_ns: AtomicU64,
    /// Emulated NVM streaming-read time per KiB scanned by recovery
    /// replay, in ns (0 = off).
    replay_read_ns_per_kb: AtomicU64,
}

impl LatencyModel {
    /// Creates a model with no emulated latency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the post-`sfence` delay in nanoseconds.
    pub fn set_sfence_ns(&self, ns: u64) {
        self.sfence_ns.store(ns, Ordering::Relaxed);
    }

    /// Returns the configured post-`sfence` delay in nanoseconds.
    pub fn sfence_ns(&self) -> u64 {
        self.sfence_ns.load(Ordering::Relaxed)
    }

    /// Sets the whole-cache-flush delay in nanoseconds.
    pub fn set_wbinvd_ns(&self, ns: u64) {
        self.wbinvd_ns.store(ns, Ordering::Relaxed);
    }

    /// Returns the configured whole-cache-flush delay in nanoseconds.
    pub fn wbinvd_ns(&self) -> u64 {
        self.wbinvd_ns.load(Ordering::Relaxed)
    }

    /// Sets the scoped (per-domain) flush delay in nanoseconds. A scoped
    /// flush write-backs one domain's dirty lines instead of the whole
    /// cache, so benchmarks typically configure a fraction of the
    /// `wbinvd` cost here.
    pub fn set_scoped_flush_ns(&self, ns: u64) {
        self.scoped_flush_ns.store(ns, Ordering::Relaxed);
    }

    /// Returns the configured scoped-flush delay in nanoseconds.
    pub fn scoped_flush_ns(&self) -> u64 {
        self.scoped_flush_ns.load(Ordering::Relaxed)
    }

    /// Sets the emulated NVM streaming-read cost of recovery replay, in
    /// nanoseconds per KiB of log scanned (e.g. 1 GiB/s per stream ≈
    /// 1000 ns/KiB). Default 0: off.
    ///
    /// Replay streams megabytes of sealed log per buffer; at that scale a
    /// recovery worker is *waiting on the device*, not on a pipeline
    /// stall, so [`LatencyModel::stall_replay_read`] models the wait as
    /// descheduled time (`thread::sleep`) rather than a spin — which is
    /// also what lets concurrent recovery workers overlap their streams'
    /// device time, the memory-level parallelism that partitioned-log
    /// parallel recovery exploits on real NVM.
    pub fn set_replay_read_ns_per_kb(&self, ns: u64) {
        self.replay_read_ns_per_kb.store(ns, Ordering::Relaxed);
    }

    /// Returns the configured replay streaming-read cost (ns per KiB).
    pub fn replay_read_ns_per_kb(&self) -> u64 {
        self.replay_read_ns_per_kb.load(Ordering::Relaxed)
    }

    /// Emulates the NVM device time of streaming `bytes` of log during
    /// recovery replay (no-op unless
    /// [`LatencyModel::set_replay_read_ns_per_kb`] configured a rate).
    /// Called once per replayed log buffer, so the sleep granularity is
    /// hundreds of microseconds — far above timer slop.
    pub fn stall_replay_read(&self, bytes: u64) {
        let per_kb = self.replay_read_ns_per_kb();
        if per_kb == 0 || bytes == 0 {
            return;
        }
        let ns = bytes.saturating_mul(per_kb) / 1024;
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
///
/// Used to emulate NVM round-trip latency. A spin (rather than a sleep)
/// mirrors how a CPU stalls on `sfence`: the core makes no progress but is
/// not descheduled.
#[inline]
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let m = LatencyModel::new();
        assert_eq!(m.sfence_ns(), 0);
        assert_eq!(m.wbinvd_ns(), 0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let m = LatencyModel::new();
        m.set_sfence_ns(500);
        m.set_wbinvd_ns(1_380_000);
        assert_eq!(m.sfence_ns(), 500);
        assert_eq!(m.wbinvd_ns(), 1_380_000);
    }

    #[test]
    fn spin_waits_at_least_requested() {
        let start = Instant::now();
        spin_ns(200_000); // 200 µs
        assert!(start.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn spin_zero_returns_immediately() {
        spin_ns(0);
    }
}
