use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// A typed persistent pointer: a byte offset from the arena base.
///
/// Durable data structures must not embed virtual addresses, because a
/// recovered process may map the arena elsewhere. `PPtr<T>` therefore stores
/// an **offset**; dereferencing requires the owning
/// [`PArena`](crate::PArena).
///
/// Offsets are ≥ 16-byte aligned by construction (the arena's minimum carve
/// alignment), so the low 4 bits are zero and at most 44 bits are
/// significant for arenas up to 16 TiB — exactly the properties the paper
/// exploits to pack a pointer, a 4-bit slot index and 16 epoch bits into a
/// single 64-bit `ValInCLL` word (§4.1.3).
///
/// Offset `0` is reserved and acts as null.
///
/// # Example
///
/// ```
/// use incll_pmem::{PArena, PPtr};
///
/// # fn main() -> Result<(), incll_pmem::Error> {
/// let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
/// let p: PPtr<u64> = PPtr::from_offset(arena.carve(8, 16)?);
/// arena.pwrite_u64(p.offset(), 7);
/// assert_eq!(arena.pread_u64(p.offset()), 7);
/// assert!(!p.is_null());
/// assert!(PPtr::<u64>::null().is_null());
/// # Ok(())
/// # }
/// ```
pub struct PPtr<T> {
    offset: u64,
    _marker: PhantomData<*mut T>,
}

impl<T> PPtr<T> {
    /// The null persistent pointer (offset 0).
    pub const NULL: PPtr<T> = PPtr {
        offset: 0,
        _marker: PhantomData,
    };

    /// Returns the null pointer.
    #[inline]
    pub const fn null() -> Self {
        Self::NULL
    }

    /// Wraps a raw arena offset.
    ///
    /// The offset is not validated here; it is checked (in debug builds) on
    /// dereference by the arena.
    #[inline]
    pub const fn from_offset(offset: u64) -> Self {
        PPtr {
            offset,
            _marker: PhantomData,
        }
    }

    /// Returns the raw arena offset.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.offset
    }

    /// Returns `true` if this is the null pointer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.offset == 0
    }

    /// Reinterprets the pointee type.
    #[inline]
    pub const fn cast<U>(self) -> PPtr<U> {
        PPtr::from_offset(self.offset)
    }

    /// Returns a pointer `bytes` past this one.
    #[inline]
    #[must_use]
    pub const fn byte_add(self, bytes: u64) -> Self {
        PPtr::from_offset(self.offset + bytes)
    }
}

// Manual impls: `derive` would bound them on `T`, but a PPtr is Copy/Send
// regardless of the pointee (it is just an offset).
impl<T> Clone for PPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PPtr<T> {}
impl<T> PartialEq for PPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.offset == other.offset
    }
}
impl<T> Eq for PPtr<T> {}
impl<T> PartialOrd for PPtr<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PPtr<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.offset.cmp(&other.offset)
    }
}
impl<T> Hash for PPtr<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.offset.hash(state);
    }
}
impl<T> Default for PPtr<T> {
    fn default() -> Self {
        Self::NULL
    }
}
impl<T> fmt::Debug for PPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PPtr(null)")
        } else {
            write!(f, "PPtr({:#x})", self.offset)
        }
    }
}

// SAFETY: a PPtr is a plain offset; sending it between threads carries no
// aliasing obligations (dereference safety is the arena accessors' concern).
unsafe impl<T> Send for PPtr<T> {}
// SAFETY: as above; `&PPtr<T>` only exposes the offset value.
unsafe impl<T> Sync for PPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        let p: PPtr<u32> = PPtr::null();
        assert!(p.is_null());
        assert_eq!(p.offset(), 0);
        assert_eq!(p, PPtr::default());
    }

    #[test]
    fn offset_roundtrip_and_ordering() {
        let a: PPtr<u8> = PPtr::from_offset(64);
        let b: PPtr<u8> = PPtr::from_offset(128);
        assert!(a < b);
        assert_eq!(a.byte_add(64), b);
        assert_eq!(a.cast::<u64>().offset(), 64);
    }

    #[test]
    fn debug_shows_null_and_hex() {
        assert_eq!(format!("{:?}", PPtr::<u8>::null()), "PPtr(null)");
        assert_eq!(format!("{:?}", PPtr::<u8>::from_offset(0x40)), "PPtr(0x40)");
    }

    #[test]
    fn copy_does_not_require_copy_pointee() {
        struct NotClone;
        let p: PPtr<NotClone> = PPtr::from_offset(16);
        let q = p;
        assert_eq!(p, q);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PPtr<std::cell::Cell<u8>>>();
    }
}
