//! Per-cache-line store journal implementing the PCSO persistence model.
//!
//! In *tracked* mode every durable store is recorded against the cache line
//! it touches. The journal maintains, per line:
//!
//! * `base` — the content known to be in NVM (as of the last completed
//!   `clwb`+`sfence` or whole-cache flush), and
//! * `stores` — the ordered list of unpersisted stores since then.
//!
//! PCSO guarantees exactly one thing without fences: **stores to the same
//! cache line persist in program order**. A simulated crash therefore picks,
//! independently for each line, a random *prefix* of its store list and
//! materialises `base + prefix` as the post-crash NVM content. Cross-line
//! persist order is unconstrained, which the independent per-line choices
//! model adversarially.
//!
//! `clwb` snapshots the line's current content; a following `sfence`
//! promotes that snapshot to `base` (a `clwb` without a fence guarantees
//! nothing, so pending snapshots are ignored by [`Journal::crash_with`]).

use parking_lot::Mutex;
use std::collections::HashMap;

use crate::arena::CACHE_LINE;

const SHARDS: usize = 64;

/// The domain tag carried by stores made outside any flush-domain scope
/// (and by lines dirtied under more than one domain). Shared lines are
/// flushed by **every** scoped flush, so tagging conservatively only ever
/// makes *more* state durable — which is always a legal PCSO outcome (a
/// cache line may be evicted, i.e. persisted, at any moment).
pub const DOMAIN_SHARED: u16 = u16::MAX;

/// One recorded (unpersisted) store within a single cache line.
#[derive(Clone)]
struct StoreRec {
    /// Byte offset within the line.
    off: u8,
    /// Store width in bytes (1..=64).
    len: u8,
    /// The stored bytes (`data[..len]` is meaningful).
    data: [u8; CACHE_LINE],
}

/// Journal state for one cache line with unpersisted stores.
struct LineState {
    /// Content known to be durable.
    base: [u8; CACHE_LINE],
    /// Unpersisted stores in program order.
    stores: Vec<StoreRec>,
    /// `clwb` snapshot awaiting an `sfence`: `(snapshot, stores.len() at
    /// clwb time)`.
    pending: Option<([u8; CACHE_LINE], usize)>,
    /// The epoch domain that dirtied this line, or [`DOMAIN_SHARED`] when
    /// stores from more than one domain (or untagged stores) touched it.
    domain: u16,
}

/// The tracked-mode store journal. Internal to the arena.
pub(crate) struct Journal {
    shards: Vec<Mutex<HashMap<u64, LineState>>>,
    /// Lines with a `clwb` snapshot awaiting `sfence`.
    pending_lines: Mutex<Vec<u64>>,
}

impl Journal {
    pub(crate) fn new() -> Self {
        Journal {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            pending_lines: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn shard(&self, line: u64) -> &Mutex<HashMap<u64, LineState>> {
        &self.shards[(line as usize) % SHARDS]
    }

    /// Records a store of `data` at byte `off` within `line`, then invokes
    /// `apply` (which performs the real memory store) while still holding
    /// the shard lock, so journal order equals memory order.
    ///
    /// `read_line` must return the line's *current* content; it is only
    /// called when the line enters the journal (its current content is then,
    /// by definition, also its durable content).
    pub(crate) fn record_store(
        &self,
        line: u64,
        off: usize,
        data: &[u8],
        domain: u16,
        read_line: impl FnOnce() -> [u8; CACHE_LINE],
        apply: impl FnOnce(),
    ) {
        debug_assert!(off + data.len() <= CACHE_LINE);
        let mut shard = self.shard(line).lock();
        let entry = shard.entry(line).or_insert_with(|| LineState {
            base: read_line(),
            stores: Vec::new(),
            pending: None,
            domain,
        });
        if entry.domain != domain {
            entry.domain = DOMAIN_SHARED;
        }
        let mut rec = StoreRec {
            off: off as u8,
            len: data.len() as u8,
            data: [0; CACHE_LINE],
        };
        rec.data[..data.len()].copy_from_slice(data);
        entry.stores.push(rec);
        apply();
    }

    /// Records a `clwb` of `line`: snapshots the current content so a later
    /// `sfence` can promote it to the durable base.
    pub(crate) fn clwb(&self, line: u64, read_line: impl FnOnce() -> [u8; CACHE_LINE]) {
        let mut shard = self.shard(line).lock();
        // A missing entry means no unpersisted stores: the line is already
        // durable and there is nothing to snapshot.
        if let Some(entry) = shard.get_mut(&line) {
            let upto = entry.stores.len();
            entry.pending = Some((read_line(), upto));
            self.pending_lines.lock().push(line);
        }
    }

    /// Completes all pending `clwb`s (the `sfence` semantics): each pending
    /// snapshot becomes the line's durable base and the covered stores are
    /// retired.
    pub(crate) fn sfence(&self) {
        let lines: Vec<u64> = std::mem::take(&mut *self.pending_lines.lock());
        for line in lines {
            let mut shard = self.shard(line).lock();
            if let Some(entry) = shard.get_mut(&line) {
                if let Some((snapshot, upto)) = entry.pending.take() {
                    entry.base = snapshot;
                    entry.stores.drain(..upto);
                    if entry.stores.is_empty() {
                        // Fully durable: base == current; drop the entry so
                        // crash() leaves the line untouched.
                        shard.remove(&line);
                    }
                }
            }
        }
    }

    /// Declares every line durable with its *current* content (the
    /// whole-cache-flush semantics).
    pub(crate) fn flush_all(&self) {
        self.pending_lines.lock().clear();
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Declares durable (with current content) every line dirtied under
    /// `domain`, plus every [`DOMAIN_SHARED`] line — the scoped-flush
    /// semantics used by per-shard epoch advances. Lines owned by other
    /// domains keep their journal entries (and their crash exposure).
    pub(crate) fn flush_domain(&self, domain: u16) {
        for shard in &self.shards {
            shard
                .lock()
                .retain(|_, st| st.domain != domain && st.domain != DOMAIN_SHARED);
        }
        // pending_lines is deliberately left alone: ids whose entries were
        // just flushed are harmless (`sfence` skips lines with no journal
        // entry), while "cleaning" the list here would race a concurrent
        // clwb→sfence pair on another domain — taking the list out, even
        // briefly, makes that thread's sfence promote nothing and silently
        // revokes a durability guarantee it already returned with.
    }

    /// Number of cache lines holding unpersisted stores.
    pub(crate) fn unpersisted_lines(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Number of cache lines holding unpersisted stores dirtied under
    /// `domain` (shared lines are counted for every domain).
    pub(crate) fn unpersisted_lines_in(&self, domain: u16) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|st| st.domain == domain || st.domain == DOMAIN_SHARED)
                    .count()
            })
            .sum()
    }

    /// Simulates a power failure.
    ///
    /// For every journaled line, `choose(line, n)` picks how many of its `n`
    /// unpersisted stores reached NVM (must return a value in `0..=n`); the
    /// reconstructed content is handed to `write_line`, which must copy it
    /// back into the arena. The journal is left empty: after a crash the
    /// arena content *is* the NVM content.
    pub(crate) fn crash_with(
        &self,
        mut choose: impl FnMut(u64, usize) -> usize,
        mut write_line: impl FnMut(u64, &[u8; CACHE_LINE]),
    ) {
        self.pending_lines.lock().clear();
        for shard in &self.shards {
            let mut map = shard.lock();
            // Deterministic iteration order so seeded crashes reproduce.
            let mut lines: Vec<u64> = map.keys().copied().collect();
            lines.sort_unstable();
            for line in lines {
                let entry = map.remove(&line).expect("line listed but missing");
                let k = choose(line, entry.stores.len());
                assert!(
                    k <= entry.stores.len(),
                    "crash chooser returned {k} > {} stores",
                    entry.stores.len()
                );
                let mut buf = entry.base;
                for rec in &entry.stores[..k] {
                    let (off, len) = (rec.off as usize, rec.len as usize);
                    buf[off..off + len].copy_from_slice(&rec.data[..len]);
                }
                write_line(line, &buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_line() -> [u8; CACHE_LINE] {
        [0; CACHE_LINE]
    }

    #[test]
    fn store_then_full_crash_keeps_store() {
        let j = Journal::new();
        j.record_store(5, 0, &7u64.to_le_bytes(), DOMAIN_SHARED, zero_line, || {});
        let mut seen = Vec::new();
        j.crash_with(|_, n| n, |line, buf| seen.push((line, buf[0])));
        assert_eq!(seen, vec![(5, 7)]);
        assert_eq!(j.unpersisted_lines(), 0);
    }

    #[test]
    fn store_then_zero_prefix_crash_reverts() {
        let j = Journal::new();
        j.record_store(5, 0, &7u64.to_le_bytes(), DOMAIN_SHARED, zero_line, || {});
        let mut seen = Vec::new();
        j.crash_with(|_, _| 0, |line, buf| seen.push((line, buf[0])));
        assert_eq!(seen, vec![(5, 0)]);
    }

    #[test]
    fn same_line_stores_apply_in_order() {
        let j = Journal::new();
        j.record_store(1, 0, &[1], DOMAIN_SHARED, zero_line, || {});
        j.record_store(1, 0, &[2], DOMAIN_SHARED, zero_line, || {});
        j.record_store(1, 8, &[9], DOMAIN_SHARED, zero_line, || {});
        // Prefix of 2: second store to byte 0 wins, byte 8 still zero.
        let mut byte0 = 0xff;
        let mut byte8 = 0xff;
        j.crash_with(
            |_, _| 2,
            |_, buf| {
                byte0 = buf[0];
                byte8 = buf[8];
            },
        );
        assert_eq!((byte0, byte8), (2, 0));
    }

    #[test]
    fn clwb_without_sfence_guarantees_nothing() {
        let j = Journal::new();
        j.record_store(3, 0, &[1], DOMAIN_SHARED, zero_line, || {});
        j.clwb(3, || {
            let mut l = zero_line();
            l[0] = 1;
            l
        });
        // No sfence: a crash may still lose the store.
        let mut byte0 = 0xff;
        j.crash_with(|_, _| 0, |_, buf| byte0 = buf[0]);
        assert_eq!(byte0, 0);
    }

    #[test]
    fn clwb_sfence_promotes_to_durable() {
        let j = Journal::new();
        j.record_store(3, 0, &[1], DOMAIN_SHARED, zero_line, || {});
        j.clwb(3, || {
            let mut l = zero_line();
            l[0] = 1;
            l
        });
        j.sfence();
        // Entry fully durable -> removed from journal entirely.
        assert_eq!(j.unpersisted_lines(), 0);
        let mut crashed_lines = 0;
        j.crash_with(|_, _| 0, |_, _| crashed_lines += 1);
        assert_eq!(crashed_lines, 0);
    }

    #[test]
    fn stores_after_clwb_remain_at_risk() {
        let j = Journal::new();
        j.record_store(3, 0, &[1], DOMAIN_SHARED, zero_line, || {});
        j.clwb(3, || {
            let mut l = zero_line();
            l[0] = 1;
            l
        });
        j.record_store(3, 1, &[2], DOMAIN_SHARED, zero_line, || {});
        j.sfence();
        assert_eq!(j.unpersisted_lines(), 1);
        let mut bytes = (0xff, 0xff);
        j.crash_with(|_, _| 0, |_, buf| bytes = (buf[0], buf[1]));
        // Pre-clwb store durable, post-clwb store lost.
        assert_eq!(bytes, (1, 0));
    }

    #[test]
    fn flush_all_makes_everything_durable() {
        let j = Journal::new();
        for line in 0..10 {
            j.record_store(line, 0, &[line as u8 + 1], DOMAIN_SHARED, zero_line, || {});
        }
        assert_eq!(j.unpersisted_lines(), 10);
        j.flush_all();
        assert_eq!(j.unpersisted_lines(), 0);
    }

    #[test]
    fn flush_domain_retires_only_that_domain_and_shared() {
        let j = Journal::new();
        j.record_store(1, 0, &[1], 3, zero_line, || {});
        j.record_store(2, 0, &[2], 5, zero_line, || {});
        j.record_store(3, 0, &[3], DOMAIN_SHARED, zero_line, || {});
        assert_eq!(j.unpersisted_lines_in(3), 2); // own line + shared
        j.flush_domain(3);
        assert_eq!(j.unpersisted_lines(), 1);
        // Only domain 5's line still reverts on crash.
        let mut seen = Vec::new();
        j.crash_with(|_, _| 0, |line, _| seen.push(line));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn mixed_domain_line_becomes_shared() {
        let j = Journal::new();
        j.record_store(7, 0, &[1], 3, zero_line, || {});
        j.record_store(7, 8, &[2], 5, zero_line, || {});
        // Either domain's flush now covers the line.
        j.flush_domain(5);
        assert_eq!(j.unpersisted_lines(), 0);
    }

    #[test]
    fn foreign_domain_flush_does_not_steal_a_pending_clwb() {
        // Regression: flush_domain used to rebuild pending_lines, and a
        // scoped flush landing between another thread's clwb and sfence
        // stole the pending id — the sfence then promoted nothing and the
        // "durable" store could still revert at a crash.
        let j = Journal::new();
        j.record_store(4, 0, &[1], 0, zero_line, || {});
        j.clwb(4, || {
            let mut l = zero_line();
            l[0] = 1;
            l
        });
        j.flush_domain(1); // different domain: must not touch line 4
        j.sfence();
        assert_eq!(j.unpersisted_lines(), 0, "the clwb+sfence must promote");
        let mut crashed = 0;
        j.crash_with(|_, _| 0, |_, _| crashed += 1);
        assert_eq!(crashed, 0, "the fenced store must be durable");
    }

    #[test]
    fn flush_domain_drops_pending_clwb_of_flushed_lines() {
        let j = Journal::new();
        j.record_store(4, 0, &[1], 2, zero_line, || {});
        j.clwb(4, || {
            let mut l = zero_line();
            l[0] = 1;
            l
        });
        j.flush_domain(2);
        // The pending snapshot is gone with the entry; sfence is a no-op.
        j.sfence();
        assert_eq!(j.unpersisted_lines(), 0);
    }

    #[test]
    fn independent_lines_cut_independently() {
        let j = Journal::new();
        j.record_store(1, 0, &[1], DOMAIN_SHARED, zero_line, || {});
        j.record_store(2, 0, &[1], DOMAIN_SHARED, zero_line, || {});
        let mut results = HashMap::new();
        j.crash_with(
            |line, n| if line == 1 { n } else { 0 },
            |line, buf| {
                results.insert(line, buf[0]);
            },
        );
        assert_eq!(results[&1], 1);
        assert_eq!(results[&2], 0);
    }
}
