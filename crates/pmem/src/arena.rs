use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::journal::Journal;
pub use crate::journal::DOMAIN_SHARED;
use crate::latency::{spin_ns, LatencyModel};
use crate::stats::Stats;
use crate::superblock;
use crate::{Error, Result};

/// Cache-line size assumed throughout the system, in bytes.
pub const CACHE_LINE: usize = 64;

std::thread_local! {
    /// The epoch domain the calling thread is currently mutating under
    /// (see [`FlushDomainScope`]). [`DOMAIN_SHARED`] outside any scope.
    static CURRENT_DOMAIN: std::cell::Cell<u16> = const { std::cell::Cell::new(DOMAIN_SHARED) };
}

/// RAII scope tagging every tracked store the current thread makes with an
/// epoch-domain id, so a later [`PArena::flush_domain`] call covers them.
///
/// The durable tree enters a scope for the owning shard around every
/// operation; code running outside any scope (formatting, shared
/// bookkeeping) dirties lines as [`DOMAIN_SHARED`], which **every** scoped
/// flush covers. Scopes nest; the previous domain is restored on drop.
///
/// Tagging affects only *tracked* arenas (the crash simulator); fast-mode
/// stores ignore it.
#[derive(Debug)]
pub struct FlushDomainScope {
    prev: u16,
}

impl FlushDomainScope {
    /// Enters a scope: stores by this thread are tagged with `domain`
    /// until the returned guard drops.
    pub fn enter(domain: u16) -> Self {
        let prev = CURRENT_DOMAIN.with(|d| d.replace(domain));
        FlushDomainScope { prev }
    }
}

impl Drop for FlushDomainScope {
    fn drop(&mut self) {
        CURRENT_DOMAIN.with(|d| d.set(self.prev));
    }
}

#[inline]
fn current_domain() -> u16 {
    CURRENT_DOMAIN.with(|d| d.get())
}

/// Minimum carve alignment; guarantees persistent-pointer low bits are zero
/// (the paper packs pointers assuming 16-byte allocation alignment, §4.1.3).
pub const MIN_ALIGN: usize = 16;

const MIN_CAPACITY: usize = 64 * 1024;

/// A simulated persistent-memory arena.
///
/// The arena stands in for an NVM device mapped into the address space.
/// Durable data lives at stable **offsets** ([`PPtr`](crate::PPtr)); all
/// durable stores go through the `pwrite_*` accessors so that *tracked*
/// arenas can journal them per cache line and later simulate a power
/// failure with [`PArena::crash_seeded`].
///
/// `PArena` is a cheap handle (`Arc` internally) and is `Send + Sync`;
/// synchronisation of the *content* is the data structures' job, exactly as
/// with real memory.
///
/// # Modes
///
/// * **fast** (default): accessors compile to plain atomic loads/stores;
///   flush primitives only count and optionally inject latency. Used by all
///   benchmarks.
/// * **tracked**: every durable store is journaled per cache line under the
///   PCSO model, enabling crash injection. Used by recovery tests.
///
/// # Example
///
/// ```
/// use incll_pmem::PArena;
///
/// # fn main() -> Result<(), incll_pmem::Error> {
/// let arena = PArena::builder()
///     .capacity_bytes(1 << 20)
///     .tracked(true)
///     .build()?;
/// let off = arena.carve(128, 64)?;
/// arena.pwrite_u64(off, 1);
/// arena.crash_seeded(42); // the store may or may not survive
/// let v = arena.pread_u64(off);
/// assert!(v == 0 || v == 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct PArena {
    inner: Arc<Inner>,
}

struct Inner {
    base: NonNull<u8>,
    capacity: usize,
    layout: Layout,
    bump: AtomicU64,
    tracked: bool,
    journal: Journal,
    stats: Stats,
    latency: LatencyModel,
}

// SAFETY: the arena hands out raw access to its memory through unsafe
// accessors whose callers uphold aliasing rules; the handle itself carries
// no thread affinity. All interior mutability is via atomics or mutexes.
unsafe impl Send for Inner {}
// SAFETY: as above.
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // SAFETY: `base` was allocated with exactly this layout in `build`.
        unsafe { dealloc(self.base.as_ptr(), self.layout) };
    }
}

/// Builder for [`PArena`] (see [`PArena::builder`]).
#[derive(Debug, Clone)]
pub struct PArenaBuilder {
    capacity: usize,
    tracked: bool,
    sfence_ns: u64,
    wbinvd_ns: u64,
}

impl Default for PArenaBuilder {
    fn default() -> Self {
        PArenaBuilder {
            capacity: 64 << 20,
            tracked: false,
            sfence_ns: 0,
            wbinvd_ns: 0,
        }
    }
}

impl PArenaBuilder {
    /// Sets the arena capacity in bytes (rounded up to 4 KiB).
    #[must_use]
    pub fn capacity_bytes(mut self, bytes: usize) -> Self {
        self.capacity = bytes;
        self
    }

    /// Enables per-store journaling and crash injection.
    #[must_use]
    pub fn tracked(mut self, tracked: bool) -> Self {
        self.tracked = tracked;
        self
    }

    /// Sets the initial emulated post-`sfence` latency in nanoseconds.
    #[must_use]
    pub fn sfence_latency_ns(mut self, ns: u64) -> Self {
        self.sfence_ns = ns;
        self
    }

    /// Sets the initial emulated whole-cache-flush latency in nanoseconds.
    #[must_use]
    pub fn wbinvd_latency_ns(mut self, ns: u64) -> Self {
        self.wbinvd_ns = ns;
        self
    }

    /// Allocates the arena.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CapacityTooSmall`] for capacities below 64 KiB and
    /// [`Error::HostAllocationFailed`] if the host cannot back the arena.
    pub fn build(self) -> Result<PArena> {
        if self.capacity < MIN_CAPACITY {
            return Err(Error::CapacityTooSmall {
                requested: self.capacity,
                minimum: MIN_CAPACITY,
            });
        }
        let capacity = (self.capacity + 4095) & !4095;
        let layout = Layout::from_size_align(capacity, 4096).expect("valid layout");
        // SAFETY: layout has nonzero size (>= MIN_CAPACITY).
        let raw = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(raw).ok_or(Error::HostAllocationFailed {
            requested: capacity,
        })?;
        let latency = LatencyModel::new();
        latency.set_sfence_ns(self.sfence_ns);
        latency.set_wbinvd_ns(self.wbinvd_ns);
        Ok(PArena {
            inner: Arc::new(Inner {
                base,
                capacity,
                layout,
                bump: AtomicU64::new(superblock::CARVE_START),
                tracked: self.tracked,
                journal: Journal::new(),
                stats: Stats::new(),
                latency,
            }),
        })
    }
}

impl PArena {
    /// Returns a builder with default settings (64 MiB, fast mode).
    pub fn builder() -> PArenaBuilder {
        PArenaBuilder::default()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Whether per-store journaling (crash injection) is enabled.
    pub fn is_tracked(&self) -> bool {
        self.inner.tracked
    }

    /// Persistence-event counters.
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// Emulated-latency knobs.
    pub fn latency(&self) -> &LatencyModel {
        &self.inner.latency
    }

    // ------------------------------------------------------------------
    // Carving (bump allocation of fresh space; durable free lists are the
    // `incll-palloc` crate's job).
    // ------------------------------------------------------------------

    /// Carves `size` bytes at `align` alignment from never-used space.
    ///
    /// The returned offset is stable across simulated crashes. The durable
    /// allocator persists its own watermark and re-synchronises the bump
    /// pointer on recovery via [`PArena::set_bump`].
    ///
    /// # Errors
    ///
    /// [`Error::BadAlignment`] if `align` is not a power of two, and
    /// [`Error::OutOfMemory`] when the arena is exhausted.
    pub fn carve(&self, size: usize, align: usize) -> Result<u64> {
        if align == 0 || !align.is_power_of_two() {
            return Err(Error::BadAlignment { align });
        }
        let align = align.max(MIN_ALIGN) as u64;
        let size = size as u64;
        let cap = self.inner.capacity as u64;
        let mut cur = self.inner.bump.load(Ordering::Relaxed);
        loop {
            let aligned = (cur + align - 1) & !(align - 1);
            let end = aligned + size;
            if end > cap {
                return Err(Error::OutOfMemory {
                    requested: size as usize,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.bump.compare_exchange_weak(
                cur,
                end,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(aligned),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current bump watermark (first never-carved offset).
    pub fn bump(&self) -> u64 {
        self.inner.bump.load(Ordering::Relaxed)
    }

    /// Resets the bump watermark; used by recovery to re-synchronise with
    /// the durably logged watermark.
    pub fn set_bump(&self, offset: u64) {
        self.inner.bump.store(offset, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Raw access
    // ------------------------------------------------------------------

    /// Returns a raw pointer to `offset`.
    ///
    /// # Safety
    ///
    /// `offset` must lie within the arena and all use of the pointer must
    /// respect Rust aliasing rules (the arena does not synchronise access).
    #[inline]
    pub unsafe fn ptr_at(&self, offset: u64) -> *mut u8 {
        unsafe {
            debug_assert!(
                (offset as usize) < self.inner.capacity,
                "offset {offset:#x} outside arena of {} bytes",
                self.inner.capacity
            );
            self.inner.base.as_ptr().add(offset as usize)
        }
    }

    #[inline]
    fn atom(&self, offset: u64) -> &AtomicU64 {
        debug_assert_eq!(offset % 8, 0, "u64 access must be 8-aligned");
        debug_assert!((offset as usize) + 8 <= self.inner.capacity);
        // SAFETY: in-bounds (asserted), 8-aligned, and AtomicU64 may alias
        // any initialized memory; atomics make concurrent access defined.
        unsafe { &*(self.ptr_at(offset) as *const AtomicU64) }
    }

    /// Reads the 64 bytes of the cache line containing `offset` using
    /// atomic word loads (safe under concurrent atomic stores).
    fn read_line(&self, line: u64) -> [u8; CACHE_LINE] {
        let base = line * CACHE_LINE as u64;
        let mut buf = [0u8; CACHE_LINE];
        for w in 0..CACHE_LINE / 8 {
            let v = self.atom(base + (w as u64) * 8).load(Ordering::Relaxed);
            buf[w * 8..w * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        buf
    }

    fn write_line(&self, line: u64, content: &[u8; CACHE_LINE]) {
        let base = line * CACHE_LINE as u64;
        for w in 0..CACHE_LINE / 8 {
            let v = u64::from_le_bytes(content[w * 8..w * 8 + 8].try_into().unwrap());
            self.atom(base + (w as u64) * 8).store(v, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Durable loads/stores
    // ------------------------------------------------------------------

    /// Relaxed 64-bit load from `offset` (must be 8-aligned).
    #[inline]
    pub fn pread_u64(&self, offset: u64) -> u64 {
        self.atom(offset).load(Ordering::Relaxed)
    }

    /// Acquire 64-bit load from `offset`.
    #[inline]
    pub fn pread_u64_acquire(&self, offset: u64) -> u64 {
        self.atom(offset).load(Ordering::Acquire)
    }

    /// Relaxed 64-bit store to `offset` (must be 8-aligned).
    #[inline]
    pub fn pwrite_u64(&self, offset: u64, value: u64) {
        self.store_u64(offset, value, Ordering::Relaxed);
    }

    /// Release 64-bit store to `offset`.
    ///
    /// Release ordering is what the InCLL algorithm uses between the
    /// in-line log write and the mutation it protects: free on x86, it only
    /// constrains compiler reordering, yet under PCSO it suffices to order
    /// same-cache-line persistence (§2.1).
    #[inline]
    pub fn pwrite_u64_release(&self, offset: u64, value: u64) {
        self.store_u64(offset, value, Ordering::Release);
    }

    #[inline]
    fn store_u64(&self, offset: u64, value: u64, order: Ordering) {
        if self.inner.tracked {
            let line = offset / CACHE_LINE as u64;
            let within = (offset % CACHE_LINE as u64) as usize;
            self.inner.journal.record_store(
                line,
                within,
                &value.to_le_bytes(),
                current_domain(),
                || self.read_line(line),
                || self.atom(offset).store(value, order),
            );
        } else {
            self.atom(offset).store(value, order);
        }
    }

    /// 64-bit compare-exchange on `offset`.
    ///
    /// Used for lock words embedded in durable nodes. Lock words are
    /// semantically transient (recovery reinitialises them), so tracked
    /// mode journals the final value only when the exchange succeeds.
    #[inline]
    pub fn pcompare_exchange_u64(
        &self,
        offset: u64,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> std::result::Result<u64, u64> {
        if self.inner.tracked {
            let line = offset / CACHE_LINE as u64;
            let within = (offset % CACHE_LINE as u64) as usize;
            let mut out = Err(0u64);
            self.inner.journal.record_store(
                line,
                within,
                &new.to_le_bytes(),
                current_domain(),
                || self.read_line(line),
                || {
                    out = self
                        .atom(offset)
                        .compare_exchange(current, new, success, failure);
                },
            );
            // On failure a spurious journal record of `new` exists, but the
            // *apply* closure did not store, so memory and journal disagree.
            // Re-record the actual current value to keep replay idempotent.
            if let Err(actual) = out {
                let line = offset / CACHE_LINE as u64;
                self.inner.journal.record_store(
                    line,
                    within,
                    &actual.to_le_bytes(),
                    current_domain(),
                    || self.read_line(line),
                    || {},
                );
            }
            out
        } else {
            self.atom(offset)
                .compare_exchange(current, new, success, failure)
        }
    }

    /// Atomic 64-bit fetch-add on `offset`.
    #[inline]
    pub fn pfetch_add_u64(&self, offset: u64, delta: u64) -> u64 {
        if self.inner.tracked {
            let line = offset / CACHE_LINE as u64;
            let within = (offset % CACHE_LINE as u64) as usize;
            let mut prev = 0;
            self.inner.journal.record_store(
                line,
                within,
                // Placeholder; corrected below once the result is known.
                &[0u8; 8],
                current_domain(),
                || self.read_line(line),
                || {
                    prev = self.atom(offset).fetch_add(delta, Ordering::AcqRel);
                },
            );
            let new = prev.wrapping_add(delta);
            self.inner.journal.record_store(
                line,
                within,
                &new.to_le_bytes(),
                current_domain(),
                || self.read_line(line),
                || {},
            );
            prev
        } else {
            self.atom(offset).fetch_add(delta, Ordering::AcqRel)
        }
    }

    /// Relaxed 8-bit load from `offset` (any alignment).
    #[inline]
    pub fn pread_u8(&self, offset: u64) -> u8 {
        let shift = (offset % 8) * 8;
        (self.atom(offset & !7).load(Ordering::Acquire) >> shift) as u8
    }

    /// 8-bit compare-exchange on `offset` (any alignment): atomically
    /// replaces the byte at `offset` with `new` iff it currently equals
    /// `current`, returning `Ok(current)` on success or `Err(actual)` with
    /// the observed byte otherwise.
    ///
    /// Used for single-byte durable ownership words (the allocator's
    /// extent-owner table) where several writers may race on *adjacent*
    /// bytes of one word: the implementation loops a word-level CAS
    /// restricted to the target byte, so neighbouring-byte writers never
    /// fail each other spuriously at this API's level. Tracked mode
    /// journals exactly the byte finally stored, keeping crash replay
    /// idempotent.
    pub fn pcas_u8(&self, offset: u64, current: u8, new: u8) -> std::result::Result<u8, u8> {
        let word_off = offset & !7;
        let shift = ((offset % 8) * 8) as u32;
        let atom = self.atom(word_off);
        loop {
            let word = atom.load(Ordering::Acquire);
            let actual = (word >> shift) as u8;
            if actual != current {
                return Err(actual);
            }
            let new_word = (word & !(0xffu64 << shift)) | (u64::from(new) << shift);
            if self.inner.tracked {
                let line = offset / CACHE_LINE as u64;
                let within = (offset % CACHE_LINE as u64) as usize;
                let mut ok = false;
                self.inner.journal.record_store(
                    line,
                    within,
                    &[new],
                    current_domain(),
                    || self.read_line(line),
                    || {
                        ok = atom
                            .compare_exchange(word, new_word, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok();
                    },
                );
                if ok {
                    return Ok(current);
                }
                // The word CAS lost (target byte or a neighbour changed):
                // the apply closure did not store, so re-record whatever
                // byte is actually in memory to keep replay idempotent,
                // then retry from the fresh word.
                let cur_byte = (atom.load(Ordering::Acquire) >> shift) as u8;
                self.inner.journal.record_store(
                    line,
                    within,
                    &[cur_byte],
                    current_domain(),
                    || self.read_line(line),
                    || {},
                );
            } else if atom
                .compare_exchange(word, new_word, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(current);
            }
        }
    }

    /// Copies `data` into the arena at `offset` (byte-granular).
    ///
    /// Intended for regions with exclusive ownership (log buffers, freshly
    /// allocated objects); it is not atomic with respect to concurrent
    /// readers of the same words.
    pub fn pwrite_bytes(&self, offset: u64, data: &[u8]) {
        debug_assert!((offset as usize) + data.len() <= self.inner.capacity);
        if self.inner.tracked {
            // Split at cache-line boundaries so each journal record stays
            // within one line.
            let mut cursor = 0usize;
            while cursor < data.len() {
                let abs = offset + cursor as u64;
                let line = abs / CACHE_LINE as u64;
                let within = (abs % CACHE_LINE as u64) as usize;
                let chunk = (CACHE_LINE - within).min(data.len() - cursor);
                let slice = &data[cursor..cursor + chunk];
                self.inner.journal.record_store(
                    line,
                    within,
                    slice,
                    current_domain(),
                    || self.read_line(line),
                    || {
                        // SAFETY: in-bounds (asserted above); caller owns the
                        // region exclusively per this method's contract.
                        unsafe {
                            std::ptr::copy_nonoverlapping(slice.as_ptr(), self.ptr_at(abs), chunk);
                        }
                    },
                );
                cursor += chunk;
            }
        } else {
            // SAFETY: in-bounds; exclusive ownership per contract.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr_at(offset), data.len());
            }
        }
    }

    /// Copies `buf.len()` bytes out of the arena at `offset`.
    pub fn pread_bytes(&self, offset: u64, buf: &mut [u8]) {
        debug_assert!((offset as usize) + buf.len() <= self.inner.capacity);
        // SAFETY: in-bounds; plain read of possibly-racing memory is only
        // performed on regions the caller owns or has synchronised.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr_at(offset), buf.as_mut_ptr(), buf.len());
        }
    }

    // ------------------------------------------------------------------
    // Persistence primitives
    // ------------------------------------------------------------------

    /// Initiates write-back of the cache line containing `offset`
    /// (`clwb`/`clflushopt` analogue). Asynchronous: durability is only
    /// guaranteed after the next [`PArena::sfence`].
    #[inline]
    pub fn clwb(&self, offset: u64) {
        self.inner.stats.add_clwb(1);
        if self.inner.tracked {
            let line = offset / CACHE_LINE as u64;
            self.inner.journal.clwb(line, || self.read_line(line));
        }
    }

    /// Issues `clwb` for every cache line overlapping `[offset, offset+len)`.
    pub fn clwb_range(&self, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / CACHE_LINE as u64;
        let last = (offset + len as u64 - 1) / CACHE_LINE as u64;
        for line in first..=last {
            self.clwb(line * CACHE_LINE as u64);
        }
    }

    /// Persistence fence (`sfence` analogue): all previously issued `clwb`s
    /// are durable when this returns. Injects the configured emulated NVM
    /// latency.
    pub fn sfence(&self) {
        fence(Ordering::SeqCst);
        self.inner.stats.add_sfence();
        if self.inner.tracked {
            self.inner.journal.sfence();
        }
        spin_ns(self.inner.latency.sfence_ns());
    }

    /// Compiler-level release fence ordering same-cache-line stores — the
    /// free primitive InCLL relies on (§2.1: "granularity" rule).
    #[inline]
    pub fn release_fence(&self) {
        fence(Ordering::Release);
    }

    /// Whole-cache flush (`wbinvd` analogue): *everything* stored so far is
    /// durable when this returns. Injects the configured flush latency
    /// (1.38 ms on the paper's hardware, §6.2).
    pub fn global_flush(&self) {
        fence(Ordering::SeqCst);
        self.inner.stats.add_global_flush();
        if self.inner.tracked {
            self.inner.journal.flush_all();
        }
        spin_ns(self.inner.latency.wbinvd_ns());
    }

    /// Scoped flush: everything stored under [`FlushDomainScope`]s for
    /// `domain` — plus all [`DOMAIN_SHARED`] lines — is durable when this
    /// returns. The per-shard-epoch analogue of [`PArena::global_flush`]:
    /// a dirty-line write-back walk rather than `wbinvd`, so other
    /// domains' working sets keep their cache residency (and, in tracked
    /// mode, their crash exposure). Injects the configured scoped-flush
    /// latency.
    pub fn flush_domain(&self, domain: u16) {
        fence(Ordering::SeqCst);
        self.inner.stats.add_scoped_flush();
        if self.inner.tracked {
            self.inner.journal.flush_domain(domain);
        }
        spin_ns(self.inner.latency.scoped_flush_ns());
    }

    // ------------------------------------------------------------------
    // Crash injection (tracked mode)
    // ------------------------------------------------------------------

    /// Number of cache lines currently holding unpersisted stores.
    ///
    /// Always 0 in fast mode and immediately after
    /// [`PArena::global_flush`].
    pub fn unpersisted_lines(&self) -> usize {
        self.inner.journal.unpersisted_lines()
    }

    /// Number of cache lines holding unpersisted stores dirtied under
    /// `domain` (shared lines count for every domain). Always 0 in fast
    /// mode.
    pub fn unpersisted_lines_in(&self, domain: u16) -> usize {
        self.inner.journal.unpersisted_lines_in(domain)
    }

    /// Simulates a power failure with a seeded RNG choosing, per cache
    /// line, how many unpersisted stores reached NVM.
    ///
    /// After return the arena content equals a legal post-failure NVM image
    /// under PCSO; callers then run recovery against it.
    ///
    /// # Panics
    ///
    /// Panics if the arena is not tracked — crashing a fast-mode arena
    /// would silently test nothing.
    pub fn crash_seeded(&self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        self.crash_with(|_, n| rng.gen_range(0..=n));
    }

    /// Simulates a power failure with an explicit per-line prefix chooser
    /// (`choose(line_index, n_stores) -> kept_prefix`), for exhaustive
    /// crash-point enumeration in tests.
    ///
    /// # Panics
    ///
    /// Panics if the arena is not tracked, or if `choose` returns more than
    /// `n_stores`.
    pub fn crash_with(&self, choose: impl FnMut(u64, usize) -> usize) {
        assert!(
            self.inner.tracked,
            "crash injection requires a tracked arena"
        );
        self.inner
            .journal
            .crash_with(choose, |line, content| self.write_line(line, content));
    }
}

impl std::fmt::Debug for PArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PArena")
            .field("capacity", &self.inner.capacity)
            .field("bump", &self.bump())
            .field("tracked", &self.inner.tracked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(tracked: bool) -> PArena {
        PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(tracked)
            .build()
            .unwrap()
    }

    #[test]
    fn build_rejects_tiny_capacity() {
        let err = PArena::builder().capacity_bytes(1024).build().unwrap_err();
        assert!(matches!(err, Error::CapacityTooSmall { .. }));
    }

    #[test]
    fn carve_respects_alignment_and_bounds() {
        let a = arena(false);
        let x = a.carve(100, 64).unwrap();
        assert_eq!(x % 64, 0);
        assert!(x >= superblock::CARVE_START);
        let y = a.carve(8, 16).unwrap();
        assert!(y >= x + 100);
        assert_eq!(y % 16, 0);
    }

    #[test]
    fn carve_minimum_alignment_is_16() {
        let a = arena(false);
        let x = a.carve(8, 1).unwrap();
        assert_eq!(x % 16, 0);
    }

    #[test]
    fn carve_exhaustion_errors() {
        let a = arena(false);
        let res = a.carve(2 << 20, 16);
        assert!(matches!(res, Err(Error::OutOfMemory { .. })));
    }

    #[test]
    fn carve_bad_alignment_errors() {
        let a = arena(false);
        assert!(matches!(a.carve(8, 3), Err(Error::BadAlignment { .. })));
        assert!(matches!(a.carve(8, 0), Err(Error::BadAlignment { .. })));
    }

    #[test]
    fn write_read_roundtrip() {
        let a = arena(false);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 0x0123_4567_89ab_cdef);
        assert_eq!(a.pread_u64(off), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn bytes_roundtrip() {
        let a = arena(false);
        let off = a.carve(256, 64).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        a.pwrite_bytes(off, &data);
        let mut back = vec![0u8; 256];
        a.pread_bytes(off, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn stats_count_persistence_ops() {
        let a = arena(false);
        let off = a.carve(256, 64).unwrap();
        a.clwb(off);
        a.clwb_range(off, 200); // 4 lines
        a.sfence();
        a.global_flush();
        let s = a.stats().snapshot();
        assert_eq!(s.clwb, 5);
        assert_eq!(s.sfence, 1);
        assert_eq!(s.global_flush, 1);
    }

    #[test]
    fn tracked_store_crash_all_or_nothing() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 77);
        assert_eq!(a.unpersisted_lines(), 1);
        a.crash_with(|_, _| 0);
        assert_eq!(a.pread_u64(off), 0);
        a.pwrite_u64(off, 88);
        a.crash_with(|_, n| n);
        assert_eq!(a.pread_u64(off), 88);
    }

    #[test]
    fn tracked_same_line_prefix_order() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 1); // store 0
        a.pwrite_u64(off + 8, 2); // store 1
        a.pwrite_u64(off, 3); // store 2
        a.crash_with(|_, _| 2);
        assert_eq!(a.pread_u64(off), 1);
        assert_eq!(a.pread_u64(off + 8), 2);
    }

    #[test]
    fn clwb_sfence_makes_durable() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 9);
        a.clwb(off);
        a.sfence();
        assert_eq!(a.unpersisted_lines(), 0);
        a.crash_with(|_, _| 0);
        assert_eq!(a.pread_u64(off), 9);
    }

    #[test]
    fn global_flush_makes_everything_durable() {
        let a = arena(true);
        let off = a.carve(1024, 64).unwrap();
        for i in 0..128 {
            a.pwrite_u64(off + i * 8, i + 1);
        }
        a.global_flush();
        a.crash_with(|_, _| 0);
        for i in 0..128 {
            assert_eq!(a.pread_u64(off + i * 8), i + 1);
        }
    }

    #[test]
    fn scoped_flush_covers_own_domain_and_shared_only() {
        let a = arena(true);
        let base = a.carve(256, 64).unwrap();
        {
            let _s = FlushDomainScope::enter(1);
            a.pwrite_u64(base, 11);
        }
        {
            let _s = FlushDomainScope::enter(2);
            a.pwrite_u64(base + 64, 22);
        }
        a.pwrite_u64(base + 128, 33); // untagged -> shared
        assert_eq!(a.unpersisted_lines_in(1), 2);
        a.flush_domain(1);
        a.crash_with(|_, _| 0);
        assert_eq!(a.pread_u64(base), 11, "domain-1 line durable");
        assert_eq!(a.pread_u64(base + 64), 0, "domain-2 line reverted");
        assert_eq!(a.pread_u64(base + 128), 33, "shared line durable");
        assert_eq!(a.stats().scoped_flush(), 1);
    }

    #[test]
    fn flush_domain_scopes_nest_and_restore() {
        let a = arena(true);
        let base = a.carve(192, 64).unwrap();
        let _outer = FlushDomainScope::enter(7);
        {
            let _inner = FlushDomainScope::enter(9);
            a.pwrite_u64(base, 1);
        }
        a.pwrite_u64(base + 64, 2);
        a.flush_domain(9);
        a.crash_with(|_, _| 0);
        assert_eq!(a.pread_u64(base), 1);
        assert_eq!(a.pread_u64(base + 64), 0, "outer-scope line not flushed");
    }

    #[test]
    fn crash_seeded_yields_prefixes() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 1);
        a.pwrite_u64(off, 2);
        a.pwrite_u64(off, 3);
        a.crash_seeded(7);
        let v = a.pread_u64(off);
        assert!(v <= 3, "value {v} is not a store prefix");
    }

    #[test]
    #[should_panic(expected = "tracked")]
    fn crash_on_fast_arena_panics() {
        let a = arena(false);
        a.crash_with(|_, _| 0);
    }

    #[test]
    fn fetch_add_tracked_journals_final_value() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 10);
        let prev = a.pfetch_add_u64(off, 5);
        assert_eq!(prev, 10);
        a.crash_with(|_, n| n);
        assert_eq!(a.pread_u64(off), 15);
    }

    #[test]
    fn compare_exchange_failure_keeps_actual_value() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pwrite_u64(off, 4);
        assert!(a
            .pcompare_exchange_u64(off, 9, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err());
        a.crash_with(|_, n| n);
        assert_eq!(a.pread_u64(off), 4);
    }

    #[test]
    fn byte_cas_claims_and_rejects() {
        let a = arena(false);
        let off = a.carve(64, 64).unwrap();
        assert_eq!(a.pread_u8(off + 3), 0);
        assert_eq!(a.pcas_u8(off + 3, 0, 7), Ok(0));
        assert_eq!(a.pread_u8(off + 3), 7);
        // Wrong expectation reports the observed byte, stores nothing.
        assert_eq!(a.pcas_u8(off + 3, 0, 9), Err(7));
        assert_eq!(a.pread_u8(off + 3), 7);
        // Neighbouring bytes of the same word are untouched.
        assert_eq!(a.pcas_u8(off + 4, 0, 1), Ok(0));
        assert_eq!(a.pread_u8(off + 3), 7);
        assert_eq!(a.pread_u8(off + 4), 1);
    }

    #[test]
    fn byte_cas_tracked_is_all_or_nothing_across_a_crash() {
        let a = arena(true);
        let off = a.carve(64, 64).unwrap();
        a.pcas_u8(off + 5, 0, 3).unwrap();
        // Unflushed: a crash that drops every unpersisted store loses the
        // claim whole (the byte reads free again, never torn)...
        a.crash_with(|_, _| 0);
        assert_eq!(a.pread_u8(off + 5), 0);
        // ...and once flushed, the claim survives any crash.
        a.pcas_u8(off + 5, 0, 3).unwrap();
        a.clwb(off + 5);
        a.sfence();
        a.crash_with(|_, _| 0);
        assert_eq!(a.pread_u8(off + 5), 3);
    }

    #[test]
    fn byte_cas_is_atomic_under_contention() {
        let a = arena(false);
        let off = a.carve(64, 64).unwrap();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 1..=8u8 {
                let a = a.clone();
                handles.push(s.spawn(move || a.pcas_u8(off, 0, t).is_ok()));
            }
            let winners = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count();
            assert_eq!(winners, 1, "exactly one claimant may win the byte");
        });
        assert!((1..=8).contains(&a.pread_u8(off)));
    }

    #[test]
    fn handle_is_cheap_clone_sharing_state() {
        let a = arena(false);
        let b = a.clone();
        let off = a.carve(8, 16).unwrap();
        b.pwrite_u64(off, 3);
        assert_eq!(a.pread_u64(off), 3);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PArena>();
    }
}
