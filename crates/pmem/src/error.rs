use std::error::Error as StdError;
use std::fmt;

/// Errors returned by persistent-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The arena has no room left for the requested carve.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Total arena capacity in bytes.
        capacity: usize,
    },
    /// The requested capacity is too small to hold the superblock.
    CapacityTooSmall {
        /// Bytes requested at build time.
        requested: usize,
        /// Minimum supported capacity.
        minimum: usize,
    },
    /// An alignment that is zero or not a power of two was requested.
    BadAlignment {
        /// The offending alignment value.
        align: usize,
    },
    /// The durable failed-epoch set is full; no further crashes can be
    /// recorded (see DESIGN.md for the bound).
    FailedEpochSetFull,
    /// The host allocator could not provide backing memory for the arena.
    HostAllocationFailed {
        /// Bytes requested from the host.
        requested: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfMemory {
                requested,
                capacity,
            } => write!(
                f,
                "arena out of memory: requested {requested} bytes from a {capacity}-byte arena"
            ),
            Error::CapacityTooSmall { requested, minimum } => write!(
                f,
                "arena capacity {requested} is below the {minimum}-byte minimum"
            ),
            Error::BadAlignment { align } => {
                write!(f, "alignment {align} is not a nonzero power of two")
            }
            Error::FailedEpochSetFull => {
                write!(f, "durable failed-epoch set is full")
            }
            Error::HostAllocationFailed { requested } => {
                write!(f, "host allocation of {requested} bytes failed")
            }
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            Error::OutOfMemory {
                requested: 10,
                capacity: 5,
            },
            Error::CapacityTooSmall {
                requested: 1,
                minimum: 4096,
            },
            Error::BadAlignment { align: 3 },
            Error::FailedEpochSetFull,
            Error::HostAllocationFailed { requested: 1 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
