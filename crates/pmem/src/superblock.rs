//! Durable superblock layout: fixed offsets shared by all subsystems.
//!
//! The first 4 KiB of the arena act like a filesystem superblock. Each
//! subsystem owns a region (documented below) and accesses it through its
//! own logic; this module only centralises the offsets so they cannot
//! collide, plus the format/open handshake.
//!
//! Cache-line discipline matters here: every field group that is protected
//! by an in-cache-line log (the allocator's bump watermark and free-list
//! heads) occupies a single dedicated cache line, so the InCLL ordering
//! argument (§2.1 "granularity") applies.
//!
//! Layout (byte offsets from the arena base; line = 64 B):
//!
//! | Offset | Line(s) | Contents |
//! |--------|---------|----------|
//! | 0      | 0       | reserved (offset 0 is the null `PPtr`) |
//! | 64     | 1       | magic, version, durable current epoch, first epoch of current execution |
//! | 128    | 2–16    | failed-epoch set: count + up to 119 epochs |
//! | 1088   | 17      | allocator bump watermark InCLL triple |
//! | 1152   | 18      | shard-0 root holder + tree metadata + shard count |
//! | 1216   | 19      | external-log region descriptor |
//! | 1280   | 20–43   | allocator class heads, one line each (24 classes) |
//! | 2816   | 44–59   | shard root-holder table (shards 1..64, 16 B cells) |
//! | 3840   | 60–63   | spare |
//! | 4096   | —       | start of carvable space |

use crate::{Error, PArena, Result};

/// Identifies a formatted InCLL arena.
pub const MAGIC: u64 = 0x19C1_1C05_A5B1_2019;
/// On-media format version. Version 2 added the shard table
/// ([`SB_SHARD_COUNT`], [`shard_root_holder`]); version-1 media has no
/// shard count and must be rejected by openers, not reinterpreted.
pub const VERSION: u64 = 2;

/// Offset of the magic word.
pub const SB_MAGIC: u64 = 64;
/// Offset of the format version.
pub const SB_VERSION: u64 = 72;
/// Offset of the durable current-epoch word (see `incll-epoch`).
pub const SB_CUR_EPOCH: u64 = 80;
/// Offset of the first-epoch-of-current-execution word.
pub const SB_EXEC_EPOCH: u64 = 88;

/// Offset of the failed-epoch count.
pub const SB_FAILED_CNT: u64 = 128;
/// Offset of the failed-epoch array (u64 entries).
pub const SB_FAILED_ARR: u64 = 136;
/// Capacity of the failed-epoch set.
///
/// Each entry is one crash survived by this arena. The array is bounded;
/// see DESIGN.md for the rationale (compaction would require proving no
/// node still carries an older `nodeEpoch`).
pub const MAX_FAILED_EPOCHS: usize = 119;

/// Offset of the allocator bump-watermark InCLL triple
/// (watermark, watermarkInCLL, epoch — one cache line).
pub const SB_BUMP: u64 = 1088;
/// Offset of the logged (epoch-start) watermark.
pub const SB_BUMP_INCLL: u64 = 1096;
/// Offset of the watermark log's epoch tag.
pub const SB_BUMP_EPOCH: u64 = 1104;

/// Offset of the durable tree-root pointer (a root-holder cell). Under
/// sharding this is **shard 0's** holder — the legacy single-tree layout
/// is exactly the `shard_count == 1` case (see [`shard_root_holder`]).
pub const SB_TREE_ROOT: u64 = 1152;
/// Offset of the root holder's logged-epoch tag (holders are externally
/// logged at most once per epoch; the tag enforces it).
pub const SB_TREE_ROOT_TAG: u64 = 1160;
/// Offset of tree metadata (initialisation flag).
pub const SB_TREE_META: u64 = 1168;
/// Offset of the keyspace shard count, fixed at store creation (power of
/// two, `1..=`[`MAX_SHARDS`]; 0 on media that predates store creation).
pub const SB_SHARD_COUNT: u64 = 1176;

/// Offset of the shard root-holder table: one 16-byte holder/tag cell per
/// shard **after the first** (shard 0 keeps the legacy
/// [`SB_TREE_ROOT`]/[`SB_TREE_ROOT_TAG`] pair, so a 1-shard store is
/// byte-identical to the pre-shard layout outside the version and count
/// words).
pub const SB_SHARD_TABLE: u64 = 2816;
/// Maximum shard count (the table holds `MAX_SHARDS - 1` cells).
pub const MAX_SHARDS: usize = 64;

/// The superblock offset of shard `i`'s root-holder cell (its logged-epoch
/// tag lives at `+8`).
///
/// # Panics
///
/// Panics if `i >= MAX_SHARDS`.
#[inline]
pub const fn shard_root_holder(i: usize) -> u64 {
    assert!(i < MAX_SHARDS, "shard index out of range");
    if i == 0 {
        SB_TREE_ROOT
    } else {
        SB_SHARD_TABLE + (i as u64 - 1) * 16
    }
}

/// Offset of the external-log region pointer.
pub const SB_EXTLOG_OFF: u64 = 1216;
/// Offset of the external-log thread-count word.
pub const SB_EXTLOG_THREADS: u64 = 1224;
/// Offset of the external-log per-thread capacity word.
pub const SB_EXTLOG_PER_THREAD: u64 = 1232;

/// Offset of the first allocator class-head line.
pub const SB_PALLOC_HEADS: u64 = 1280;
/// Maximum number of allocator size classes (one line each).
pub const PALLOC_MAX_CLASSES: usize = 24;

/// First carvable offset (end of the superblock).
pub const CARVE_START: u64 = 4096;

/// Formats a fresh arena: writes magic/version, zeroes all superblock
/// fields, and flushes the superblock.
///
/// Calling `format` on an already-formatted arena wipes it.
pub fn format(arena: &PArena) {
    // Zero the whole superblock area first (idempotent on fresh arenas).
    let zeros = [0u8; (CARVE_START - 64) as usize];
    arena.pwrite_bytes(64, &zeros);
    arena.pwrite_u64(SB_VERSION, VERSION);
    arena.pwrite_u64(SB_CUR_EPOCH, 1);
    arena.pwrite_u64(SB_EXEC_EPOCH, 1);
    arena.pwrite_u64(SB_BUMP, CARVE_START);
    arena.pwrite_u64(SB_BUMP_INCLL, CARVE_START);
    // Magic last: a torn format leaves the arena unformatted.
    arena.pwrite_u64(SB_MAGIC, MAGIC);
    arena.clwb_range(64, (CARVE_START - 64) as usize);
    arena.sfence();
    arena.set_bump(CARVE_START);
}

/// Returns `true` if the arena carries a valid superblock of the
/// **current** layout version.
pub fn is_formatted(arena: &PArena) -> bool {
    arena.pread_u64(SB_MAGIC) == MAGIC && arena.pread_u64(SB_VERSION) == VERSION
}

/// Returns `true` if the arena carries the InCLL magic at all, regardless
/// of layout version. Openers use this to distinguish "blank, safe to
/// format" from "formatted with an incompatible layout" — the latter must
/// surface a typed error, never a silent reformat.
pub fn has_magic(arena: &PArena) -> bool {
    arena.pread_u64(SB_MAGIC) == MAGIC
}

/// The on-media layout version word (meaningful only when
/// [`has_magic`] is true).
pub fn raw_version(arena: &PArena) -> u64 {
    arena.pread_u64(SB_VERSION)
}

/// Appends `epoch` to the durable failed-epoch set (idempotent), flushing
/// the update.
///
/// # Errors
///
/// [`Error::FailedEpochSetFull`] once [`MAX_FAILED_EPOCHS`] crashes have
/// been recorded.
pub fn record_failed_epoch(arena: &PArena, epoch: u64) -> Result<()> {
    let cnt = arena.pread_u64(SB_FAILED_CNT) as usize;
    for i in 0..cnt.min(MAX_FAILED_EPOCHS) {
        if arena.pread_u64(SB_FAILED_ARR + (i as u64) * 8) == epoch {
            return Ok(()); // already recorded (re-crash during recovery)
        }
    }
    if cnt >= MAX_FAILED_EPOCHS {
        return Err(Error::FailedEpochSetFull);
    }
    // Entry first, count second: a torn append is invisible.
    arena.pwrite_u64(SB_FAILED_ARR + (cnt as u64) * 8, epoch);
    arena.clwb(SB_FAILED_ARR + (cnt as u64) * 8);
    arena.sfence();
    arena.pwrite_u64(SB_FAILED_CNT, cnt as u64 + 1);
    arena.clwb(SB_FAILED_CNT);
    arena.sfence();
    Ok(())
}

/// Reads the durable failed-epoch set.
pub fn failed_epochs(arena: &PArena) -> Vec<u64> {
    let cnt = (arena.pread_u64(SB_FAILED_CNT) as usize).min(MAX_FAILED_EPOCHS);
    (0..cnt)
        .map(|i| arena.pread_u64(SB_FAILED_ARR + (i as u64) * 8))
        .collect()
}

/// Returns `true` if `epoch` is in the durable failed-epoch set.
pub fn is_failed_epoch(arena: &PArena, epoch: u64) -> bool {
    failed_epochs(arena).contains(&epoch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> PArena {
        PArena::builder().capacity_bytes(1 << 20).build().unwrap()
    }

    #[test]
    fn layout_lines_do_not_collide() {
        // Field groups that must share a line, and groups that must not.
        assert_eq!(SB_BUMP / 64, SB_BUMP_INCLL / 64);
        assert_eq!(SB_BUMP / 64, SB_BUMP_EPOCH / 64);
        assert_ne!(SB_MAGIC / 64, SB_FAILED_CNT / 64);
        assert_ne!(SB_BUMP / 64, SB_TREE_ROOT / 64);
        assert!(SB_FAILED_ARR + (MAX_FAILED_EPOCHS as u64) * 8 <= SB_BUMP);
        assert!(SB_PALLOC_HEADS + (PALLOC_MAX_CLASSES as u64) * 64 <= CARVE_START);
        // The shard table must sit past the allocator heads and fit in
        // front of the carvable space.
        assert!(SB_SHARD_TABLE >= SB_PALLOC_HEADS + (PALLOC_MAX_CLASSES as u64) * 64);
        assert!(shard_root_holder(MAX_SHARDS - 1) + 16 <= CARVE_START);
    }

    #[test]
    fn shard_holder_cells_are_distinct_and_aligned() {
        assert_eq!(shard_root_holder(0), SB_TREE_ROOT);
        let holders: Vec<u64> = (0..MAX_SHARDS).map(shard_root_holder).collect();
        for (i, &h) in holders.iter().enumerate() {
            assert_eq!(h % 16, 0, "holder {i} must be 16-byte aligned");
            for &other in &holders[i + 1..] {
                assert!(other >= h + 16, "holder cells must not overlap");
            }
        }
    }

    #[test]
    fn version_probes_distinguish_blank_stale_and_current() {
        let a = arena();
        assert!(!has_magic(&a));
        format(&a);
        assert!(has_magic(&a));
        assert!(is_formatted(&a));
        assert_eq!(raw_version(&a), VERSION);
        // A pre-shard (v1) superblock keeps its magic but is no longer
        // "formatted" in the current sense.
        a.pwrite_u64(SB_VERSION, 1);
        assert!(has_magic(&a));
        assert!(!is_formatted(&a));
        assert_eq!(raw_version(&a), 1);
    }

    #[test]
    fn format_then_open() {
        let a = arena();
        assert!(!is_formatted(&a));
        format(&a);
        assert!(is_formatted(&a));
        assert_eq!(a.pread_u64(SB_CUR_EPOCH), 1);
        assert_eq!(a.pread_u64(SB_BUMP), CARVE_START);
    }

    #[test]
    fn failed_epoch_set_roundtrip() {
        let a = arena();
        format(&a);
        assert!(failed_epochs(&a).is_empty());
        record_failed_epoch(&a, 10).unwrap();
        record_failed_epoch(&a, 12).unwrap();
        record_failed_epoch(&a, 10).unwrap(); // idempotent
        assert_eq!(failed_epochs(&a), vec![10, 12]);
        assert!(is_failed_epoch(&a, 12));
        assert!(!is_failed_epoch(&a, 11));
    }

    #[test]
    fn failed_epoch_set_fills_up() {
        let a = arena();
        format(&a);
        for e in 0..MAX_FAILED_EPOCHS as u64 {
            record_failed_epoch(&a, e + 100).unwrap();
        }
        assert!(matches!(
            record_failed_epoch(&a, 5),
            Err(Error::FailedEpochSetFull)
        ));
        // Existing entries still readable and idempotent re-record still ok.
        record_failed_epoch(&a, 100).unwrap();
    }

    #[test]
    fn format_survives_tracked_crash_after_flush() {
        let a = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        format(&a);
        a.global_flush();
        a.crash_seeded(1);
        assert!(is_formatted(&a));
    }
}
