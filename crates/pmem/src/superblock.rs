//! Durable superblock layout: fixed offsets shared by all subsystems.
//!
//! The first [`CARVE_START`] bytes of the arena act like a filesystem
//! superblock. Each subsystem owns a region (documented below) and accesses
//! it through its own logic; this module only centralises the offsets so
//! they cannot collide, plus the format/open handshake.
//!
//! Cache-line discipline matters here: every field group that is protected
//! by an in-cache-line log (the allocator's bump watermark and free-list
//! heads) occupies a single dedicated cache line, so the InCLL ordering
//! argument (§2.1 "granularity") applies.
//!
//! Layout (byte offsets from the arena base; line = 64 B):
//!
//! | Offset | Line(s)  | Contents |
//! |--------|----------|----------|
//! | 0      | 0        | reserved (offset 0 is the null `PPtr`) |
//! | 64     | 1        | magic, version, shard-0 durable current epoch, shard-0 first epoch of current execution |
//! | 128    | 2–16     | shard-0 failed-epoch set: count + up to 119 epochs |
//! | 1088   | 17       | shard-0 allocator bump watermark InCLL triple |
//! | 1152   | 18       | shard-0 root holder + tree metadata + shard count |
//! | 1216   | 19       | external-log region descriptor (incl. domain count) |
//! | 1280   | 20–43    | allocator class heads descriptor + head lines |
//! | 2816   | 44–59    | shard root-holder table (shards 1..64, 16 B cells) |
//! | 3840   | 60       | extent-pool descriptor (pool base + extent bytes + extent count) |
//! | 3904   | 61       | batch next-id word (monotonic durable batch-id allocator) |
//! | 3968   | 62–63    | batch-commit table: 8 × 16 B (batch id, shard mask) slots |
//! | 4096   | 64–190   | epoch-domain table: per-shard epoch counters + failed sets (shards 1..64, 128 B cells) |
//! | 12160  | 190–191  | extent-owner table: one owner byte per extent (up to 128) |
//! | 12288  | 192–254  | per-shard watermark table: one InCLL triple line per shard 1..64 |
//! | 16320  | 255      | spare |
//! | 16384  | —        | start of carvable space |
//!
//! Shard 0's epoch counters, failed-epoch set and watermark triple stay on
//! the **legacy cells** (offsets 64–1152), so a `shards(1)` store keeps
//! the pre-domain cell positions; shards 1..63 get a 128-byte cell each in
//! the domain table (their own durable current/exec epoch pair plus a
//! smaller failed-epoch set) and — since v4 — a dedicated watermark line
//! each in the per-shard watermark table, so concurrent slab carves on
//! different shards never share a cache line.

use crate::{Error, PArena, Result};

/// Identifies a formatted InCLL arena.
pub const MAGIC: u64 = 0x19C1_1C05_A5B1_2019;
/// On-media format version. Version 6 replaced the static per-shard
/// region split with the **chunked extent pool**: the carvable space is a
/// pool of fixed-size extents and shards claim them online from the
/// durable extent-owner table ([`SB_EXTENT_OWNERS`], descriptor at
/// [`SB_ARENA_SPLIT`]/[`SB_ARENA_REGION_BYTES`]/[`SB_EXTENT_COUNT`]) — a
/// v5 split descriptor would be misread as a pool, so v5 media is
/// rejected like every other foreign version. Version 5 added the
/// batch-commit table ([`SB_BATCH_NEXT_ID`], [`SB_BATCH_TABLE`]) backing
/// cross-shard atomic write batches. Version 4 added the per-shard
/// allocator arenas: the carve-region descriptor, the per-shard
/// watermark table ([`SB_SHARD_BUMP_TABLE`]) and another [`CARVE_START`]
/// move. Version 3 added the per-shard epoch-domain table
/// ([`SB_DOMAIN_TABLE`]); version 2 added the shard table
/// ([`SB_SHARD_COUNT`], [`shard_root_holder`]); version-1 media has
/// neither. Older media must be rejected by openers, not reinterpreted.
pub const VERSION: u64 = 6;

/// Offset of the magic word.
pub const SB_MAGIC: u64 = 64;
/// Offset of the format version.
pub const SB_VERSION: u64 = 72;
/// Offset of shard 0's durable current-epoch word (see `incll-epoch`).
pub const SB_CUR_EPOCH: u64 = 80;
/// Offset of shard 0's first-epoch-of-current-execution word.
pub const SB_EXEC_EPOCH: u64 = 88;

/// Offset of shard 0's failed-epoch count.
pub const SB_FAILED_CNT: u64 = 128;
/// Offset of shard 0's failed-epoch array (u64 entries).
pub const SB_FAILED_ARR: u64 = 136;
/// Capacity of shard 0's failed-epoch set.
///
/// Each entry is one crash survived by this arena since the last completed
/// checkpoint: completed checkpoints prune the set (see
/// [`prune_failed_epochs`] and the compaction pass in `incll`'s advance
/// hooks), so the bound is on crashes *between* checkpoints, not on the
/// arena's lifetime.
pub const MAX_FAILED_EPOCHS: usize = 119;

/// Offset of **shard 0's** allocator bump-watermark InCLL triple
/// (watermark, watermarkInCLL, epoch — one cache line). On a `shards(1)`
/// store this is the whole arena's single carve frontier (the pre-v4
/// meaning); under per-shard arenas (v4) it is shard 0's frontier, with
/// shards 1..63 on [`SB_SHARD_BUMP_TABLE`] lines.
pub const SB_BUMP: u64 = 1088;
/// Offset of the logged (epoch-start) watermark.
pub const SB_BUMP_INCLL: u64 = 1096;
/// Offset of the watermark log's epoch tag.
pub const SB_BUMP_EPOCH: u64 = 1104;

/// Offset of the extent-pool base word (v6): the base offset of the
/// extent pool the allocator carved out of the arena at create time, or 0
/// on a store whose allocator was created single-domain (one shared
/// frontier, the paper's exact media shape — a `shards(1)` store keeps a
/// single implicit extent chain and never touches the pool machinery).
pub const SB_ARENA_SPLIT: u64 = 3840;
/// Offset of the bytes-per-extent word (v6; meaningful only when
/// [`SB_ARENA_SPLIT`] is nonzero). Power of two; extent `i` spans
/// `[base + i·extent_bytes, base + (i+1)·extent_bytes)`.
pub const SB_ARENA_REGION_BYTES: u64 = 3848;
/// Offset of the extent-count word (v6): how many extents the pool holds
/// (`1..=`[`MAX_EXTENTS`]). Shares line 60 with the other two descriptor
/// words, so the whole descriptor persists with one write-back.
pub const SB_EXTENT_COUNT: u64 = 3856;

// ---------------------------------------------------------------------
// Extent-owner table (v6)
// ---------------------------------------------------------------------

/// Offset of the extent-owner table: one byte per extent, 0 = free,
/// `shard + 1` = owned by that shard. The table occupies two dedicated
/// cache lines (no other superblock field shares them), so claim
/// write-backs never race another subsystem's line state.
///
/// A claim is a byte CAS (`0 → shard + 1`) followed by `clwb`/`sfence`
/// ([`claim_extent`]): the byte is the *only* durable word naming the
/// owner, so a crash anywhere in the protocol leaves the extent either
/// durably owned or durably free — never torn. The shard's carve
/// frontier can only reference the extent *after* the fence, and
/// frontiers persist no earlier than the shard's next checkpoint flush,
/// so a durable frontier inside an extent implies a durable claim.
/// The converse crash shape — claim durable, frontier not — is the
/// **in-doubt claim**: recovery keeps the extent on the owning shard's
/// reserve chain (extents are never released), with zero media writes,
/// so the repair is byte-identical at every recovery worker count.
pub const SB_EXTENT_OWNERS: u64 = 12160;
/// Maximum number of pool extents (the owner table is two cache lines).
pub const MAX_EXTENTS: usize = 128;

/// The offset of extent `i`'s owner byte.
///
/// # Panics
///
/// Panics if `i >= MAX_EXTENTS`.
#[inline]
pub const fn extent_owner_off(i: usize) -> u64 {
    assert!(i < MAX_EXTENTS, "extent index out of range");
    SB_EXTENT_OWNERS + i as u64
}

/// Reads extent `i`'s owner byte: 0 = free, `shard + 1` = owned.
pub fn extent_owner(arena: &PArena, i: usize) -> u8 {
    arena.pread_u8(extent_owner_off(i))
}

/// Claims extent `i` for `shard` if it is free, making the claim durable
/// before returning `true`. Returns `false` when another shard (or a
/// prior claim by this one) already owns it. See [`SB_EXTENT_OWNERS`]
/// for the crash-atomicity argument.
///
/// # Panics
///
/// Panics if `shard + 1` does not fit the owner byte.
pub fn claim_extent(arena: &PArena, i: usize, shard: usize) -> bool {
    let owner = u8::try_from(shard + 1).expect("shard fits the owner byte");
    let off = extent_owner_off(i);
    if arena.pcas_u8(off, 0, owner).is_err() {
        return false;
    }
    arena.clwb(off);
    arena.sfence();
    true
}

// ---------------------------------------------------------------------
// Batch-commit table (v5)
// ---------------------------------------------------------------------

/// Offset of the durable next-batch-id word (v5). Monotonic: every
/// cross-shard write batch takes the current value and durably bumps it
/// **before** writing any intent entry, so a batch id on media is never
/// reissued. Format initialises it to 1 (0 means "no batch" in the
/// commit table below).
pub const SB_BATCH_NEXT_ID: u64 = 3904;

/// Offset of the batch-commit table (v5): [`BATCH_SLOTS`] slots of 16
/// bytes each — word 0 the batch id (0 = empty slot), word 1 the mask of
/// shards the batch touched (bit `s` = shard `s`; [`MAX_SHARDS`] is 64,
/// so one word suffices).
///
/// A batch is **committed** iff some slot's id word equals its batch id
/// exactly. Both words of a slot share one cache line, so the commit
/// protocol (mask first, id second, same line) rides the InCLL
/// same-line-ordering argument: a torn commit leaves the old id, never a
/// new id with a stale mask.
pub const SB_BATCH_TABLE: u64 = 3968;
/// Number of batch-commit slots. Bounds the batches that can be in-doubt
/// at once; committers reuse slots once every shard in a slot's mask has
/// advanced past the batch's intents (see `incll`'s eviction protocol).
pub const BATCH_SLOTS: usize = 8;

/// The offset of batch-commit slot `i` (its shard-mask word lives at
/// `+8`).
///
/// # Panics
///
/// Panics if `i >= BATCH_SLOTS`.
#[inline]
pub const fn batch_slot_off(i: usize) -> u64 {
    assert!(i < BATCH_SLOTS, "batch slot out of range");
    SB_BATCH_TABLE + (i as u64) * 16
}

/// Durably allocates the next batch id: reads the counter, bumps and
/// flushes it, and returns the pre-bump value. A crash between the bump
/// and the batch's first intent merely wastes an id.
pub fn next_batch_id(arena: &PArena) -> u64 {
    let id = arena.pread_u64(SB_BATCH_NEXT_ID).max(1);
    arena.pwrite_u64(SB_BATCH_NEXT_ID, id + 1);
    arena.clwb(SB_BATCH_NEXT_ID);
    arena.sfence();
    id
}

/// Reads batch-commit slot `i` as `(batch_id, shard_mask)`; id 0 means
/// the slot is empty.
pub fn batch_slot(arena: &PArena, i: usize) -> (u64, u64) {
    let off = batch_slot_off(i);
    (arena.pread_u64(off), arena.pread_u64(off + 8))
}

/// Durably writes the commit record for `batch_id` into slot `i`: mask
/// first, id second — both on one line, one flush. After the fence the
/// batch is committed; before it, the slot still names its previous
/// occupant (or 0) and the batch is in doubt (recovery drops it).
pub fn set_batch_slot(arena: &PArena, i: usize, batch_id: u64, shard_mask: u64) {
    let off = batch_slot_off(i);
    arena.pwrite_u64(off + 8, shard_mask);
    arena.pwrite_u64(off, batch_id);
    arena.clwb(off);
    arena.sfence();
}

/// Clears shard `shard`'s bit in slot `i`'s durable mask (plain store, no
/// flush — callers run this after the durable epoch bump that already
/// made the batch's intents on that shard non-replayable, so losing the
/// clear is merely conservative).
pub fn clear_batch_shard(arena: &PArena, i: usize, shard: usize) {
    let off = batch_slot_off(i);
    let mask = arena.pread_u64(off + 8);
    arena.pwrite_u64(off + 8, mask & !(1u64 << shard));
}

/// Returns `true` if `batch_id` has a durable commit record: some slot's
/// id word matches it exactly. Exact match is the whole protocol —
/// reused slots hold *different* ids, so an in-doubt batch can never
/// alias a committed one.
pub fn batch_is_committed(arena: &PArena, batch_id: u64) -> bool {
    batch_id != 0 && (0..BATCH_SLOTS).any(|i| arena.pread_u64(batch_slot_off(i)) == batch_id)
}

/// Offset of the durable tree-root pointer (a root-holder cell). Under
/// sharding this is **shard 0's** holder — the legacy single-tree layout
/// is exactly the `shard_count == 1` case (see [`shard_root_holder`]).
pub const SB_TREE_ROOT: u64 = 1152;
/// Offset of the root holder's logged-epoch tag (holders are externally
/// logged at most once per epoch; the tag enforces it).
pub const SB_TREE_ROOT_TAG: u64 = 1160;
/// Offset of tree metadata (initialisation flag).
pub const SB_TREE_META: u64 = 1168;
/// Offset of the keyspace shard count, fixed at store creation (power of
/// two, `1..=`[`MAX_SHARDS`]; 0 on media that predates store creation).
pub const SB_SHARD_COUNT: u64 = 1176;

/// Offset of the shard root-holder table: one 16-byte holder/tag cell per
/// shard **after the first** (shard 0 keeps the legacy
/// [`SB_TREE_ROOT`]/[`SB_TREE_ROOT_TAG`] pair, so a 1-shard store is
/// byte-identical to the pre-shard layout outside the version and count
/// words).
pub const SB_SHARD_TABLE: u64 = 2816;
/// Maximum shard count (the table holds `MAX_SHARDS - 1` cells).
pub const MAX_SHARDS: usize = 64;

/// The superblock offset of shard `i`'s root-holder cell (its logged-epoch
/// tag lives at `+8`).
///
/// # Panics
///
/// Panics if `i >= MAX_SHARDS`.
#[inline]
pub const fn shard_root_holder(i: usize) -> u64 {
    assert!(i < MAX_SHARDS, "shard index out of range");
    if i == 0 {
        SB_TREE_ROOT
    } else {
        SB_SHARD_TABLE + (i as u64 - 1) * 16
    }
}

/// Offset of the external-log region pointer.
pub const SB_EXTLOG_OFF: u64 = 1216;
/// Offset of the external-log thread-count word.
pub const SB_EXTLOG_THREADS: u64 = 1224;
/// Offset of the external-log per-slot capacity word.
pub const SB_EXTLOG_PER_THREAD: u64 = 1232;
/// Offset of the external-log domain-count word (v3; 0 reads as 1 so
/// domain-oblivious media stays interpretable).
pub const SB_EXTLOG_DOMAINS: u64 = 1240;

/// Offset of the first allocator class-head line.
pub const SB_PALLOC_HEADS: u64 = 1280;
/// Maximum number of allocator size classes (one line each).
pub const PALLOC_MAX_CLASSES: usize = 24;

// ---------------------------------------------------------------------
// Epoch-domain table (v3)
// ---------------------------------------------------------------------

/// Offset of the epoch-domain table: one [`DOMAIN_CELL_BYTES`] cell per
/// shard **after the first** (shard 0 keeps the legacy epoch and
/// failed-set cells, preserving the pre-domain positions for `shards(1)`
/// media).
///
/// Cell layout (byte offsets within the cell):
///
/// ```text
/// +0  durable current epoch    +8  first epoch of current execution
/// +16 failed-epoch count       +24 failed epochs (up to 13 × u64)
/// ```
pub const SB_DOMAIN_TABLE: u64 = 4096;
/// Bytes per epoch-domain cell (two cache lines).
pub const DOMAIN_CELL_BYTES: u64 = 128;
/// Failed-epoch capacity of a non-zero shard's domain cell. Smaller than
/// shard 0's legacy [`MAX_FAILED_EPOCHS`]; compaction at completed
/// checkpoints keeps both far from full.
pub const MAX_FAILED_EPOCHS_SHARD: usize = 13;

#[inline]
const fn domain_cell(shard: usize) -> u64 {
    assert!(shard >= 1 && shard < MAX_SHARDS, "domain cell out of range");
    SB_DOMAIN_TABLE + (shard as u64 - 1) * DOMAIN_CELL_BYTES
}

/// The offset of shard `i`'s durable current-epoch word.
///
/// # Panics
///
/// Panics if `i >= MAX_SHARDS`.
#[inline]
pub const fn domain_cur_epoch_off(i: usize) -> u64 {
    if i == 0 {
        SB_CUR_EPOCH
    } else {
        domain_cell(i)
    }
}

/// The offset of shard `i`'s first-epoch-of-current-execution word.
///
/// # Panics
///
/// Panics if `i >= MAX_SHARDS`.
#[inline]
pub const fn domain_exec_epoch_off(i: usize) -> u64 {
    if i == 0 {
        SB_EXEC_EPOCH
    } else {
        domain_cell(i) + 8
    }
}

/// The offset of shard `i`'s failed-epoch count word.
#[inline]
const fn failed_cnt_off(i: usize) -> u64 {
    if i == 0 {
        SB_FAILED_CNT
    } else {
        domain_cell(i) + 16
    }
}

/// The offset of shard `i`'s failed-epoch array.
#[inline]
const fn failed_arr_off(i: usize) -> u64 {
    if i == 0 {
        SB_FAILED_ARR
    } else {
        domain_cell(i) + 24
    }
}

/// The failed-epoch capacity of shard `i`'s set.
#[inline]
pub const fn failed_capacity(i: usize) -> usize {
    if i == 0 {
        MAX_FAILED_EPOCHS
    } else {
        MAX_FAILED_EPOCHS_SHARD
    }
}

// ---------------------------------------------------------------------
// Per-shard watermark table (v4)
// ---------------------------------------------------------------------

/// Offset of the per-shard watermark table: one full cache line per shard
/// **after the first** (shard 0 keeps the legacy [`SB_BUMP`] triple),
/// holding that shard's carve-frontier InCLL triple:
///
/// ```text
/// +0  watermark    +8  watermarkInCLL    +16 epoch tag
/// ```
///
/// Each shard's triple lives on its own line, so the same-line-ordering
/// (InCLL) protocol applies per shard and concurrent carves on different
/// shards never contend on a cache line. The epoch tag is on the owning
/// shard's **own** timeline — exactly the single-domain watermark
/// protocol, instantiated once per shard.
pub const SB_SHARD_BUMP_TABLE: u64 = 12288;

/// The offset of shard `i`'s durable carve watermark.
///
/// # Panics
///
/// Panics if `i >= MAX_SHARDS`.
#[inline]
pub const fn shard_bump_off(i: usize) -> u64 {
    assert!(i < MAX_SHARDS, "shard index out of range");
    if i == 0 {
        SB_BUMP
    } else {
        SB_SHARD_BUMP_TABLE + (i as u64 - 1) * 64
    }
}

/// The offset of shard `i`'s logged (epoch-start) watermark.
#[inline]
pub const fn shard_bump_incll_off(i: usize) -> u64 {
    shard_bump_off(i) + 8
}

/// The offset of shard `i`'s watermark-log epoch tag.
#[inline]
pub const fn shard_bump_epoch_off(i: usize) -> u64 {
    shard_bump_off(i) + 16
}

/// First carvable offset (end of the superblock + domain and watermark
/// tables).
pub const CARVE_START: u64 = 16384;

/// Formats a fresh arena: writes magic/version, zeroes all superblock
/// fields, and flushes the superblock.
///
/// Calling `format` on an already-formatted arena wipes it.
pub fn format(arena: &PArena) {
    // Zero the whole superblock area first (idempotent on fresh arenas).
    let zeros = [0u8; (CARVE_START - 64) as usize];
    arena.pwrite_bytes(64, &zeros);
    arena.pwrite_u64(SB_VERSION, VERSION);
    arena.pwrite_u64(SB_CUR_EPOCH, 1);
    arena.pwrite_u64(SB_EXEC_EPOCH, 1);
    arena.pwrite_u64(SB_BUMP, CARVE_START);
    arena.pwrite_u64(SB_BUMP_INCLL, CARVE_START);
    arena.pwrite_u64(SB_BATCH_NEXT_ID, 1);
    // Magic last: a torn format leaves the arena unformatted.
    arena.pwrite_u64(SB_MAGIC, MAGIC);
    arena.clwb_range(64, (CARVE_START - 64) as usize);
    arena.sfence();
    arena.set_bump(CARVE_START);
}

/// Returns `true` if the arena carries a valid superblock of the
/// **current** layout version.
pub fn is_formatted(arena: &PArena) -> bool {
    arena.pread_u64(SB_MAGIC) == MAGIC && arena.pread_u64(SB_VERSION) == VERSION
}

/// Returns `true` if the arena carries the InCLL magic at all, regardless
/// of layout version. Openers use this to distinguish "blank, safe to
/// format" from "formatted with an incompatible layout" — the latter must
/// surface a typed error, never a silent reformat.
pub fn has_magic(arena: &PArena) -> bool {
    arena.pread_u64(SB_MAGIC) == MAGIC
}

/// The on-media layout version word (meaningful only when
/// [`has_magic`] is true).
pub fn raw_version(arena: &PArena) -> u64 {
    arena.pread_u64(SB_VERSION)
}

/// Appends `epoch` to shard 0's durable failed-epoch set. See
/// [`record_failed_epoch_for`].
///
/// # Errors
///
/// [`Error::FailedEpochSetFull`] once [`MAX_FAILED_EPOCHS`] crashes have
/// accumulated without a completed checkpoint.
pub fn record_failed_epoch(arena: &PArena, epoch: u64) -> Result<()> {
    record_failed_epoch_for(arena, 0, epoch)
}

/// Appends `epoch` to shard `shard`'s durable failed-epoch set
/// (idempotent), flushing the update.
///
/// # Errors
///
/// [`Error::FailedEpochSetFull`] once [`failed_capacity`] crashes have
/// been recorded for the shard without an intervening completed
/// checkpoint (which prunes the set).
pub fn record_failed_epoch_for(arena: &PArena, shard: usize, epoch: u64) -> Result<()> {
    let cap = failed_capacity(shard);
    let arr = failed_arr_off(shard);
    let cnt_off = failed_cnt_off(shard);
    let cnt = arena.pread_u64(cnt_off) as usize;
    for i in 0..cnt.min(cap) {
        if arena.pread_u64(arr + (i as u64) * 8) == epoch {
            return Ok(()); // already recorded (re-crash during recovery)
        }
    }
    if cnt >= cap {
        return Err(Error::FailedEpochSetFull);
    }
    // Entry first, count second: a torn append is invisible.
    arena.pwrite_u64(arr + (cnt as u64) * 8, epoch);
    arena.clwb(arr + (cnt as u64) * 8);
    arena.sfence();
    arena.pwrite_u64(cnt_off, cnt as u64 + 1);
    arena.clwb(cnt_off);
    arena.sfence();
    Ok(())
}

/// Reads shard 0's durable failed-epoch set.
pub fn failed_epochs(arena: &PArena) -> Vec<u64> {
    failed_epochs_for(arena, 0)
}

/// Reads shard `shard`'s durable failed-epoch set.
pub fn failed_epochs_for(arena: &PArena, shard: usize) -> Vec<u64> {
    let cap = failed_capacity(shard);
    let arr = failed_arr_off(shard);
    let cnt = (arena.pread_u64(failed_cnt_off(shard)) as usize).min(cap);
    (0..cnt)
        .map(|i| arena.pread_u64(arr + (i as u64) * 8))
        .collect()
}

/// Returns `true` if `epoch` is in shard 0's durable failed-epoch set.
pub fn is_failed_epoch(arena: &PArena, epoch: u64) -> bool {
    failed_epochs(arena).contains(&epoch)
}

/// Compacts shard `shard`'s durable failed-epoch set, keeping only entries
/// `>= keep_from` — the caller passes the epoch whose checkpoint just
/// completed, pruning every entry the completed checkpoint made
/// unreferenceable.
///
/// Crash-safe without any extra logging: entries are compacted in place
/// *before* the count shrinks, and every intermediate entry word holds a
/// value from the original set, so a torn prune only leaves a (safe,
/// conservative) superset of the compacted set. No-op when nothing is
/// prunable.
///
/// # Safety contract (caller's)
///
/// Pruning an entry is only sound once no durable node or allocator header
/// can still need a rollback keyed to it — `incll`'s advance-time
/// compaction pass establishes that by sweeping the shard's nodes and
/// allocator lists *before* the checkpoint flush that precedes this call.
pub fn prune_failed_epochs(arena: &PArena, shard: usize, keep_from: u64) {
    let entries = failed_epochs_for(arena, shard);
    let keep: Vec<u64> = entries
        .iter()
        .copied()
        .filter(|&e| e >= keep_from)
        .collect();
    if keep.len() == entries.len() {
        return;
    }
    let arr = failed_arr_off(shard);
    for (i, &e) in keep.iter().enumerate() {
        arena.pwrite_u64(arr + (i as u64) * 8, e);
    }
    if !keep.is_empty() {
        arena.clwb_range(arr, keep.len() * 8);
        arena.sfence();
    }
    arena.pwrite_u64(failed_cnt_off(shard), keep.len() as u64);
    arena.clwb(failed_cnt_off(shard));
    arena.sfence();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> PArena {
        PArena::builder().capacity_bytes(1 << 20).build().unwrap()
    }

    #[test]
    fn layout_lines_do_not_collide() {
        // Field groups that must share a line, and groups that must not.
        assert_eq!(SB_BUMP / 64, SB_BUMP_INCLL / 64);
        assert_eq!(SB_BUMP / 64, SB_BUMP_EPOCH / 64);
        assert_ne!(SB_MAGIC / 64, SB_FAILED_CNT / 64);
        assert_ne!(SB_BUMP / 64, SB_TREE_ROOT / 64);
        assert!(SB_FAILED_ARR + (MAX_FAILED_EPOCHS as u64) * 8 <= SB_BUMP);
        assert!(SB_PALLOC_HEADS + (PALLOC_MAX_CLASSES as u64) * 64 <= SB_SHARD_TABLE);
        // The shard table must sit past the allocator heads and in front
        // of the domain table, which in turn fits before the watermark
        // table, which fits before carvable space.
        assert!(shard_root_holder(MAX_SHARDS - 1) + 16 <= SB_DOMAIN_TABLE);
        assert!(
            domain_cur_epoch_off(MAX_SHARDS - 1) + DOMAIN_CELL_BYTES <= SB_SHARD_BUMP_TABLE,
            "domain table must fit before the watermark table"
        );
        assert!(
            shard_bump_off(MAX_SHARDS - 1) + 64 <= CARVE_START,
            "watermark table must fit before carvable space"
        );
        // A domain cell must hold its epochs, count and full failed array.
        assert!(24 + (MAX_FAILED_EPOCHS_SHARD as u64) * 8 <= DOMAIN_CELL_BYTES);
        // The extent-pool descriptor must not collide with its neighbours,
        // and all three words must share line 60 (one write-back).
        assert!(SB_ARENA_SPLIT >= shard_root_holder(MAX_SHARDS - 1) + 16);
        const { assert!(SB_EXTENT_COUNT + 8 <= SB_BATCH_NEXT_ID) };
        assert_eq!(SB_ARENA_SPLIT / 64, SB_EXTENT_COUNT / 64);
        // The extent-owner table owns two dedicated lines between the
        // domain table and the per-shard watermark table.
        assert_eq!(SB_EXTENT_OWNERS % 64, 0);
        assert!(domain_cur_epoch_off(MAX_SHARDS - 1) + DOMAIN_CELL_BYTES <= SB_EXTENT_OWNERS);
        assert!(extent_owner_off(MAX_EXTENTS - 1) < SB_SHARD_BUMP_TABLE);
        // The batch next-id word and commit table sit between the carve
        // descriptor and the domain table; each slot's two words share a
        // line (the commit-ordering requirement).
        const { assert!(SB_BATCH_NEXT_ID + 8 <= SB_BATCH_TABLE) };
        assert!(batch_slot_off(BATCH_SLOTS - 1) + 16 <= SB_DOMAIN_TABLE);
        for i in 0..BATCH_SLOTS {
            assert_eq!(batch_slot_off(i) / 64, (batch_slot_off(i) + 8) / 64);
        }
    }

    #[test]
    fn shard_bump_triples_are_line_exclusive_and_legacy_anchored() {
        assert_eq!(shard_bump_off(0), SB_BUMP);
        assert_eq!(shard_bump_incll_off(0), SB_BUMP_INCLL);
        assert_eq!(shard_bump_epoch_off(0), SB_BUMP_EPOCH);
        let lines: Vec<u64> = (0..MAX_SHARDS).map(|i| shard_bump_off(i) / 64).collect();
        for (i, &l) in lines.iter().enumerate() {
            assert_eq!(shard_bump_off(i) % 64, 0, "triple {i} must start a line");
            // The whole triple shares one line (the InCLL requirement)...
            assert_eq!(shard_bump_epoch_off(i) / 64, l);
            // ...and no two shards share a line (no cross-shard contention).
            for &other in &lines[i + 1..] {
                assert_ne!(l, other, "watermark lines must be per shard");
            }
        }
    }

    #[test]
    fn shard_holder_cells_are_distinct_and_aligned() {
        assert_eq!(shard_root_holder(0), SB_TREE_ROOT);
        let holders: Vec<u64> = (0..MAX_SHARDS).map(shard_root_holder).collect();
        for (i, &h) in holders.iter().enumerate() {
            assert_eq!(h % 16, 0, "holder {i} must be 16-byte aligned");
            for &other in &holders[i + 1..] {
                assert!(other >= h + 16, "holder cells must not overlap");
            }
        }
    }

    #[test]
    fn domain_cells_are_distinct_and_legacy_anchored() {
        assert_eq!(domain_cur_epoch_off(0), SB_CUR_EPOCH);
        assert_eq!(domain_exec_epoch_off(0), SB_EXEC_EPOCH);
        assert_eq!(failed_capacity(0), MAX_FAILED_EPOCHS);
        let cells: Vec<u64> = (1..MAX_SHARDS).map(domain_cur_epoch_off).collect();
        for (i, &c) in cells.iter().enumerate() {
            assert_eq!(c % 64, 0, "domain cell {i} must start a cache line");
            for &other in &cells[i + 1..] {
                assert!(other >= c + DOMAIN_CELL_BYTES);
            }
        }
    }

    #[test]
    fn version_probes_distinguish_blank_stale_and_current() {
        let a = arena();
        assert!(!has_magic(&a));
        format(&a);
        assert!(has_magic(&a));
        assert!(is_formatted(&a));
        assert_eq!(raw_version(&a), VERSION);
        // Pre-extent-pool (v1..v5) superblocks keep their magic but are
        // no longer "formatted" in the current sense.
        for stale in [1, 2, 3, 4, 5] {
            a.pwrite_u64(SB_VERSION, stale);
            assert!(has_magic(&a));
            assert!(!is_formatted(&a));
            assert_eq!(raw_version(&a), stale);
        }
    }

    #[test]
    fn format_then_open() {
        let a = arena();
        assert!(!is_formatted(&a));
        format(&a);
        assert!(is_formatted(&a));
        assert_eq!(a.pread_u64(SB_CUR_EPOCH), 1);
        assert_eq!(a.pread_u64(SB_BUMP), CARVE_START);
    }

    #[test]
    fn failed_epoch_set_roundtrip() {
        let a = arena();
        format(&a);
        assert!(failed_epochs(&a).is_empty());
        record_failed_epoch(&a, 10).unwrap();
        record_failed_epoch(&a, 12).unwrap();
        record_failed_epoch(&a, 10).unwrap(); // idempotent
        assert_eq!(failed_epochs(&a), vec![10, 12]);
        assert!(is_failed_epoch(&a, 12));
        assert!(!is_failed_epoch(&a, 11));
    }

    #[test]
    fn per_shard_failed_sets_are_independent() {
        let a = arena();
        format(&a);
        record_failed_epoch_for(&a, 0, 5).unwrap();
        record_failed_epoch_for(&a, 3, 9).unwrap();
        record_failed_epoch_for(&a, 3, 11).unwrap();
        assert_eq!(failed_epochs_for(&a, 0), vec![5]);
        assert_eq!(failed_epochs_for(&a, 3), vec![9, 11]);
        assert!(failed_epochs_for(&a, 1).is_empty());
    }

    #[test]
    fn failed_epoch_set_fills_up() {
        let a = arena();
        format(&a);
        for e in 0..MAX_FAILED_EPOCHS as u64 {
            record_failed_epoch(&a, e + 100).unwrap();
        }
        assert!(matches!(
            record_failed_epoch(&a, 5),
            Err(Error::FailedEpochSetFull)
        ));
        // Existing entries still readable and idempotent re-record still ok.
        record_failed_epoch(&a, 100).unwrap();
    }

    #[test]
    fn shard_failed_epoch_set_fills_at_shard_capacity() {
        let a = arena();
        format(&a);
        for e in 0..MAX_FAILED_EPOCHS_SHARD as u64 {
            record_failed_epoch_for(&a, 2, e + 100).unwrap();
        }
        assert!(matches!(
            record_failed_epoch_for(&a, 2, 5),
            Err(Error::FailedEpochSetFull)
        ));
    }

    #[test]
    fn prune_drops_only_older_entries() {
        let a = arena();
        format(&a);
        for e in [4u64, 7, 9, 12] {
            record_failed_epoch(&a, e).unwrap();
        }
        prune_failed_epochs(&a, 0, 9);
        assert_eq!(failed_epochs(&a), vec![9, 12]);
        // Pruning everything empties the set and re-recording works.
        prune_failed_epochs(&a, 0, u64::MAX);
        assert!(failed_epochs(&a).is_empty());
        record_failed_epoch(&a, 20).unwrap();
        assert_eq!(failed_epochs(&a), vec![20]);
    }

    #[test]
    fn prune_unblocks_a_full_set() {
        let a = arena();
        format(&a);
        for e in 0..MAX_FAILED_EPOCHS_SHARD as u64 {
            record_failed_epoch_for(&a, 1, e + 10).unwrap();
        }
        assert!(record_failed_epoch_for(&a, 1, 999).is_err());
        prune_failed_epochs(&a, 1, u64::MAX);
        record_failed_epoch_for(&a, 1, 999).unwrap();
        assert_eq!(failed_epochs_for(&a, 1), vec![999]);
    }

    #[test]
    fn batch_ids_are_monotonic_and_commit_matches_exactly() {
        let a = arena();
        format(&a);
        let b1 = next_batch_id(&a);
        let b2 = next_batch_id(&a);
        assert_eq!(b1, 1);
        assert_eq!(b2, 2);
        assert!(!batch_is_committed(&a, b1));
        assert!(!batch_is_committed(&a, 0)); // 0 is "no batch", never committed
        set_batch_slot(&a, 0, b1, 0b101);
        assert!(batch_is_committed(&a, b1));
        assert!(!batch_is_committed(&a, b2));
        assert_eq!(batch_slot(&a, 0), (b1, 0b101));
        // Clearing shard bits narrows the mask without touching the id.
        clear_batch_shard(&a, 0, 2);
        assert_eq!(batch_slot(&a, 0), (b1, 0b001));
        clear_batch_shard(&a, 0, 0);
        assert_eq!(batch_slot(&a, 0), (b1, 0));
        assert!(batch_is_committed(&a, b1)); // commit survives mask drain
                                             // Slot reuse: the old id disappears, the new one commits.
        set_batch_slot(&a, 0, b2, 0b11);
        assert!(!batch_is_committed(&a, b1));
        assert!(batch_is_committed(&a, b2));
    }

    #[test]
    fn extent_claims_are_exclusive_and_exactly_once() {
        let a = arena();
        format(&a);
        for i in 0..MAX_EXTENTS {
            assert_eq!(extent_owner(&a, i), 0, "fresh pool is all-free");
        }
        assert!(claim_extent(&a, 3, 0));
        assert_eq!(extent_owner(&a, 3), 1);
        // Neither the owner nor anyone else can claim it again.
        assert!(!claim_extent(&a, 3, 0));
        assert!(!claim_extent(&a, 3, 5));
        assert_eq!(extent_owner(&a, 3), 1);
        // Adjacent extents (same owner-table word) claim independently.
        assert!(claim_extent(&a, 2, 7));
        assert!(claim_extent(&a, 4, 63));
        assert_eq!(extent_owner(&a, 2), 8);
        assert_eq!(extent_owner(&a, 3), 1);
        assert_eq!(extent_owner(&a, 4), 64);
    }

    #[test]
    fn extent_claim_is_never_torn_across_a_crash() {
        let a = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        format(&a);
        a.global_flush();
        // A completed claim is durable the moment claim_extent returns:
        // even the harshest crash (drop every unflushed store) keeps it.
        assert!(claim_extent(&a, 9, 4));
        a.crash_with(|_, _| 0);
        assert_eq!(extent_owner(&a, 9), 5, "a returned claim must survive");
        // A claim that crashed *before* its write-back (simulated by the
        // raw CAS without the flush) is lost whole: the byte reads free,
        // never torn, and the extent is claimable again.
        assert!(a.pcas_u8(extent_owner_off(10), 0, 3).is_ok());
        a.crash_with(|_, _| 0);
        assert_eq!(extent_owner(&a, 10), 0, "a pre-flush claim vanishes");
        assert!(claim_extent(&a, 10, 6));
        assert_eq!(extent_owner(&a, 10), 7);
    }

    #[test]
    fn concurrent_claimants_split_the_pool_without_overlap() {
        let a = arena();
        format(&a);
        // Eight shards race to claim every extent lowest-index-first; each
        // extent must end up with exactly one owner and every shard's
        // claim set must be disjoint.
        let counts: Vec<usize> = std::thread::scope(|s| {
            (0..8usize)
                .map(|shard| {
                    let a = a.clone();
                    s.spawn(move || {
                        let mut got = 0;
                        for i in 0..MAX_EXTENTS {
                            if claim_extent(&a, i, shard) {
                                got += 1;
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), MAX_EXTENTS);
        for i in 0..MAX_EXTENTS {
            let o = extent_owner(&a, i);
            assert!((1..=8).contains(&o), "extent {i} owner {o} out of range");
        }
    }

    #[test]
    fn format_survives_tracked_crash_after_flush() {
        let a = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        format(&a);
        a.global_flush();
        a.crash_seeded(1);
        assert!(is_formatted(&a));
    }
}
