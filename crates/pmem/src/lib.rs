//! Simulated persistent memory (NVM) substrate for the InCLL reproduction.
//!
//! The paper ("Fine-Grain Checkpointing with In-Cache-Line Logging",
//! ASPLOS'19) runs on x86 hardware with NVM emulated by a DRAM file and uses
//! `clwb`/`clflushopt` + `sfence` for explicit write-back and the privileged
//! `wbinvd` instruction for whole-cache flushes. This crate substitutes a
//! software model with the same *observable* semantics:
//!
//! * [`PArena`] — a large, cache-line-aligned memory arena standing in for
//!   the NVM device. Durable references are 16-byte-aligned **offsets**
//!   ([`PPtr`]) so the 44-bit pointer packing the paper relies on works
//!   identically.
//! * Persistence primitives — [`PArena::clwb`], [`PArena::sfence`],
//!   [`PArena::global_flush`] — count invocations, optionally inject
//!   emulated NVM latency (the paper's Figs. 3 and 8 methodology), and, in
//!   *tracked* mode, manipulate a per-cache-line store journal.
//! * The **PCSO** (Persistent Cache Store Order) model — writes to one cache
//!   line persist in program order; writes to different lines persist in an
//!   arbitrary order unless explicitly fenced. Tracked mode journals every
//!   durable store per line; [`PArena::crash_seeded`] independently truncates each
//!   line's history at a random prefix, producing an adversarial-but-legal
//!   post-failure NVM image for recovery testing.
//!
//! # Example
//!
//! ```
//! use incll_pmem::PArena;
//!
//! # fn main() -> Result<(), incll_pmem::Error> {
//! let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
//! let off = arena.carve(64, 64)?;
//! arena.pwrite_u64(off, 0xdead_beef);
//! arena.clwb(off);
//! arena.sfence();
//! assert_eq!(arena.pread_u64(off), 0xdead_beef);
//! # Ok(())
//! # }
//! ```

mod arena;
mod error;
mod journal;
mod latency;
mod pptr;
mod stats;
pub mod superblock;

pub use arena::{FlushDomainScope, PArena, PArenaBuilder, CACHE_LINE, DOMAIN_SHARED};
pub use error::Error;
pub use latency::{spin_ns, LatencyModel};
pub use pptr::PPtr;
pub use stats::{Stats, StatsSnapshot};

/// Result alias for persistent-memory operations.
pub type Result<T> = std::result::Result<T, Error>;
