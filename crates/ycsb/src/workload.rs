//! YCSB workload specifications used by the paper's evaluation (§6).
//!
//! * **A** — write-heavy: 50 % puts, 50 % reads
//! * **B** — read-heavy: 5 % puts, 95 % reads
//! * **C** — read-only
//! * **E** — read-only scans of 10 keys (the paper's variant)
//!
//! Keys are drawn from `0..nkeys` either uniformly or scrambled-Zipfian
//! (θ = 0.99) and mapped to 8-byte storage keys through the same FNV
//! scrambler the loader uses, so hot keys are spread across the tree.

use rand::Rng;

use crate::zipf::{scramble, ScrambledZipfian};

/// The operation mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mix {
    /// 50 % puts / 50 % reads.
    A,
    /// 5 % puts / 95 % reads.
    B,
    /// 100 % reads.
    C,
    /// 100 % scans of 10 keys.
    E,
}

impl Mix {
    /// All paper workloads, in figure order.
    pub const ALL: [Mix; 4] = [Mix::A, Mix::B, Mix::C, Mix::E];

    /// The paper's label (e.g. `YCSB_A`).
    pub fn label(self) -> &'static str {
        match self {
            Mix::A => "YCSB_A",
            Mix::B => "YCSB_B",
            Mix::C => "YCSB_C",
            Mix::E => "YCSB_E",
        }
    }

    /// Fraction of puts in the mix.
    pub fn put_fraction(self) -> f64 {
        match self {
            Mix::A => 0.5,
            Mix::B => 0.05,
            Mix::C | Mix::E => 0.0,
        }
    }
}

/// Key distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// Uniform over the key space.
    Uniform,
    /// Scrambled Zipfian, θ = 0.99.
    Zipfian,
}

impl Dist {
    /// Both paper distributions.
    pub const ALL: [Dist; 2] = [Dist::Uniform, Dist::Zipfian];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Zipfian => "zipfian",
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Read(u64),
    /// Insert-or-update with a payload.
    Put(u64, u64),
    /// Scan `count` keys starting at the index.
    Scan(u64, usize),
}

/// Maps a logical key index to its 8-byte storage key (scrambled).
#[inline]
pub fn storage_key(index: u64) -> [u8; 8] {
    scramble(index).to_be_bytes()
}

/// Per-thread operation stream for a workload.
pub struct OpStream {
    mix: Mix,
    nkeys: u64,
    zipf: Option<ScrambledZipfian>,
    counter: u64,
}

impl OpStream {
    /// Creates a stream over `nkeys` keys.
    ///
    /// Zipfian construction is O(nkeys); build once per thread and reuse
    /// (or clone a prototype).
    pub fn new(mix: Mix, dist: Dist, nkeys: u64) -> Self {
        OpStream {
            mix,
            nkeys,
            zipf: match dist {
                Dist::Uniform => None,
                Dist::Zipfian => Some(ScrambledZipfian::new(nkeys)),
            },
            counter: 0,
        }
    }

    /// Creates a stream sharing a prebuilt Zipfian table.
    pub fn with_zipf(mix: Mix, nkeys: u64, zipf: Option<ScrambledZipfian>) -> Self {
        OpStream {
            mix,
            nkeys,
            zipf,
            counter: 0,
        }
    }

    #[inline]
    fn next_index(&self, rng: &mut impl Rng) -> u64 {
        match &self.zipf {
            None => rng.gen_range(0..self.nkeys),
            Some(z) => z.next_index(rng),
        }
    }

    /// Draws the next operation.
    #[inline]
    pub fn next_op(&mut self, rng: &mut impl Rng) -> Op {
        let idx = self.next_index(rng);
        match self.mix {
            Mix::E => Op::Scan(idx, 10),
            Mix::C => Op::Read(idx),
            mix => {
                if rng.gen_bool(mix.put_fraction()) {
                    self.counter += 1;
                    Op::Put(idx, self.counter)
                } else {
                    Op::Read(idx)
                }
            }
        }
    }
}

impl std::fmt::Debug for OpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpStream")
            .field("mix", &self.mix)
            .field("nkeys", &self.nkeys)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mix_fractions(mix: Mix) -> (f64, f64) {
        let mut s = OpStream::new(mix, Dist::Uniform, 1000);
        let mut rng = StdRng::seed_from_u64(9);
        let (mut puts, mut scans) = (0u64, 0u64);
        let n = 20_000;
        for _ in 0..n {
            match s.next_op(&mut rng) {
                Op::Put(..) => puts += 1,
                Op::Scan(..) => scans += 1,
                Op::Read(_) => {}
            }
        }
        (puts as f64 / n as f64, scans as f64 / n as f64)
    }

    #[test]
    fn mix_a_is_half_puts() {
        let (puts, scans) = mix_fractions(Mix::A);
        assert!((puts - 0.5).abs() < 0.02, "put fraction {puts}");
        assert_eq!(scans, 0.0);
    }

    #[test]
    fn mix_b_is_five_percent_puts() {
        let (puts, _) = mix_fractions(Mix::B);
        assert!((puts - 0.05).abs() < 0.01, "put fraction {puts}");
    }

    #[test]
    fn mix_c_is_read_only() {
        let (puts, scans) = mix_fractions(Mix::C);
        assert_eq!(puts, 0.0);
        assert_eq!(scans, 0.0);
    }

    #[test]
    fn mix_e_is_scan_only() {
        let (puts, scans) = mix_fractions(Mix::E);
        assert_eq!(puts, 0.0);
        assert_eq!(scans, 1.0);
    }

    #[test]
    fn indices_stay_in_range_both_dists() {
        for dist in Dist::ALL {
            let mut s = OpStream::new(Mix::A, dist, 500);
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..5_000 {
                let idx = match s.next_op(&mut rng) {
                    Op::Read(i) | Op::Put(i, _) | Op::Scan(i, _) => i,
                };
                assert!(idx < 500);
            }
        }
    }

    #[test]
    fn storage_keys_are_scrambled_and_stable() {
        assert_eq!(storage_key(5), storage_key(5));
        assert_ne!(storage_key(5), storage_key(6));
        // Adjacent indices land far apart.
        let a = u64::from_be_bytes(storage_key(1));
        let b = u64::from_be_bytes(storage_key(2));
        assert!(a.abs_diff(b) > 1 << 20);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Mix::A.label(), "YCSB_A");
        assert_eq!(Dist::Zipfian.label(), "zipfian");
    }
}
