//! YCSB-style workload substrate for the InCLL evaluation (§6).
//!
//! The paper drives all throughput experiments with four YCSB mixes
//! (A/B/C/E) over uniform and scrambled-Zipfian key distributions, 8-byte
//! keys and values, on trees preloaded with the whole key space. This
//! crate reproduces that harness:
//!
//! * [`zipf`] — Zipfian (θ = 0.99) and scrambled-Zipfian generators;
//! * [`workload`] — the operation mixes and key mapping;
//! * [`shift`] — a skew-shifting variant whose Zipfian hotspot rotates
//!   across shards (for adaptive-cadence experiments);
//! * [`runner`] — a multi-threaded load/run driver generic over the
//!   three systems under test via [`runner::KvBench`];
//! * [`net`] — the same mixes driven over TCP against `incll-server`,
//!   closed-loop (max throughput) or open-loop (fixed-rate schedules
//!   with coordinated-omission-safe latency percentiles).
//!
//! # Example
//!
//! ```
//! use incll_pmem::PArena;
//! use incll_epoch::{EpochManager, EpochOptions};
//! use incll_masstree::{AllocMode, Masstree, TransientAlloc};
//! use incll_ycsb::{load, run, Dist, Mix, RunConfig};
//!
//! # fn main() -> Result<(), incll_pmem::Error> {
//! let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
//! let mgr = EpochManager::new(arena, EpochOptions::transient());
//! let tree = Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 2, None));
//! load(&tree, 1_000, 2);
//! let res = run(&tree, &RunConfig {
//!     threads: 2, ops_per_thread: 1_000, nkeys: 1_000,
//!     mix: Mix::A, dist: Dist::Zipfian, seed: 42,
//! });
//! assert_eq!(res.ops, 2_000);
//! # Ok(())
//! # }
//! ```

pub mod net;
pub mod runner;
pub mod shift;
pub mod workload;
pub mod zipf;

pub use net::{
    net_load, run_closed_loop, run_open_loop, NetClient, NetRunConfig, NetRunResult, OpenLoopResult,
};
pub use runner::{
    load, run, run_full, run_with_reads, run_with_writes, KvBench, ReadMode, RunConfig, RunResult,
    WriteMode,
};
pub use shift::ShiftingHotspot;
pub use workload::{storage_key, Dist, Mix, Op, OpStream};
pub use zipf::{ScrambledZipfian, Zipfian};
