//! A skew-shifting workload: a write hotspot that **rotates across
//! shards** over time.
//!
//! Static Zipfian streams keep the same keys hot forever, so a per-shard
//! checkpoint cadence tuned once stays right forever. Real workloads
//! migrate: the hot tenant moves, the working set drifts, and a shard
//! that was write-hot goes cold (and vice versa). [`ShiftingHotspot`]
//! reproduces that pattern deterministically so adaptive-cadence
//! experiments have something to adapt *to*:
//!
//! * key indices are bucketed per shard with the **caller's** routing
//!   function (pass the store's own `shard_of`, so the generator and the
//!   store can never disagree about placement);
//! * during each *phase* of `period` draws, one shard is hot: a fraction
//!   `hot_frac` of draws sweeps that shard's **whole** bucket uniformly —
//!   a migrating batch tenant rewriting a wide working set, so the
//!   first-touch (undo-logging) footprint keeps growing with the
//!   checkpoint window;
//! * the remaining draws model the resident tenants every shard keeps: a
//!   Zipfian over a small `resident`-key prefix of a uniformly chosen
//!   shard's bucket, so background traffic is skewed and low-rate rather
//!   than uniform;
//! * after `period` draws the hotspot advances to the next shard, round
//!   robin, so every shard cycles hot → cold → hot.
//!
//! The split matters for cadence experiments: the migrating tenant's
//! undo tail grows almost linearly with the checkpoint window (a uniform
//! sweep keeps finding un-logged pre-images), while a resident tenant's
//! is bounded by its small hot set — exactly the asymmetry a per-shard
//! controller can exploit and a single static cadence cannot.

use rand::Rng;

use crate::workload::storage_key;
use crate::zipf::{Zipfian, DEFAULT_THETA};

/// Rotating-hotspot key-index generator (one per thread; draws advance
/// its phase clock).
pub struct ShiftingHotspot {
    /// Key indices owned by each shard, in index order; hot draws sweep
    /// `buckets[hot]` uniformly.
    buckets: Vec<Vec<u64>>,
    /// One resident-prefix Zipfian per shard (the background tenants).
    resident_zipfs: Vec<Zipfian>,
    period: u64,
    hot_frac: f64,
    drawn: u64,
}

impl ShiftingHotspot {
    /// Buckets `0..nkeys` by `shard_of(storage_key(i))` and prepares the
    /// per-shard resident Zipfians.
    ///
    /// `period` is the number of draws one shard stays hot; `hot_frac`
    /// is the fraction of draws sweeping the hot shard's whole bucket
    /// uniformly (the rest goes to a random shard's `resident`-key
    /// prefix — `resident` is clamped to the bucket size).
    ///
    /// # Panics
    ///
    /// Panics if any shard owns no keys (make `nkeys` comfortably larger
    /// than the shard count), if `period` or `resident` is zero, or if
    /// `hot_frac` is outside `[0, 1]`.
    pub fn new(
        nkeys: u64,
        shards: usize,
        shard_of: impl Fn(&[u8]) -> usize,
        period: u64,
        hot_frac: f64,
        resident: u64,
    ) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(resident > 0, "resident must be positive");
        assert!(
            (0.0..=1.0).contains(&hot_frac),
            "hot_frac must be a fraction"
        );
        let mut buckets = vec![Vec::new(); shards];
        for i in 0..nkeys {
            let s = shard_of(&storage_key(i));
            assert!(s < shards, "shard_of returned {s} for {shards} shards");
            buckets[s].push(i);
        }
        for (s, b) in buckets.iter().enumerate() {
            assert!(!b.is_empty(), "shard {s} owns no keys; raise nkeys");
        }
        let resident_zipfs = buckets
            .iter()
            .map(|b| Zipfian::new(resident.min(b.len() as u64), DEFAULT_THETA))
            .collect();
        ShiftingHotspot {
            buckets,
            resident_zipfs,
            period,
            hot_frac,
            drawn: 0,
        }
    }

    /// Number of shards the hotspot cycles over.
    pub fn shard_count(&self) -> usize {
        self.buckets.len()
    }

    /// The shard that is hot for the phase containing draw `op_index`.
    pub fn hot_shard(&self, op_index: u64) -> usize {
        ((op_index / self.period) % self.buckets.len() as u64) as usize
    }

    /// Draws the next key index, advancing the phase clock.
    pub fn next_index(&mut self, rng: &mut impl Rng) -> u64 {
        let hot = self.hot_shard(self.drawn);
        self.drawn += 1;
        if rng.gen_bool(self.hot_frac) {
            let bucket = &self.buckets[hot];
            bucket[rng.gen_range(0..bucket.len())]
        } else {
            let s = rng.gen_range(0..self.buckets.len());
            self.buckets[s][self.resident_zipfs[s].next_rank(rng) as usize]
        }
    }
}

impl std::fmt::Debug for ShiftingHotspot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShiftingHotspot")
            .field("shards", &self.buckets.len())
            .field("period", &self.period)
            .field("hot_frac", &self.hot_frac)
            .field("drawn", &self.drawn)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The same FNV-1a routing the store uses, over the 8-byte storage
    /// key — a stand-in for `Store::shard_of` in unit tests.
    fn route(key: &[u8], shards: usize) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h as usize) & (shards - 1)
    }

    #[test]
    fn hotspot_rotates_round_robin_over_every_shard() {
        let h = ShiftingHotspot::new(1000, 4, |k| route(k, 4), 100, 0.9, 64);
        assert_eq!(h.shard_count(), 4);
        for w in 0..8u64 {
            assert_eq!(h.hot_shard(w * 100), (w % 4) as usize);
            assert_eq!(h.hot_shard(w * 100 + 99), (w % 4) as usize);
        }
    }

    #[test]
    fn hot_phase_draws_concentrate_on_the_hot_shard() {
        let shards = 4;
        let mut h = ShiftingHotspot::new(2000, shards, |k| route(k, shards), 500, 0.9, 64);
        let mut rng = StdRng::seed_from_u64(7);
        for phase in 0..shards as u64 {
            let hot = h.hot_shard(phase * 500);
            let mut on_hot = 0usize;
            for _ in 0..500 {
                let idx = h.next_index(&mut rng);
                assert!(idx < 2000);
                if route(&storage_key(idx), shards) == hot {
                    on_hot += 1;
                }
            }
            // 90 % targeted + the background draws that land there anyway.
            assert!(
                on_hot > 400,
                "phase {phase}: only {on_hot}/500 draws hit hot shard {hot}"
            );
        }
    }

    #[test]
    fn background_draws_stay_in_each_shards_resident_prefix() {
        let shards = 2;
        let resident = 16u64;
        // hot_frac 0: every draw is background, so every index must come
        // from some shard's first `resident` bucket entries.
        let mut h = ShiftingHotspot::new(1000, shards, |k| route(k, shards), 50, 0.0, resident);
        let residents: Vec<Vec<u64>> = h
            .buckets
            .iter()
            .map(|b| b[..resident as usize].to_vec())
            .collect();
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen_shards = [false; 2];
        for _ in 0..400 {
            let idx = h.next_index(&mut rng);
            let s = residents
                .iter()
                .position(|r| r.contains(&idx))
                .expect("background draw outside every resident prefix");
            seen_shards[s] = true;
        }
        assert!(
            seen_shards.iter().all(|&s| s),
            "background traffic should reach every shard"
        );
    }

    #[test]
    fn draws_are_deterministic_under_a_seed() {
        let mk = || ShiftingHotspot::new(800, 2, |k| route(k, 2), 50, 0.8, 32);
        let (mut a, mut b) = (mk(), mk());
        let mut ra = StdRng::seed_from_u64(3);
        let mut rb = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            assert_eq!(a.next_index(&mut ra), b.next_index(&mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "owns no keys")]
    fn starved_shards_are_rejected() {
        // Route everything to shard 0: shard 1 has no keys.
        let _ = ShiftingHotspot::new(100, 2, |_| 0, 10, 0.9, 16);
    }
}
