//! Zipfian key generation (YCSB's generator, Gray et al.'s method).
//!
//! The paper's *zipfian* workloads draw keys with skew θ = 0.99 and then
//! scramble them by hashing "so that frequent keys do not (necessarily)
//! appear in close proximity" (§6) — YCSB's `ScrambledZipfianGenerator`.

use rand::Rng;

/// Default YCSB skew.
pub const DEFAULT_THETA: f64 = 0.99;

/// A Zipfian rank generator over `0..n` (rank 0 most popular).
///
/// # Example
///
/// ```
/// use incll_ycsb::zipf::Zipfian;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let z = Zipfian::new(1000, incll_ycsb::zipf::DEFAULT_THETA);
/// let r = z.next_rank(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator over `0..n` with skew `theta`.
    ///
    /// Computing ζ(n, θ) is O(n); construct once and reuse.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in (0, 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a nonempty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next rank (0 = most popular).
    pub fn next_rank(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// ζ(n, θ) = Σ_{i=1..n} 1/i^θ.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// FNV-1a 64 scrambler used to spread popular keys across the key space.
#[inline]
pub fn scramble(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A scrambled-Zipfian generator: Zipfian ranks hashed into `0..n`.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Builds a generator over `0..n` with the default YCSB skew.
    pub fn new(n: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, DEFAULT_THETA),
        }
    }

    /// Draws a key index in `0..n`.
    pub fn next_index(&self, rng: &mut impl Rng) -> u64 {
        scramble(self.inner.next_rank(rng)) % self.inner.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_stay_in_range() {
        let z = Zipfian::new(100, DEFAULT_THETA);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert!(z.next_rank(&mut rng) < 100);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(1000, DEFAULT_THETA);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 1000];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.next_rank(&mut rng) as usize] += 1;
        }
        // Rank 0 should dwarf the median rank, and the top-10 ranks should
        // hold a large share (θ=0.99 over 1000 items ⇒ roughly a third).
        assert!(counts[0] > counts[500] * 20);
        let top10: u64 = counts[..10].iter().sum();
        assert!(
            top10 as f64 > 0.25 * draws as f64,
            "top-10 share too small: {top10}"
        );
    }

    #[test]
    fn theta_zero_like_uniformity_rejected() {
        // API guards: invalid theta panics rather than misbehaving.
        let r = std::panic::catch_unwind(|| Zipfian::new(10, 1.0));
        assert!(r.is_err());
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.next_index(&mut rng)).or_insert(0u64) += 1;
        }
        // Still skewed: some key is very hot...
        let max = counts.values().max().copied().unwrap();
        assert!(max > 2_000);
        // ...but the two hottest keys are not adjacent (scrambling).
        let mut by_count: Vec<_> = counts.iter().collect();
        by_count.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
        let (a, b) = (*by_count[0].0, *by_count[1].0);
        assert!(a.abs_diff(b) > 1, "hot keys {a} and {b} adjacent");
    }

    #[test]
    fn scramble_is_deterministic() {
        assert_eq!(scramble(12345), scramble(12345));
        assert_ne!(scramble(1), scramble(2));
    }

    #[test]
    fn zeta_small_values() {
        assert!((zeta(1, 0.5) - 1.0).abs() < 1e-12);
        let z2 = zeta(2, 0.99);
        assert!((z2 - (1.0 + 1.0 / 2f64.powf(0.99))).abs() < 1e-12);
    }
}
