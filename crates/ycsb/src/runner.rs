//! Multi-threaded benchmark driver: loads a store and runs a workload,
//! reporting throughput the way the paper does (total operations /
//! wall-clock seconds; §6 runs 1 M ops on each of 8 driver threads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::workload::{storage_key, Dist, Mix, Op, OpStream};
use crate::zipf::ScrambledZipfian;

/// A key-value store that can serve the YCSB drivers.
///
/// Implemented by all three systems under test (MT, MT+, INCLL) plus the
/// durable [`incll::Store`] facade.
pub trait KvBench: Send + Sync {
    /// Per-thread operation context.
    type Ctx;

    /// Registers worker `tid`.
    fn bench_ctx(&self, tid: usize) -> Self::Ctx;
    /// Point lookup.
    fn bench_get(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<u64>;
    /// Insert-or-update.
    fn bench_put(&self, ctx: &Self::Ctx, key: &[u8], val: u64);
    /// Scan `n` keys from `start`; returns keys visited.
    fn bench_scan(&self, ctx: &Self::Ctx, start: &[u8], n: usize) -> usize;

    /// Byte-slice insert-or-update. Stores without native byte values
    /// (the transient baselines) keep the default, which packs the first
    /// eight bytes little-endian into the `u64` payload.
    fn bench_put_bytes(&self, ctx: &Self::Ctx, key: &[u8], val: &[u8]) {
        let mut word = [0u8; 8];
        let n = val.len().min(8);
        word[..n].copy_from_slice(&val[..n]);
        self.bench_put(ctx, key, u64::from_le_bytes(word));
    }

    /// Byte-slice lookup; the default mirrors [`KvBench::bench_put_bytes`]
    /// by re-encoding the `u64` payload.
    fn bench_get_bytes(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<Vec<u8>> {
        self.bench_get(ctx, key).map(|v| v.to_le_bytes().to_vec())
    }

    /// Buffer-reusing lookup: writes the value into `out` (cleared first)
    /// and returns whether the key was present. The driver's read path
    /// calls this with one buffer per worker, so stores with a native
    /// `get_into` (the durable [`incll::Store`]) serve reads without a
    /// per-operation allocation. The default re-encodes the `u64` payload
    /// — also allocation-free.
    fn bench_get_into(&self, ctx: &Self::Ctx, key: &[u8], out: &mut Vec<u8>) -> bool {
        out.clear();
        match self.bench_get(ctx, key) {
            Some(v) => {
                out.extend_from_slice(&v.to_le_bytes());
                true
            }
            None => false,
        }
    }

    /// Borrowed lookup: touch the value bytes in place without copying
    /// them out, returning whether the key was present. Stores with a
    /// zero-copy read path (the durable [`incll::Store`]'s `get_ref`)
    /// override this; the default falls back to the plain lookup.
    fn bench_get_ref(&self, ctx: &Self::Ctx, key: &[u8]) -> bool {
        self.bench_get(ctx, key).is_some()
    }

    /// Atomic multi-put: applies every `(key, value)` pair as one write
    /// batch. The default issues the puts one by one — correct for
    /// stores without batch support, but not atomic. The durable
    /// [`incll::Store`] overrides this with a real `WriteBatch` commit,
    /// so the group is crash-atomic even when the keys span shards.
    fn bench_batch(&self, ctx: &Self::Ctx, ops: &[([u8; 8], u64)]) {
        for (k, v) in ops {
            self.bench_put(ctx, k, *v);
        }
    }

    /// Keyspace shards this store partitions over (1 for unsharded
    /// systems). Experiments report it so shard-scaling runs are
    /// self-describing.
    fn bench_shards(&self) -> usize {
        1
    }
}

impl KvBench for incll_masstree::Masstree {
    type Ctx = incll_masstree::TreeCtx;

    fn bench_ctx(&self, tid: usize) -> Self::Ctx {
        self.thread_ctx(tid)
    }
    fn bench_get(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<u64> {
        self.get(ctx, key)
    }
    fn bench_put(&self, ctx: &Self::Ctx, key: &[u8], val: u64) {
        self.put(ctx, key, val);
    }
    fn bench_scan(&self, ctx: &Self::Ctx, start: &[u8], n: usize) -> usize {
        self.scan(ctx, start, n, &mut |_, _| {})
    }
}

impl KvBench for incll::DurableMasstree {
    type Ctx = incll::DCtx;

    fn bench_ctx(&self, tid: usize) -> Self::Ctx {
        self.thread_ctx(tid)
            .expect("bench tid within the configured thread slots")
    }
    fn bench_get(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<u64> {
        self.get(ctx, key)
    }
    fn bench_put(&self, ctx: &Self::Ctx, key: &[u8], val: u64) {
        self.put(ctx, key, val);
    }
    fn bench_scan(&self, ctx: &Self::Ctx, start: &[u8], n: usize) -> usize {
        self.scan(ctx, start, n, &mut |_, _| {})
    }
    fn bench_put_bytes(&self, ctx: &Self::Ctx, key: &[u8], val: &[u8]) {
        self.put_bytes(ctx, key, val)
            .expect("bench values fit the largest size class");
    }
    fn bench_get_bytes(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<Vec<u8>> {
        self.get_bytes(ctx, key)
    }
    fn bench_get_into(&self, ctx: &Self::Ctx, key: &[u8], out: &mut Vec<u8>) -> bool {
        self.get_bytes_into(ctx, key, out)
    }
}

impl KvBench for incll::Store {
    type Ctx = incll::Session;

    fn bench_ctx(&self, _tid: usize) -> Self::Ctx {
        // The RAII pool hands out its own slot ids; drivers just need a
        // distinct session per worker.
        self.session()
            .expect("driver thread count within the store's session pool")
    }
    fn bench_get(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<u64> {
        self.get_u64(ctx, key)
    }
    fn bench_put(&self, ctx: &Self::Ctx, key: &[u8], val: u64) {
        self.put_u64(ctx, key, val);
    }
    fn bench_scan(&self, ctx: &Self::Ctx, start: &[u8], n: usize) -> usize {
        // The facade scan merges across shards, so E-mix scans measure the
        // shard-aware path (on one shard it is the tree's native scan).
        self.scan(ctx, start, n, &mut |_, _| {})
    }
    fn bench_put_bytes(&self, ctx: &Self::Ctx, key: &[u8], val: &[u8]) {
        self.put(ctx, key, val)
            .expect("bench values fit the largest size class");
    }
    fn bench_get_bytes(&self, ctx: &Self::Ctx, key: &[u8]) -> Option<Vec<u8>> {
        self.get(ctx, key)
    }
    fn bench_get_into(&self, ctx: &Self::Ctx, key: &[u8], out: &mut Vec<u8>) -> bool {
        self.get_into(ctx, key, out)
    }
    fn bench_get_ref(&self, ctx: &Self::Ctx, key: &[u8]) -> bool {
        // Decode in place so the value bytes are actually touched (a fair
        // comparison against the copying paths), with zero allocation.
        self.get_ref(ctx, key).map(|v| v.as_u64()).is_some()
    }
    fn bench_batch(&self, ctx: &Self::Ctx, ops: &[([u8; 8], u64)]) {
        let mut batch = ctx.batch();
        for (k, v) in ops {
            batch
                .put(k, &v.to_le_bytes())
                .expect("bench batches stay within the op cap");
        }
        batch.commit().expect("bench batches commit");
    }
    fn bench_shards(&self) -> usize {
        self.shard_count()
    }
}

/// A benchmark run description.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Key-space size (tree preloaded with exactly these keys).
    pub nkeys: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Key distribution.
    pub dist: Dist,
    /// RNG seed (per-thread streams derive from it).
    pub seed: u64,
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Total operations executed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl RunResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Preloads keys `0..nkeys` (scrambled) across `threads` workers.
pub fn load<K: KvBench>(store: &K, nkeys: u64, threads: usize) {
    let threads = threads.max(1);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let store = &store;
            s.spawn(move || {
                let ctx = store.bench_ctx(tid);
                let mut i = tid as u64;
                while i < nkeys {
                    store.bench_put(&ctx, &storage_key(i), i);
                    i += threads as u64;
                }
            });
        }
    });
}

/// How the driver serves `Op::Read`s — the read-path comparison axis of
/// the `read_path` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMode {
    /// Allocating lookup ([`KvBench::bench_get_bytes`]): one fresh `Vec`
    /// per hit.
    Alloc,
    /// Buffer-reusing lookup ([`KvBench::bench_get_into`]): copies into
    /// one per-worker buffer. The historical driver default.
    Into,
    /// Borrowed lookup ([`KvBench::bench_get_ref`]): zero-copy, reads the
    /// value in place under an epoch read pin.
    Ref,
}

impl ReadMode {
    /// All modes, in cost order.
    pub const ALL: [ReadMode; 3] = [ReadMode::Alloc, ReadMode::Into, ReadMode::Ref];

    /// Display label (`get`, `get_into`, `get_ref`).
    pub fn label(self) -> &'static str {
        match self {
            ReadMode::Alloc => "get",
            ReadMode::Into => "get_into",
            ReadMode::Ref => "get_ref",
        }
    }
}

/// How the driver serves `Op::Put`s — the write-path comparison axis of
/// the `txn_batches` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMode {
    /// One put per operation. The historical driver default.
    Single,
    /// Buffer `batch_size` puts per worker and commit each group as one
    /// atomic [`KvBench::bench_batch`] (a tail shorter than
    /// `batch_size` commits at the end of the run).
    BatchedWrites {
        /// Puts per committed batch (clamped to at least 1).
        batch_size: usize,
    },
}

impl WriteMode {
    /// Display label (`single` / `batch<N>`).
    pub fn label(self) -> String {
        match self {
            WriteMode::Single => "single".to_owned(),
            WriteMode::BatchedWrites { batch_size } => format!("batch{batch_size}"),
        }
    }
}

/// Runs the workload, returning aggregate throughput. Reads go through
/// the buffer-reusing path ([`ReadMode::Into`]), writes are issued one
/// put at a time; use [`run_with_reads`] / [`run_with_writes`] to pick
/// a different path.
pub fn run<K: KvBench>(store: &K, cfg: &RunConfig) -> RunResult {
    run_with_reads(store, cfg, ReadMode::Into)
}

/// [`run`] with an explicit write path for `Op::Put`s.
pub fn run_with_writes<K: KvBench>(store: &K, cfg: &RunConfig, mode: WriteMode) -> RunResult {
    run_full(store, cfg, ReadMode::Into, mode)
}

/// [`run`] with an explicit read path for `Op::Read`s.
pub fn run_with_reads<K: KvBench>(store: &K, cfg: &RunConfig, mode: ReadMode) -> RunResult {
    run_full(store, cfg, mode, WriteMode::Single)
}

/// The full driver: explicit read and write paths.
pub fn run_full<K: KvBench>(
    store: &K,
    cfg: &RunConfig,
    mode: ReadMode,
    writes: WriteMode,
) -> RunResult {
    let barrier = Barrier::new(cfg.threads + 1);
    let total_ops = AtomicU64::new(0);
    // Zipfian tables are O(nkeys) to build: construct one and share.
    let zipf_proto = match cfg.dist {
        Dist::Uniform => None,
        Dist::Zipfian => Some(ScrambledZipfian::new(cfg.nkeys)),
    };
    let started = std::sync::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for tid in 0..cfg.threads {
            let store = &store;
            let barrier = &barrier;
            let total_ops = &total_ops;
            let zipf = zipf_proto.clone();
            let cfg2 = cfg.clone();
            s.spawn(move || {
                let ctx = store.bench_ctx(tid);
                let mut stream = OpStream::with_zipf(cfg2.mix, cfg2.nkeys, zipf);
                let mut rng = StdRng::seed_from_u64(cfg2.seed ^ (tid as u64) << 32 | tid as u64);
                // One value buffer per worker, reused across every read,
                // and one pending-put buffer for the batched write path.
                let mut readbuf = Vec::with_capacity(64);
                let batch_size = match writes {
                    WriteMode::Single => 0,
                    WriteMode::BatchedWrites { batch_size } => batch_size.max(1),
                };
                let mut pending: Vec<([u8; 8], u64)> = Vec::with_capacity(batch_size);
                barrier.wait();
                for _ in 0..cfg2.ops_per_thread {
                    match stream.next_op(&mut rng) {
                        Op::Read(i) => match mode {
                            ReadMode::Alloc => {
                                store.bench_get_bytes(&ctx, &storage_key(i));
                            }
                            ReadMode::Into => {
                                store.bench_get_into(&ctx, &storage_key(i), &mut readbuf);
                            }
                            ReadMode::Ref => {
                                store.bench_get_ref(&ctx, &storage_key(i));
                            }
                        },
                        Op::Put(i, v) => {
                            if batch_size == 0 {
                                store.bench_put(&ctx, &storage_key(i), v);
                            } else {
                                pending.push((storage_key(i), v));
                                if pending.len() >= batch_size {
                                    store.bench_batch(&ctx, &pending);
                                    pending.clear();
                                }
                            }
                        }
                        Op::Scan(i, n) => {
                            store.bench_scan(&ctx, &storage_key(i), n);
                        }
                    }
                }
                if !pending.is_empty() {
                    store.bench_batch(&ctx, &pending); // the short tail
                }
                total_ops.fetch_add(cfg2.ops_per_thread, Ordering::Relaxed);
            });
        }
        *started.lock().unwrap() = Some(Instant::now());
        barrier.wait();
    });
    let elapsed = started.lock().unwrap().expect("start time").elapsed();
    RunResult {
        ops: total_ops.load(Ordering::Relaxed),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incll_epoch::{EpochManager, EpochOptions};
    use incll_masstree::{AllocMode, Masstree, TransientAlloc};
    use incll_pmem::{superblock, PArena};

    fn mt() -> Masstree {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 4, None))
    }

    #[test]
    fn load_populates_all_keys() {
        let t = mt();
        load(&t, 1000, 2);
        let ctx = t.thread_ctx(0);
        for i in 0..1000u64 {
            assert_eq!(t.get(&ctx, &storage_key(i)), Some(i), "key {i}");
        }
    }

    #[test]
    fn run_executes_requested_ops() {
        let t = mt();
        load(&t, 500, 2);
        let cfg = RunConfig {
            threads: 2,
            ops_per_thread: 2_000,
            nkeys: 500,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: 4,
        };
        let res = run(&t, &cfg);
        assert_eq!(res.ops, 4_000);
        assert!(res.elapsed.as_nanos() > 0);
        assert!(res.mops() > 0.0);
    }

    #[test]
    fn run_against_durable_tree() {
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        superblock::format(&arena);
        let t = incll::DurableMasstree::create(
            &arena,
            incll::DurableConfig {
                threads: 2,
                log_bytes_per_thread: 1 << 20,
                incll_enabled: true,
                shards: 1,
                recovery_threads: 1,
                persistence_granularity: 0,
            },
        )
        .unwrap();
        load(&t, 300, 2);
        for (mix, dist) in [(Mix::A, Dist::Zipfian), (Mix::E, Dist::Uniform)] {
            let res = run(
                &t,
                &RunConfig {
                    threads: 2,
                    ops_per_thread: 500,
                    nkeys: 300,
                    mix,
                    dist,
                    seed: 1,
                },
            );
            assert_eq!(res.ops, 1_000);
        }
    }

    #[test]
    fn run_against_store_facade() {
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let opts = incll::Options::new()
            .threads(2)
            .log_bytes_per_thread(1 << 20);
        let (store, report) = incll::Store::open(&arena, opts).unwrap();
        assert!(report.created);
        load(&store, 300, 2);
        let res = run(
            &store,
            &RunConfig {
                threads: 2,
                ops_per_thread: 500,
                nkeys: 300,
                mix: Mix::A,
                dist: Dist::Uniform,
                seed: 9,
            },
        );
        assert_eq!(res.ops, 1_000);
        // Load went through the u64 path; spot-check via the facade.
        let sess = store.session().unwrap();
        assert!(store.get_u64(&sess, &storage_key(0)).is_some());
    }

    #[test]
    fn every_read_mode_runs_on_the_store_facade() {
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let opts = incll::Options::new()
            .threads(2)
            .log_bytes_per_thread(1 << 20);
        let (store, _) = incll::Store::open(&arena, opts).unwrap();
        load(&store, 200, 2);
        for mode in ReadMode::ALL {
            let res = run_with_reads(
                &store,
                &RunConfig {
                    threads: 2,
                    ops_per_thread: 300,
                    nkeys: 200,
                    mix: Mix::B,
                    dist: Dist::Uniform,
                    seed: 3,
                },
                mode,
            );
            assert_eq!(res.ops, 600, "mode {mode:?}");
        }
        // The borrowed path really serves hits and misses.
        let sess = store.bench_ctx(0);
        assert!(store.bench_get_ref(&sess, &storage_key(0)));
        assert!(!store.bench_get_ref(&sess, b"never-loaded"));
    }

    #[test]
    fn batched_writes_run_on_the_sharded_store_facade() {
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let opts = incll::Options::new()
            .threads(2)
            .log_bytes_per_thread(1 << 20)
            .shards(4);
        let (store, _) = incll::Store::open(&arena, opts).unwrap();
        load(&store, 200, 2);
        for batch_size in [1usize, 8] {
            let res = run_with_writes(
                &store,
                &RunConfig {
                    threads: 2,
                    ops_per_thread: 300,
                    nkeys: 200,
                    mix: Mix::A,
                    dist: Dist::Uniform,
                    seed: 5,
                },
                WriteMode::BatchedWrites { batch_size },
            );
            assert_eq!(res.ops, 600, "batch_size {batch_size}");
        }
        assert_eq!(WriteMode::Single.label(), "single");
        assert_eq!(WriteMode::BatchedWrites { batch_size: 8 }.label(), "batch8");
    }

    #[test]
    fn bench_batch_applies_every_pair_on_every_impl() {
        // Transient default: a plain put loop.
        let t = mt();
        let ctx = t.bench_ctx(0);
        let ops: Vec<([u8; 8], u64)> = (0..5u64).map(|i| (storage_key(i), 100 + i)).collect();
        t.bench_batch(&ctx, &ops);
        for i in 0..5u64 {
            assert_eq!(t.bench_get(&ctx, &storage_key(i)), Some(100 + i));
        }

        // Durable store: a real cross-shard WriteBatch commit.
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let opts = incll::Options::new()
            .threads(1)
            .log_bytes_per_thread(1 << 20)
            .shards(4);
        let (store, _) = incll::Store::open(&arena, opts).unwrap();
        let sess = store.bench_ctx(0);
        store.bench_batch(&sess, &ops);
        for i in 0..5u64 {
            assert_eq!(store.bench_get(&sess, &storage_key(i)), Some(100 + i));
        }
    }

    #[test]
    fn byte_ops_roundtrip_on_every_impl() {
        // Transient default: first 8 bytes, little-endian.
        let t = mt();
        let ctx = t.bench_ctx(0);
        t.bench_put_bytes(&ctx, b"k", b"abcdefgh-tail-ignored");
        assert_eq!(
            t.bench_get(&ctx, b"k"),
            Some(u64::from_le_bytes(*b"abcdefgh"))
        );
        assert_eq!(
            t.bench_get_bytes(&ctx, b"k").as_deref(),
            Some(&b"abcdefgh"[..])
        );

        // Durable store: full byte fidelity.
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let opts = incll::Options::new()
            .threads(1)
            .log_bytes_per_thread(1 << 20);
        let (store, _) = incll::Store::open(&arena, opts).unwrap();
        let sess = store.bench_ctx(0);
        store.bench_put_bytes(&sess, b"k", b"a considerably longer byte value");
        assert_eq!(
            store.bench_get_bytes(&sess, b"k").as_deref(),
            Some(&b"a considerably longer byte value"[..])
        );
    }

    #[test]
    fn get_into_reuses_the_buffer_on_every_impl() {
        // Transient default: re-encoded u64 payload, no allocation.
        let t = mt();
        let ctx = t.bench_ctx(0);
        t.bench_put(&ctx, b"k", 7);
        let mut buf = Vec::new();
        assert!(t.bench_get_into(&ctx, b"k", &mut buf));
        assert_eq!(buf, 7u64.to_le_bytes());
        assert!(!t.bench_get_into(&ctx, b"missing", &mut buf));
        assert!(buf.is_empty());

        // Durable store: native buffer-reusing read.
        let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let opts = incll::Options::new()
            .threads(1)
            .log_bytes_per_thread(1 << 20);
        let (store, _) = incll::Store::open(&arena, opts).unwrap();
        let sess = store.bench_ctx(0);
        store.bench_put_bytes(&sess, b"k", b"reused-buffer value");
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        assert!(store.bench_get_into(&sess, b"k", &mut buf));
        assert_eq!(&buf, b"reused-buffer value");
        assert_eq!(buf.capacity(), cap, "short values must reuse capacity");
    }
}
