//! Network load generation against the `incll-server` front-end.
//!
//! Two drivers over the same wire protocol:
//!
//! * [`run_closed_loop`] — each connection keeps a fixed number of
//!   requests in flight (the pipeline depth) and issues the next the
//!   moment one completes: maximum attainable throughput.
//! * [`run_open_loop`] — requests fire on a fixed schedule (a target
//!   QPS split across connections) and every latency is measured from
//!   the request's **intended** send time, not its actual one. When the
//!   server stalls, queued requests charge the stall to their
//!   latencies instead of silently thinning the arrival rate — the
//!   coordinated-omission correction.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use incll_server::{decode_response, encode_request, read_frame, Request, Response};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::workload::{storage_key, Dist, Mix, Op, OpStream};

/// A pipelining client over one TCP connection.
///
/// [`NetClient::send`] queues a request (buffered; flushed on demand)
/// and [`NetClient::recv`] blocks for the next in-order response — the
/// caller decides how many to keep in flight.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connects to the server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<NetClient> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        let reader = BufReader::new(sock.try_clone()?);
        Ok(NetClient {
            reader,
            writer: BufWriter::new(sock),
            buf: Vec::with_capacity(256),
        })
    }

    /// Queues one request into the write buffer.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.buf.clear();
        encode_request(req, &mut self.buf);
        self.writer.write_all(&self.buf)
    }

    /// Pushes buffered requests onto the wire.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Blocks for the next response.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        decode_response(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Convenience: send, flush, receive — one synchronous round trip.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.flush()?;
        self.recv()
    }
}

/// Workload shape shared by both drivers.
#[derive(Debug, Clone)]
pub struct NetRunConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests each connection keeps in flight (closed loop only).
    pub pipeline: usize,
    /// Operations issued per connection.
    pub ops_per_conn: usize,
    /// Key-space size.
    pub nkeys: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Key distribution.
    pub dist: Dist,
    /// Bytes per written value.
    pub value_len: usize,
    /// Base RNG seed (per-connection streams derive from it).
    pub seed: u64,
}

/// Closed-loop outcome.
#[derive(Debug, Clone, Copy)]
pub struct NetRunResult {
    /// Operations completed across all connections.
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Server-reported error responses (should be zero).
    pub errors: u64,
}

impl NetRunResult {
    /// Throughput in thousands of operations per second.
    pub fn kops(&self) -> f64 {
        self.ops as f64 / self.secs / 1e3
    }
}

/// Open-loop outcome: achieved rate plus latency percentiles.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopResult {
    /// The schedule's target rate, ops/s across all connections.
    pub target_qps: f64,
    /// Operations actually completed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Median latency, µs (from *intended* send time).
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Server-reported error responses (should be zero).
    pub errors: u64,
}

impl OpenLoopResult {
    /// The rate actually sustained, ops/s.
    pub fn achieved_qps(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

fn op_to_request(op: Op, value_len: usize) -> Request {
    match op {
        Op::Read(idx) => Request::Get {
            key: storage_key(idx).to_vec(),
        },
        Op::Put(idx, tick) => Request::Put {
            key: storage_key(idx).to_vec(),
            val: value_bytes(tick, value_len),
        },
        Op::Scan(idx, count) => Request::Scan {
            start: storage_key(idx).to_vec(),
            limit: count as u32,
        },
    }
}

fn value_bytes(tick: u64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len.max(8)];
    v[..8].copy_from_slice(&tick.to_le_bytes());
    v
}

fn is_error(resp: &Response) -> bool {
    matches!(resp, Response::Error(_))
}

/// Preloads the whole key space over one connection using durable
/// BATCH commits (chunks of `chunk` puts).
pub fn net_load(
    addr: SocketAddr,
    nkeys: u64,
    value_len: usize,
    chunk: usize,
) -> std::io::Result<()> {
    use incll_server::BatchOp;
    let mut client = NetClient::connect(addr)?;
    let mut ops = Vec::with_capacity(chunk);
    for idx in 0..nkeys {
        ops.push(BatchOp::Put {
            key: storage_key(idx).to_vec(),
            val: value_bytes(idx, value_len),
        });
        if ops.len() == chunk || idx + 1 == nkeys {
            let resp = client.call(&Request::Batch {
                ops: std::mem::take(&mut ops),
            })?;
            if is_error(&resp) {
                return Err(std::io::Error::other(format!("load failed: {resp:?}")));
            }
        }
    }
    Ok(())
}

/// Maximum-throughput driver: `connections` threads, each holding
/// `pipeline` requests in flight until `ops_per_conn` complete.
pub fn run_closed_loop(addr: SocketAddr, cfg: &NetRunConfig) -> std::io::Result<NetRunResult> {
    let started = Instant::now();
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|c| {
                s.spawn(move || -> std::io::Result<(u64, u64)> {
                    let mut client = NetClient::connect(addr)?;
                    let mut stream = OpStream::new(cfg.mix, cfg.dist, cfg.nkeys);
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (c as u64) << 17);
                    let depth = cfg.pipeline.max(1).min(cfg.ops_per_conn.max(1));
                    let mut sent = 0usize;
                    let mut errors = 0u64;
                    // Prime the pipeline...
                    while sent < depth {
                        client.send(&op_to_request(stream.next_op(&mut rng), cfg.value_len))?;
                        sent += 1;
                    }
                    client.flush()?;
                    // ...then lock-step: one in, one out.
                    let mut done = 0u64;
                    while (done as usize) < cfg.ops_per_conn {
                        if is_error(&client.recv()?) {
                            errors += 1;
                        }
                        done += 1;
                        if sent < cfg.ops_per_conn {
                            client.send(&op_to_request(stream.next_op(&mut rng), cfg.value_len))?;
                            client.flush()?;
                            sent += 1;
                        }
                    }
                    Ok((done, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect::<Vec<_>>()
    });
    let secs = started.elapsed().as_secs_f64();
    let mut ops = 0;
    let mut errors = 0;
    for r in results {
        let (o, e) = r?;
        ops += o;
        errors += e;
    }
    Ok(NetRunResult { ops, secs, errors })
}

/// Fixed-rate driver: `target_qps` is split evenly across connections;
/// each request's latency runs from its **scheduled** send instant, so
/// server stalls inflate the percentiles instead of the interarrival
/// gaps (no coordinated omission).
pub fn run_open_loop(
    addr: SocketAddr,
    cfg: &NetRunConfig,
    target_qps: f64,
) -> std::io::Result<OpenLoopResult> {
    assert!(target_qps > 0.0, "open loop needs a positive target rate");
    let per_conn_interval = Duration::from_secs_f64(cfg.connections as f64 / target_qps);
    let started = Instant::now();
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|c| {
                s.spawn(move || -> std::io::Result<(Vec<u64>, u64)> {
                    let mut client = NetClient::connect(addr)?;
                    let mut stream = OpStream::new(cfg.mix, cfg.dist, cfg.nkeys);
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (c as u64) << 17);
                    // Stagger the connections across one interval so the
                    // aggregate arrival process isn't N synchronized spikes.
                    let base =
                        started + per_conn_interval.mul_f64(c as f64 / cfg.connections as f64);
                    let mut latencies_us = Vec::with_capacity(cfg.ops_per_conn);
                    let mut errors = 0u64;
                    for i in 0..cfg.ops_per_conn {
                        let intended = base + per_conn_interval.mul_f64(i as f64);
                        if let Some(wait) = intended.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        // Behind schedule: send immediately, but the
                        // latency still counts from `intended`.
                        let resp =
                            client.call(&op_to_request(stream.next_op(&mut rng), cfg.value_len))?;
                        if is_error(&resp) {
                            errors += 1;
                        }
                        latencies_us.push(intended.elapsed().as_micros() as u64);
                    }
                    Ok((latencies_us, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect::<Vec<_>>()
    });
    let secs = started.elapsed().as_secs_f64();
    let mut all = Vec::new();
    let mut errors = 0;
    for r in results {
        let (lat, e) = r?;
        all.extend(lat);
        errors += e;
    }
    all.sort_unstable();
    let pct = |p: f64| -> f64 {
        if all.is_empty() {
            return 0.0;
        }
        let rank = ((all.len() as f64 - 1.0) * p).round() as usize;
        all[rank] as f64
    };
    Ok(OpenLoopResult {
        target_qps,
        ops: all.len() as u64,
        secs,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_the_sorted_tail() {
        // Sanity-check the rank arithmetic with a known distribution.
        let mut all: Vec<u64> = (0..=100).collect();
        all.sort_unstable();
        let pct = |p: f64| {
            let rank = ((all.len() as f64 - 1.0) * p).round() as usize;
            all[rank]
        };
        assert_eq!(pct(0.50), 50);
        assert_eq!(pct(0.95), 95);
        assert_eq!(pct(0.99), 99);
    }

    #[test]
    fn value_bytes_embed_the_tick_and_respect_length() {
        let v = value_bytes(7, 64);
        assert_eq!(v.len(), 64);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 7);
        assert_eq!(value_bytes(1, 3).len(), 8, "floor of 8 bytes");
    }
}
