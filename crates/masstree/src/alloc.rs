//! Transient allocation policies: the MT / MT+ distinction (§6).
//!
//! The paper's optimized baseline MT+ differs from stock Masstree (MT) by
//! obtaining memory from an `mmap`-ed pool instead of `jemalloc` (plus the
//! per-epoch barrier both share here). This module provides both policies
//! behind one handle:
//!
//! * [`AllocMode::Global`] — the process allocator, one call per object
//!   (the MT baseline).
//! * [`AllocMode::Pool`] — per-thread free-list stacks over a pre-mapped
//!   arena (the MT+ baseline); allocation is a `Vec::pop`.
//!
//! Frees are epoch-deferred in both modes: freed objects land in a
//! per-thread garbage bin and are recycled (pool) or deallocated (global)
//! at the epoch boundary, when every thread has quiesced — the standard
//! epoch-based-reclamation guarantee Masstree relies on.

use std::alloc::{alloc, dealloc, Layout};
use std::sync::Arc;

use parking_lot::Mutex;

use incll_epoch::EpochManager;
use incll_pmem::PArena;

/// Which backing store serves allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Process allocator (MT baseline).
    Global,
    /// Pre-mapped pool with per-thread free lists (MT+ baseline).
    Pool,
}

/// Size classes used by the transient trees (nodes are 320 B, value
/// buffers 32 B).
const POOL_CLASSES: &[usize] = &[16, 32, 64, 128, 320, 512, 1024];

fn class_of(size: usize) -> usize {
    POOL_CLASSES
        .iter()
        .position(|&c| size <= c)
        .unwrap_or_else(|| panic!("transient allocation of {size} bytes has no pool class"))
}

/// Cache-line-align anything at least a cache line big (nodes are
/// `repr(align(64))`); small buffers keep 16-byte alignment.
fn align_of_size(size: usize) -> usize {
    if size >= 64 {
        64
    } else {
        16
    }
}

struct ThreadBins {
    /// Pool-mode free stacks, one per class.
    free: Vec<Vec<u64>>,
    /// Deferred frees awaiting the epoch boundary: (addr, size).
    garbage: Vec<(u64, usize)>,
}

impl ThreadBins {
    fn new() -> Self {
        ThreadBins {
            free: vec![Vec::new(); POOL_CLASSES.len()],
            garbage: Vec::new(),
        }
    }
}

struct Inner {
    mode: AllocMode,
    /// Backing pool for [`AllocMode::Pool`] (a fast-mode arena acting as
    /// plain mapped memory).
    pool: Option<PArena>,
    bins: Vec<Mutex<ThreadBins>>,
}

/// The transient allocator handle (cheap to clone).
///
/// Addresses returned are raw virtual addresses (`u64`), uniform across
/// both modes.
#[derive(Clone)]
pub struct TransientAlloc {
    inner: Arc<Inner>,
}

impl TransientAlloc {
    /// Creates an allocator for `nthreads` workers.
    ///
    /// `pool` must be `Some` for [`AllocMode::Pool`]; the arena acts as the
    /// mmap-ed pool and must outlive all allocations (the handle keeps it
    /// alive).
    ///
    /// # Panics
    ///
    /// Panics if pool mode is requested without an arena.
    pub fn new(mode: AllocMode, nthreads: usize, pool: Option<PArena>) -> Self {
        if mode == AllocMode::Pool {
            assert!(pool.is_some(), "pool mode needs a backing arena");
        }
        TransientAlloc {
            inner: Arc::new(Inner {
                mode,
                pool,
                bins: (0..nthreads.max(1))
                    .map(|_| Mutex::new(ThreadBins::new()))
                    .collect(),
            }),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> AllocMode {
        self.inner.mode
    }

    /// Allocates `size` bytes (16-aligned), returning its address.
    ///
    /// # Panics
    ///
    /// Panics on host allocator failure or pool exhaustion.
    pub fn alloc(&self, thread: usize, size: usize) -> u64 {
        match self.inner.mode {
            AllocMode::Global => {
                let layout =
                    Layout::from_size_align(size.max(16), align_of_size(size)).expect("layout");
                // SAFETY: nonzero size; layout valid.
                let p = unsafe { alloc(layout) };
                assert!(!p.is_null(), "global allocation of {size} bytes failed");
                p as u64
            }
            AllocMode::Pool => {
                let class = class_of(size);
                let mut bins = self.inner.bins[thread % self.inner.bins.len()].lock();
                if let Some(addr) = bins.free[class].pop() {
                    return addr;
                }
                drop(bins);
                let arena = self.inner.pool.as_ref().expect("pool arena");
                let off = arena
                    .carve(POOL_CLASSES[class], align_of_size(POOL_CLASSES[class]))
                    .expect("pool arena exhausted; increase pool capacity");
                // SAFETY: freshly carved, in-bounds offset.
                unsafe { arena.ptr_at(off) as u64 }
            }
        }
    }

    /// Defers the free of `addr` (from [`TransientAlloc::alloc`] with
    /// `size`) until the next epoch boundary.
    pub fn defer_free(&self, thread: usize, addr: u64, size: usize) {
        let mut bins = self.inner.bins[thread % self.inner.bins.len()].lock();
        bins.garbage.push((addr, size));
    }

    /// Epoch-boundary hook: recycles (pool) or deallocates (global) all
    /// deferred frees. Runs while all threads are quiesced.
    pub fn on_epoch_boundary(&self) {
        for bin in &self.inner.bins {
            let mut bins = bin.lock();
            let garbage = std::mem::take(&mut bins.garbage);
            for (addr, size) in garbage {
                match self.inner.mode {
                    AllocMode::Global => {
                        let layout = Layout::from_size_align(size.max(16), align_of_size(size))
                            .expect("layout");
                        // SAFETY: addr came from `alloc` with this layout;
                        // the epoch barrier guarantees no thread still
                        // holds a reference.
                        unsafe { dealloc(addr as *mut u8, layout) };
                    }
                    AllocMode::Pool => {
                        bins.free[class_of(size)].push(addr);
                    }
                }
            }
        }
    }

    /// Registers the boundary hook on an epoch manager.
    pub fn attach(&self, mgr: &EpochManager) {
        let this = self.clone();
        mgr.add_advance_hook(Box::new(move |_| this.on_epoch_boundary()));
    }

    /// Immediately frees `addr` (drop path only: requires no concurrent
    /// readers).
    pub(crate) fn free_now(&self, addr: u64, size: usize) {
        match self.inner.mode {
            AllocMode::Global => {
                let layout =
                    Layout::from_size_align(size.max(16), align_of_size(size)).expect("layout");
                // SAFETY: caller guarantees exclusive access (Drop).
                unsafe { dealloc(addr as *mut u8, layout) };
            }
            AllocMode::Pool => {
                let mut bins = self.inner.bins[0].lock();
                bins.free[class_of(size)].push(addr);
            }
        }
    }
}

impl std::fmt::Debug for TransientAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransientAlloc")
            .field("mode", &self.inner.mode)
            .field("threads", &self.inner.bins.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_alloc() -> TransientAlloc {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        TransientAlloc::new(AllocMode::Pool, 2, Some(arena))
    }

    #[test]
    fn global_alloc_free_roundtrip() {
        let a = TransientAlloc::new(AllocMode::Global, 1, None);
        let p = a.alloc(0, 320);
        assert_eq!(p % 16, 0);
        // Write through it to catch bad pointers under sanitizers.
        unsafe { std::ptr::write_bytes(p as *mut u8, 0xAB, 320) };
        a.defer_free(0, p, 320);
        a.on_epoch_boundary();
    }

    #[test]
    fn pool_reuses_after_boundary() {
        let a = pool_alloc();
        let p = a.alloc(0, 32);
        a.defer_free(0, p, 32);
        let q = a.alloc(0, 32);
        assert_ne!(p, q, "deferred free must not be reused immediately");
        a.on_epoch_boundary();
        let r = a.alloc(0, 32);
        assert_eq!(p, r, "boundary recycles deferred frees");
    }

    #[test]
    fn pool_classes_do_not_mix() {
        let a = pool_alloc();
        let p = a.alloc(0, 32);
        a.defer_free(0, p, 32);
        a.on_epoch_boundary();
        let q = a.alloc(0, 320);
        assert_ne!(p, q);
    }

    #[test]
    fn threads_use_separate_pools() {
        let a = pool_alloc();
        let p = a.alloc(0, 32);
        a.defer_free(0, p, 32);
        a.on_epoch_boundary();
        // Thread 1's stack is empty: fresh carve.
        let q = a.alloc(1, 32);
        assert_ne!(p, q);
    }

    #[test]
    #[should_panic(expected = "pool mode needs a backing arena")]
    fn pool_without_arena_panics() {
        let _ = TransientAlloc::new(AllocMode::Pool, 1, None);
    }
}
