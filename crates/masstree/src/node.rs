//! Transient Masstree node layouts.
//!
//! Both node kinds are 320 bytes, cache-line aligned, and start with the
//! version word so a node reference (`u64` address) can be inspected before
//! its kind is known:
//!
//! * [`Leaf`] — border node: 15 unsorted key slots ordered by the
//!   permutation word, `keylenx` tags (terminal length or layer marker) and
//!   value words (value-buffer address, or layer root-cell address when
//!   `keylenx == KLEN_LAYER`).
//! * [`Interior`] — B+tree internal node: up to 15 sorted `ikey`
//!   separators and 16 children.
//!
//! All fields are atomics: readers run lock-free under version validation,
//! so every racing load must be defined behavior.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::perm::Permutation;
use crate::version::{NodeVersion, IS_LEAF};

/// Keys/values per leaf (the paper's transient Masstree default, §2.2).
pub const LEAF_WIDTH: usize = 15;
/// Separator keys per interior node.
pub const INT_WIDTH: usize = 15;

/// Permutation type for transient leaves.
pub type LeafPerm = Permutation<LEAF_WIDTH>;

/// A border (leaf) node.
#[repr(C, align(64))]
pub struct Leaf {
    /// Version word ([`crate::version`]).
    pub version: NodeVersion,
    /// Permutation word ([`crate::perm`]).
    pub permutation: AtomicU64,
    /// Parent interior node address (0 when layer root).
    pub parent: AtomicU64,
    /// Right sibling address (0 at the layer's right edge).
    pub next: AtomicU64,
    /// 8-byte big-endian key slices, unsorted.
    pub ikeys: [AtomicU64; LEAF_WIDTH],
    /// Terminal length (0..=8) or [`crate::key::KLEN_LAYER`].
    pub klenx: [AtomicU8; LEAF_WIDTH],
    /// Value-buffer address, or layer root-cell address for layer slots.
    pub vals: [AtomicU64; LEAF_WIDTH],
}

/// An interior node.
#[repr(C, align(64))]
pub struct Interior {
    /// Version word.
    pub version: NodeVersion,
    /// Number of separator keys (≤ [`INT_WIDTH`]).
    pub nkeys: AtomicU64,
    /// Parent interior node address (0 when layer root).
    pub parent: AtomicU64,
    /// Sorted separator keys.
    pub keys: [AtomicU64; INT_WIDTH],
    /// Children addresses (`nkeys + 1` populated).
    pub children: [AtomicU64; INT_WIDTH + 1],
}

/// A mutable root cell: each trie layer's root pointer lives in one so
/// root splits can swing it atomically.
#[derive(Debug, Default)]
#[repr(C)]
pub struct RootCell(pub AtomicU64);

impl RootCell {
    /// Reads the current layer root address.
    #[inline]
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Installs a new layer root address.
    #[inline]
    pub fn store(&self, node: u64) {
        self.0.store(node, Ordering::Release);
    }
}

/// Returns the version word of the node at `addr`.
///
/// # Safety
///
/// `addr` must reference a live `Leaf` or `Interior` (both start with the
/// version word).
#[inline]
pub unsafe fn version_of<'a>(addr: u64) -> &'a NodeVersion {
    unsafe { &*(addr as *const NodeVersion) }
}

/// Casts `addr` to a leaf reference.
///
/// # Safety
///
/// `addr` must reference a live, properly initialised `Leaf`.
#[inline]
pub unsafe fn leaf_ref<'a>(addr: u64) -> &'a Leaf {
    unsafe { &*(addr as *const Leaf) }
}

/// Casts `addr` to an interior reference.
///
/// # Safety
///
/// `addr` must reference a live, properly initialised `Interior`.
#[inline]
pub unsafe fn interior_ref<'a>(addr: u64) -> &'a Interior {
    unsafe { &*(addr as *const Interior) }
}

impl Leaf {
    /// Initialises raw memory at `addr` as an empty leaf with the given
    /// version flags (besides `IS_LEAF`, which is always set).
    ///
    /// # Safety
    ///
    /// `addr` must point to at least `size_of::<Leaf>()` bytes of exclusively
    /// owned, 64-aligned memory.
    pub unsafe fn init(addr: u64, extra_flags: u64) -> &'static Leaf {
        unsafe {
            let l = &mut *(addr as *mut Leaf);
            std::ptr::write(
                &mut l.version,
                NodeVersion::with_flags(IS_LEAF | extra_flags),
            );
            l.permutation
                .store(LeafPerm::empty().raw(), Ordering::Relaxed);
            l.parent.store(0, Ordering::Relaxed);
            l.next.store(0, Ordering::Relaxed);
            // Key/val slots gated by the permutation: no init required, but
            // zero them for deterministic debugging.
            for i in 0..LEAF_WIDTH {
                l.ikeys[i].store(0, Ordering::Relaxed);
                l.klenx[i].store(0, Ordering::Relaxed);
                l.vals[i].store(0, Ordering::Relaxed);
            }
            &*(addr as *const Leaf)
        }
    }

    /// Loads the permutation.
    #[inline]
    pub fn perm(&self) -> LeafPerm {
        LeafPerm::from_raw(self.permutation.load(Ordering::Acquire))
    }

    /// Publishes a new permutation.
    #[inline]
    pub fn set_perm(&self, p: LeafPerm) {
        self.permutation.store(p.raw(), Ordering::Release);
    }
}

impl Interior {
    /// Initialises raw memory at `addr` as an empty interior node.
    ///
    /// # Safety
    ///
    /// As for [`Leaf::init`].
    pub unsafe fn init(addr: u64, extra_flags: u64) -> &'static Interior {
        unsafe {
            let n = &mut *(addr as *mut Interior);
            std::ptr::write(&mut n.version, NodeVersion::with_flags(extra_flags));
            n.nkeys.store(0, Ordering::Relaxed);
            n.parent.store(0, Ordering::Relaxed);
            for i in 0..INT_WIDTH {
                n.keys[i].store(0, Ordering::Relaxed);
            }
            for i in 0..=INT_WIDTH {
                n.children[i].store(0, Ordering::Relaxed);
            }
            &*(addr as *const Interior)
        }
    }

    /// Number of separator keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.nkeys.load(Ordering::Acquire) as usize
    }

    /// Whether the node holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Child index routing `ikey`: the number of separators ≤ `ikey`
    /// (keys equal to a separator route right).
    #[inline]
    pub fn route(&self, ikey: u64) -> usize {
        let n = self.len();
        let mut i = 0;
        while i < n && self.keys[i].load(Ordering::Acquire) <= ikey {
            i += 1;
        }
        i
    }
}

/// Byte size of both node kinds (they share one allocation class).
pub const NODE_BYTES: usize = std::mem::size_of::<Leaf>();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::IS_ROOT;

    #[test]
    fn node_sizes_are_320_bytes_aligned_64() {
        assert_eq!(std::mem::size_of::<Leaf>(), 320);
        assert_eq!(std::mem::size_of::<Interior>(), 320);
        assert_eq!(std::mem::align_of::<Leaf>(), 64);
        assert_eq!(std::mem::align_of::<Interior>(), 64);
    }

    #[test]
    fn version_is_first_field() {
        // The kind-agnostic header cast relies on this.
        assert_eq!(std::mem::offset_of!(Leaf, version), 0);
        assert_eq!(std::mem::offset_of!(Interior, version), 0);
    }

    #[test]
    fn leaf_init_is_empty_root_leaf() {
        let mem = vec![0u8; NODE_BYTES + 64];
        let addr = (mem.as_ptr() as u64 + 63) & !63;
        let l = unsafe { Leaf::init(addr, IS_ROOT) };
        assert!(l.perm().is_empty());
        assert!(l.version.is_leaf());
        assert!(l.version.load() & IS_ROOT != 0);
        assert_eq!(l.next.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn interior_routing() {
        let mem = vec![0u8; NODE_BYTES + 64];
        let addr = (mem.as_ptr() as u64 + 63) & !63;
        let n = unsafe { Interior::init(addr, 0) };
        n.keys[0].store(10, Ordering::Relaxed);
        n.keys[1].store(20, Ordering::Relaxed);
        n.nkeys.store(2, Ordering::Relaxed);
        assert_eq!(n.route(5), 0);
        assert_eq!(n.route(10), 1, "equal keys route right");
        assert_eq!(n.route(15), 1);
        assert_eq!(n.route(20), 2);
        assert_eq!(n.route(99), 2);
    }

    #[test]
    fn root_cell_swings() {
        let c = RootCell::default();
        c.store(0x1000);
        assert_eq!(c.load(), 0x1000);
    }
}
