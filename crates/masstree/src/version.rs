//! Node version words: Masstree's optimistic concurrency control (§2.2).
//!
//! Every node carries a 64-bit version word combining a spinlock, "dirty"
//! bits announcing in-progress inserts/splits, and generation counters that
//! readers validate against:
//!
//! ```text
//! bit  0: LOCK        writer lock
//! bit  1: INSERTING   contents being rearranged (dirty)
//! bit  2: SPLITTING   node splitting (dirty; held across the parent update)
//! bit  3: DELETED     node retired
//! bit  4: IS_ROOT     node is the root of its trie layer
//! bit  5: IS_LEAF     border node (vs interior)
//! bits  8..36: vinsert counter (bumped by every insert/remove unlock)
//! bits 36..63: vsplit  counter (bumped by every split unlock)
//! ```
//!
//! Readers take a *stable* snapshot (spin while dirty), read node contents,
//! then re-check the word: any change to the dirty bits or counters means
//! the read raced a writer and must retry. Writers lock, set a dirty bit,
//! mutate, and unlock-with-increment in one release store.
//!
//! The bit functions are pure `u64` helpers so the durable tree (which
//! stores version words in persistent memory) reuses them unchanged; the
//! lock word is semantically transient and reinitialised by recovery
//! (§4.3).

use std::sync::atomic::{AtomicU64, Ordering};

/// Writer lock bit.
pub const LOCK: u64 = 1 << 0;
/// Insert-in-progress dirty bit.
pub const INSERTING: u64 = 1 << 1;
/// Split-in-progress dirty bit.
pub const SPLITTING: u64 = 1 << 2;
/// Node retired.
pub const DELETED: u64 = 1 << 3;
/// Root of its trie layer.
pub const IS_ROOT: u64 = 1 << 4;
/// Border (leaf) node.
pub const IS_LEAF: u64 = 1 << 5;

const VINSERT_SHIFT: u32 = 8;
const VINSERT_UNIT: u64 = 1 << VINSERT_SHIFT;
const VSPLIT_SHIFT: u32 = 36;
#[cfg(test)]
const VSPLIT_UNIT: u64 = 1 << VSPLIT_SHIFT;
const DIRTY: u64 = INSERTING | SPLITTING;

/// Whether a version word is dirty (contents unstable).
#[inline]
pub fn is_dirty(v: u64) -> bool {
    v & DIRTY != 0
}

/// Whether the lock bit is held.
#[inline]
pub fn is_locked(v: u64) -> bool {
    v & LOCK != 0
}

/// Whether two stable snapshots allow a read to be trusted: the dirty bits
/// and both counters must be identical (the lock bit alone is fine — a
/// writer that locked but has not yet dirtied anything has not changed the
/// contents).
#[inline]
pub fn changed(before: u64, after: u64) -> bool {
    (before ^ after) & !LOCK != 0
}

/// The unlock word for a writer: clear lock + dirty bits and bump the
/// counters for the work performed. Each counter wraps within its own
/// field (no carry between them).
#[inline]
pub fn unlock_word(v: u64, did_insert: bool, did_split: bool) -> u64 {
    const FIELD: u64 = (1 << 28) - 1; // both counters are 28 bits wide
    let flags = v & ((VINSERT_UNIT - 1) & !(LOCK | INSERTING | SPLITTING));
    let mut vins = (v >> VINSERT_SHIFT) & FIELD;
    let mut vspl = (v >> VSPLIT_SHIFT) & FIELD;
    if did_insert {
        vins = (vins + 1) & FIELD;
    }
    if did_split {
        vspl = (vspl + 1) & FIELD;
    }
    flags | (vins << VINSERT_SHIFT) | (vspl << VSPLIT_SHIFT)
}

/// A transient atomic version word.
#[derive(Debug, Default)]
pub struct NodeVersion(AtomicU64);

impl NodeVersion {
    /// Creates a version word with the given flag bits set.
    pub fn with_flags(flags: u64) -> Self {
        NodeVersion(AtomicU64::new(flags))
    }

    /// Raw relaxed load.
    #[inline]
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Spins until the word is not dirty, returning the stable snapshot.
    #[inline]
    pub fn stable(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.0.load(Ordering::Acquire);
            if !is_dirty(v) {
                return v;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Acquires the writer lock (spinning).
    pub fn lock(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.0.load(Ordering::Relaxed);
            if !is_locked(v)
                && self
                    .0
                    .compare_exchange_weak(v, v | LOCK, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return v | LOCK;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Tries to acquire the writer lock without spinning.
    pub fn try_lock(&self) -> Option<u64> {
        let v = self.0.load(Ordering::Relaxed);
        if is_locked(v) {
            return None;
        }
        self.0
            .compare_exchange(v, v | LOCK, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|w| w | LOCK)
    }

    /// Sets a dirty bit while holding the lock.
    ///
    /// # Panics
    ///
    /// Debug-panics if the lock is not held.
    #[inline]
    pub fn mark_dirty(&self, bit: u64) {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(is_locked(v), "dirty bit without the lock");
        self.0.store(v | bit, Ordering::Release);
    }

    /// Releases the lock, clearing dirty bits and bumping counters.
    #[inline]
    pub fn unlock(&self, did_insert: bool, did_split: bool) {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(is_locked(v));
        self.0
            .store(unlock_word(v, did_insert, did_split), Ordering::Release);
    }

    /// Sets or clears a flag bit (e.g. [`IS_ROOT`]) while holding the lock.
    pub fn set_flag(&self, bit: u64, on: bool) {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(is_locked(v));
        let w = if on { v | bit } else { v & !bit };
        self.0.store(w, Ordering::Release);
    }

    /// Whether the node is a border (leaf) node.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.load() & IS_LEAF != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn flags_roundtrip() {
        let v = NodeVersion::with_flags(IS_LEAF | IS_ROOT);
        assert!(v.is_leaf());
        assert!(v.load() & IS_ROOT != 0);
        assert!(!is_dirty(v.load()));
    }

    #[test]
    fn lock_unlock_bumps_vinsert() {
        let v = NodeVersion::with_flags(IS_LEAF);
        let before = v.stable();
        v.lock();
        v.mark_dirty(INSERTING);
        v.unlock(true, false);
        let after = v.stable();
        assert!(changed(before, after));
        assert!(!is_locked(after));
        assert!(!is_dirty(after));
    }

    #[test]
    fn unlock_without_work_changes_nothing_observable() {
        let v = NodeVersion::with_flags(IS_LEAF);
        let before = v.stable();
        v.lock();
        v.unlock(false, false);
        assert!(!changed(before, v.stable()));
    }

    #[test]
    fn split_bumps_vsplit_not_vinsert_only() {
        let a = unlock_word(LOCK | SPLITTING, false, true);
        assert_eq!(a & (LOCK | SPLITTING), 0);
        assert!(changed(0, a));
        let b = unlock_word(LOCK | INSERTING, true, false);
        assert!(changed(0, b));
        assert_ne!(a, b, "insert and split advance different counters");
    }

    #[test]
    fn lock_bit_alone_is_not_a_change() {
        assert!(!changed(0, LOCK));
        assert!(changed(0, INSERTING));
        assert!(changed(0, unlock_word(LOCK, true, false)));
    }

    #[test]
    fn stable_waits_for_dirty_clear() {
        let v = Arc::new(NodeVersion::with_flags(IS_LEAF));
        v.lock();
        v.mark_dirty(INSERTING);
        let v2 = v.clone();
        let t = std::thread::spawn(move || {
            let s = v2.stable();
            assert!(!is_dirty(s));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        v.unlock(true, false);
        t.join().unwrap();
    }

    #[test]
    fn try_lock_fails_when_held() {
        let v = NodeVersion::with_flags(0);
        v.lock();
        assert!(v.try_lock().is_none());
        v.unlock(false, false);
        assert!(v.try_lock().is_some());
    }

    #[test]
    fn contended_lock_is_exclusive() {
        let v = Arc::new(NodeVersion::with_flags(0));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let v = v.clone();
                let c = counter.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        v.lock();
                        // Non-atomic increment under the lock.
                        let x = c.load(Ordering::Relaxed);
                        c.store(x + 1, Ordering::Relaxed);
                        v.unlock(false, false);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn vinsert_overflow_does_not_touch_vsplit() {
        // Saturate vinsert to the top of its field and add one more.
        let vins_max = ((VSPLIT_UNIT - VINSERT_UNIT) / VINSERT_UNIT) * VINSERT_UNIT;
        let w = unlock_word(LOCK | vins_max, true, false);
        assert_eq!(w >> VSPLIT_SHIFT, 0, "vinsert carry must not reach vsplit");
    }
}
