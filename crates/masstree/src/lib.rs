//! Transient Masstree substrate: the paper's MT and MT+ baselines (§2.2,
//! §6), plus the building blocks the durable tree shares (permutation
//! word, key slicing, version-lock protocol).
//!
//! Masstree is a trie of B+trees: each trie layer consumes 8 key bytes
//! ([`key`]), each layer is a concurrent B+tree whose border nodes keep 15
//! unsorted entries ordered by a permutation word ([`perm`]), and all
//! synchronisation follows the optimistic version-validation protocol
//! ([`version`]).
//!
//! Two allocation policies reproduce the paper's baselines ([`alloc`]):
//! MT uses the global allocator; MT+ uses a pre-mapped pool with
//! per-thread free lists.
//!
//! # Quick start
//!
//! ```
//! use incll_pmem::PArena;
//! use incll_epoch::{EpochManager, EpochOptions};
//! use incll_masstree::{AllocMode, Masstree, TransientAlloc};
//!
//! # fn main() -> Result<(), incll_pmem::Error> {
//! // MT+ flavor: pool allocation over a pre-mapped arena.
//! let pool = PArena::builder().capacity_bytes(4 << 20).build()?;
//! let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
//! let alloc = TransientAlloc::new(AllocMode::Pool, 2, Some(pool));
//! let tree = Masstree::new(mgr, alloc);
//!
//! let ctx = tree.thread_ctx(0);
//! tree.put(&ctx, b"key-1", 100);
//! tree.put(&ctx, b"key-2", 200);
//! let mut seen = Vec::new();
//! tree.scan(&ctx, b"key-", 10, &mut |k, v| seen.push((k.to_vec(), v)));
//! assert_eq!(seen.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod alloc;
pub mod key;
pub mod node;
pub mod perm;
pub mod tree;
pub mod version;

pub use alloc::{AllocMode, TransientAlloc};
pub use node::{Interior, Leaf, RootCell, INT_WIDTH, LEAF_WIDTH, NODE_BYTES};
pub use perm::Permutation;
pub use tree::{Masstree, TreeCtx, VALUE_BUF_BYTES};

#[cfg(test)]
mod tree_tests {
    use super::*;
    use incll_epoch::{EpochManager, EpochOptions};
    use incll_pmem::PArena;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn mt() -> Masstree {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 8, None))
    }

    fn mtplus(pool_bytes: usize) -> Masstree {
        let pool = PArena::builder()
            .capacity_bytes(pool_bytes)
            .build()
            .unwrap();
        let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
        Masstree::new(mgr, TransientAlloc::new(AllocMode::Pool, 8, Some(pool)))
    }

    #[test]
    fn empty_tree_misses() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        assert_eq!(t.get(&ctx, b"nope"), None);
        assert!(!t.remove(&ctx, b"nope"));
    }

    #[test]
    fn put_get_update_remove() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        assert_eq!(t.put(&ctx, b"alpha", 1), None);
        assert_eq!(t.get(&ctx, b"alpha"), Some(1));
        assert_eq!(t.put(&ctx, b"alpha", 2), Some(1));
        assert_eq!(t.get(&ctx, b"alpha"), Some(2));
        assert!(t.remove(&ctx, b"alpha"));
        assert_eq!(t.get(&ctx, b"alpha"), None);
        assert!(!t.remove(&ctx, b"alpha"));
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        assert_eq!(t.put(&ctx, b"", 42), None);
        assert_eq!(t.get(&ctx, b""), Some(42));
        assert!(t.remove(&ctx, b""));
    }

    #[test]
    fn prefix_keys_coexist() {
        // "ab" vs "ab\0" share a padded slice but differ in klen.
        let t = mt();
        let ctx = t.thread_ctx(0);
        t.put(&ctx, b"ab", 1);
        t.put(&ctx, b"ab\0", 2);
        t.put(&ctx, b"a", 3);
        assert_eq!(t.get(&ctx, b"ab"), Some(1));
        assert_eq!(t.get(&ctx, b"ab\0"), Some(2));
        assert_eq!(t.get(&ctx, b"a"), Some(3));
    }

    #[test]
    fn long_keys_descend_layers() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        t.put(&ctx, b"abcdefgh-layer-two", 1);
        t.put(&ctx, b"abcdefgh-layer-2nd", 2);
        t.put(&ctx, b"abcdefgh", 3); // exactly one slice: folds into layer
        assert_eq!(t.get(&ctx, b"abcdefgh-layer-two"), Some(1));
        assert_eq!(t.get(&ctx, b"abcdefgh-layer-2nd"), Some(2));
        assert_eq!(t.get(&ctx, b"abcdefgh"), Some(3));
        assert_eq!(t.get(&ctx, b"abcdefgh-layer"), None);
        assert!(t.remove(&ctx, b"abcdefgh"));
        assert_eq!(t.get(&ctx, b"abcdefgh"), None);
        assert_eq!(t.get(&ctx, b"abcdefgh-layer-two"), Some(1));
    }

    #[test]
    fn layer_conversion_preserves_old_value() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        t.put(&ctx, b"12345678", 11); // terminal-8
        t.put(&ctx, b"12345678suffix", 22); // forces conversion
        assert_eq!(t.get(&ctx, b"12345678"), Some(11));
        assert_eq!(t.get(&ctx, b"12345678suffix"), Some(22));
    }

    #[test]
    fn very_long_keys_build_layer_chains() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        let key = vec![b'x'; 100];
        t.put(&ctx, &key, 5);
        assert_eq!(t.get(&ctx, &key), Some(5));
        let mut key99 = key.clone();
        key99.truncate(99);
        assert_eq!(t.get(&ctx, &key99), None);
        t.put(&ctx, &key99, 6);
        assert_eq!(t.get(&ctx, &key99), Some(6));
        assert_eq!(t.get(&ctx, &key), Some(5));
    }

    #[test]
    fn splits_preserve_all_keys() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        // Far more keys than one leaf: forces leaf + interior splits.
        for i in 0..5000u64 {
            t.put(&ctx, &i.to_be_bytes(), i * 10);
        }
        for i in 0..5000u64 {
            assert_eq!(t.get(&ctx, &i.to_be_bytes()), Some(i * 10), "key {i}");
        }
    }

    #[test]
    fn descending_inserts_split_correctly() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        for i in (0..2000u64).rev() {
            t.put(&ctx, &i.to_be_bytes(), i);
        }
        for i in 0..2000u64 {
            assert_eq!(t.get(&ctx, &i.to_be_bytes()), Some(i));
        }
    }

    #[test]
    fn random_ops_match_btreemap_model() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(0xA5);
        for step in 0..30_000 {
            let klen = rng.gen_range(0..20);
            let key: Vec<u8> = (0..klen).map(|_| rng.gen_range(b'a'..=b'f')).collect();
            match rng.gen_range(0..10) {
                0..=4 => {
                    let v = rng.gen::<u64>();
                    assert_eq!(
                        t.put(&ctx, &key, v),
                        model.insert(key.clone(), v),
                        "put mismatch at step {step} key {key:?}"
                    );
                }
                5..=6 => {
                    assert_eq!(
                        t.remove(&ctx, &key),
                        model.remove(&key).is_some(),
                        "remove mismatch at step {step} key {key:?}"
                    );
                }
                _ => {
                    assert_eq!(
                        t.get(&ctx, &key),
                        model.get(&key).copied(),
                        "get mismatch at step {step} key {key:?}"
                    );
                }
            }
        }
        // Full-order scan equivalence.
        let mut scanned = Vec::new();
        t.scan(&ctx, b"", usize::MAX, &mut |k, v| {
            scanned.push((k.to_vec(), v))
        });
        let expect: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn scan_from_start_key_and_limit() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        for i in 0..100u64 {
            t.put(&ctx, &i.to_be_bytes(), i);
        }
        let mut got = Vec::new();
        let n = t.scan(&ctx, &10u64.to_be_bytes(), 10, &mut |_, v| got.push(v));
        assert_eq!(n, 10);
        assert_eq!(got, (10..20).collect::<Vec<u64>>());
    }

    #[test]
    fn scan_crosses_layers_in_order() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        let keys: Vec<&[u8]> = vec![
            b"a",
            b"abcdefgh",
            b"abcdefgh-1",
            b"abcdefgh-2",
            b"abcdefgi",
            b"b",
        ];
        for (i, k) in keys.iter().enumerate() {
            t.put(&ctx, k, i as u64);
        }
        let mut got = Vec::new();
        t.scan(&ctx, b"", 100, &mut |k, v| got.push((k.to_vec(), v)));
        let mut expect: Vec<(Vec<u8>, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.to_vec(), i as u64))
            .collect();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn mtplus_pool_flavor_behaves_identically() {
        let t = mtplus(16 << 20);
        let ctx = t.thread_ctx(0);
        for i in 0..3000u64 {
            t.put(&ctx, &i.to_be_bytes(), i + 1);
        }
        for i in 0..3000u64 {
            assert_eq!(t.get(&ctx, &i.to_be_bytes()), Some(i + 1));
        }
        for i in 0..1500u64 {
            assert!(t.remove(&ctx, &i.to_be_bytes()));
        }
        t.epoch_manager().advance(); // recycle buffers
        for i in 1500..3000u64 {
            assert_eq!(t.get(&ctx, &i.to_be_bytes()), Some(i + 1));
        }
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let t = std::sync::Arc::new(mt());
        std::thread::scope(|s| {
            for tid in 0..4usize {
                let t = t.clone();
                s.spawn(move || {
                    let ctx = t.thread_ctx(tid);
                    for i in 0..2000u64 {
                        let k = (i * 4 + tid as u64).to_be_bytes();
                        t.put(&ctx, &k, i);
                    }
                });
            }
        });
        let ctx = t.thread_ctx(0);
        for tid in 0..4u64 {
            for i in 0..2000u64 {
                let k = (i * 4 + tid).to_be_bytes();
                assert_eq!(t.get(&ctx, &k), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_mixed_readers_writers_with_epochs() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        let t = std::sync::Arc::new(Masstree::new(
            mgr.clone(),
            TransientAlloc::new(AllocMode::Global, 8, None),
        ));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for tid in 0..4usize {
                let t = t.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let ctx = t.thread_ctx(tid);
                    let mut rng = StdRng::seed_from_u64(tid as u64);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let k = rng.gen_range(0..5000u64).to_be_bytes();
                        match rng.gen_range(0..4) {
                            0 => {
                                t.put(&ctx, &k, rng.gen());
                            }
                            1 => {
                                t.remove(&ctx, &k);
                            }
                            _ => {
                                t.get(&ctx, &k);
                            }
                        }
                    }
                });
            }
            // Concurrent epoch churn (reclamation pressure).
            for _ in 0..30 {
                mgr.advance();
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // Tree is still coherent afterwards.
        let ctx = t.thread_ctx(0);
        let mut count = 0usize;
        t.scan(&ctx, b"", usize::MAX, &mut |_, _| count += 1);
        assert!(count <= 5000);
    }

    #[test]
    fn values_survive_epoch_reclamation() {
        let t = mt();
        let ctx = t.thread_ctx(0);
        t.put(&ctx, b"k", 1);
        t.put(&ctx, b"k", 2); // old buffer deferred
        t.epoch_manager().advance(); // old buffer freed
        assert_eq!(t.get(&ctx, b"k"), Some(2));
    }
}
