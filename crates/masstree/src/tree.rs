//! The transient Masstree: a concurrent trie of B+trees (§2.2).
//!
//! This is the paper's baseline structure (MT with the global allocator,
//! MT+ with the pool allocator): optimistic lock-free readers validated by
//! node version words, per-node writer locks, permutation-published leaf
//! updates, B+tree splits with the `SPLITTING` bit held across the parent
//! update (which is what makes the reader descent protocol sound), and
//! trie layering for keys longer than 8 bytes.
//!
//! Values are opaque `u64` payloads stored in 32-byte buffers allocated per
//! `put` — matching the paper's workload, where every update allocates a
//! fresh value buffer and retires the old one through epoch-based
//! reclamation.

use std::sync::atomic::{AtomicU64, Ordering};

use incll_epoch::{EpochManager, ThreadHandle};

use crate::alloc::TransientAlloc;
use crate::key::{entry_cmp, ikey_bytes, search_klenx, KeyCursor, KLEN_LAYER};
use crate::node::{
    interior_ref, leaf_ref, version_of, Interior, Leaf, LeafPerm, RootCell, INT_WIDTH, NODE_BYTES,
};
use crate::version::{self, INSERTING, IS_LEAF, IS_ROOT, SPLITTING};

/// Size of a value buffer (paper §6: values live in 32-byte buffers).
pub const VALUE_BUF_BYTES: usize = 32;
/// Size of a layer root cell allocation.
const ROOT_CELL_BYTES: usize = 16;

/// Per-thread operation context: epoch registration + allocator identity.
pub struct TreeCtx {
    handle: ThreadHandle,
    tid: usize,
}

impl TreeCtx {
    /// The thread id used for allocator affinity.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The underlying epoch handle.
    pub fn handle(&self) -> &ThreadHandle {
        &self.handle
    }
}

impl std::fmt::Debug for TreeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeCtx").field("tid", &self.tid).finish()
    }
}

/// Outcome of a leaf search for `(ikey, klenx)`.
enum Search {
    /// Exact entry at sorted position `pos`, array slot `slot`.
    Found {
        pos: usize,
        slot: usize,
        klenx: u8,
        val: u64,
    },
    /// Absent; would sort at position `pos`.
    NotFound { pos: usize },
}

/// The transient Masstree (see module docs).
///
/// # Example
///
/// ```
/// use incll_pmem::PArena;
/// use incll_epoch::{EpochManager, EpochOptions};
/// use incll_masstree::{AllocMode, Masstree, TransientAlloc};
///
/// # fn main() -> Result<(), incll_pmem::Error> {
/// let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
/// let mgr = EpochManager::new(arena, EpochOptions::transient());
/// let alloc = TransientAlloc::new(AllocMode::Global, 1, None);
/// let tree = Masstree::new(mgr, alloc);
/// let ctx = tree.thread_ctx(0);
/// assert_eq!(tree.put(&ctx, b"hello", 7), None);
/// assert_eq!(tree.get(&ctx, b"hello"), Some(7));
/// assert_eq!(tree.put(&ctx, b"hello", 9), Some(7));
/// assert!(tree.remove(&ctx, b"hello"));
/// assert_eq!(tree.get(&ctx, b"hello"), None);
/// # Ok(())
/// # }
/// ```
pub struct Masstree {
    root: Box<RootCell>,
    alloc: TransientAlloc,
    mgr: EpochManager,
}

// SAFETY: all shared state is behind atomics and the version-lock protocol;
// the raw node addresses are owned by the tree and freed only under EBR.
unsafe impl Send for Masstree {}
// SAFETY: as above.
unsafe impl Sync for Masstree {}

impl Masstree {
    /// Creates an empty tree. The allocator's epoch hook is registered on
    /// `mgr` so deferred frees recycle at each boundary.
    pub fn new(mgr: EpochManager, alloc: TransientAlloc) -> Self {
        alloc.attach(&mgr);
        let addr = alloc.alloc(0, NODE_BYTES);
        // SAFETY: fresh exclusive allocation of node size.
        unsafe { Leaf::init(addr, IS_ROOT) };
        let root = Box::new(RootCell::default());
        root.store(addr);
        Masstree { root, alloc, mgr }
    }

    /// The epoch manager driving reclamation (and, for MT+, the barrier).
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.mgr
    }

    /// Registers the calling thread and returns its operation context.
    pub fn thread_ctx(&self, tid: usize) -> TreeCtx {
        TreeCtx {
            handle: self.mgr.register(),
            tid,
        }
    }

    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// Looks up `key`, returning its value payload.
    pub fn get(&self, ctx: &TreeCtx, key: &[u8]) -> Option<u64> {
        let _g = ctx.handle.pin();
        // SAFETY: guard pinned; nodes reachable from the root are live.
        unsafe { self.get_inner(key) }
    }

    /// Inserts or updates `key` with a fresh value buffer holding `val`,
    /// returning the previous payload if the key existed.
    pub fn put(&self, ctx: &TreeCtx, key: &[u8], val: u64) -> Option<u64> {
        let _g = ctx.handle.pin();
        // SAFETY: as for `get`.
        unsafe { self.put_inner(ctx, key, val) }
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&self, ctx: &TreeCtx, key: &[u8]) -> bool {
        let _g = ctx.handle.pin();
        // SAFETY: as for `get`.
        unsafe { self.remove_inner(ctx, key) }
    }

    /// Scans at most `limit` keys ≥ `start` in order, invoking
    /// `f(key_bytes, payload)`. Returns the number visited.
    pub fn scan(
        &self,
        ctx: &TreeCtx,
        start: &[u8],
        limit: usize,
        f: &mut dyn FnMut(&[u8], u64),
    ) -> usize {
        if limit == 0 {
            return 0;
        }
        let _g = ctx.handle.pin();
        let mut remaining = limit;
        let mut prefix = Vec::with_capacity(start.len() + 8);
        // SAFETY: as for `get`.
        unsafe {
            self.scan_layer(
                &self.root,
                Some(KeyCursor::new(start)),
                &mut prefix,
                &mut remaining,
                f,
            );
        }
        limit - remaining
    }

    // ------------------------------------------------------------------
    // Descent
    // ------------------------------------------------------------------

    /// Finds the border leaf for `ikey` within the layer rooted at `cell`,
    /// hand-over-hand validated. Returns the leaf address and the stable
    /// version snapshot the caller must validate against.
    unsafe fn find_leaf(cell: &RootCell, ikey: u64) -> (u64, u64) {
        unsafe {
            'retry: loop {
                let n0 = cell.load();
                let v0 = version_of(n0).stable();
                if v0 & IS_ROOT == 0 {
                    // Root demoted by a split; the cell is updated before the
                    // flag clears, so re-reading resolves promptly.
                    std::hint::spin_loop();
                    continue 'retry;
                }
                let mut n = n0;
                let mut v = v0;
                loop {
                    if v & IS_LEAF != 0 {
                        return (n, v);
                    }
                    let int = interior_ref(n);
                    let idx = int.route(ikey);
                    let child = int.children[idx].load(Ordering::Acquire);
                    if child == 0 {
                        continue 'retry;
                    }
                    // Take the child's stable version BEFORE re-validating the
                    // parent: a leaf split holds SPLITTING until the parent is
                    // updated, so this order guarantees we either see the
                    // parent change (retry) or a pre-split child.
                    let vc = version_of(child).stable();
                    if version::changed(v, version_of(n).load()) {
                        continue 'retry;
                    }
                    n = child;
                    v = vc;
                }
            }
        }
    }

    /// Linear search of a (stable or locked) leaf for `(ikey, klenx)`.
    unsafe fn search_leaf(lf: &Leaf, ikey: u64, klenx: u8) -> Search {
        let perm = lf.perm();
        for pos in 0..perm.len() {
            let slot = perm.slot_at(pos);
            let k = lf.ikeys[slot].load(Ordering::Acquire);
            let kl = lf.klenx[slot].load(Ordering::Acquire);
            match entry_cmp(k, kl, ikey, klenx) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => {
                    return Search::Found {
                        pos,
                        slot,
                        klenx: kl,
                        val: lf.vals[slot].load(Ordering::Acquire),
                    }
                }
                std::cmp::Ordering::Greater => return Search::NotFound { pos },
            }
        }
        Search::NotFound { pos: perm.len() }
    }

    /// Reads the entry at sorted position `pos` (must be in range).
    unsafe fn entry_at(lf: &Leaf, pos: usize) -> (u64, u8, u64) {
        let slot = lf.perm().slot_at(pos);
        (
            lf.ikeys[slot].load(Ordering::Acquire),
            lf.klenx[slot].load(Ordering::Acquire),
            lf.vals[slot].load(Ordering::Acquire),
        )
    }

    // ------------------------------------------------------------------
    // get
    // ------------------------------------------------------------------

    unsafe fn get_inner(&self, key: &[u8]) -> Option<u64> {
        unsafe {
            let mut cur = KeyCursor::new(key);
            let mut cell: *const RootCell = &*self.root;
            'layer: loop {
                let ikey = cur.ikey();
                let target = search_klenx(&cur);
                'retry: loop {
                    let (lf_addr, v) = Self::find_leaf(&*cell, ikey);
                    let lf = leaf_ref(lf_addr);
                    let sr = Self::search_leaf(lf, ikey, target);
                    // Candidate outcome, decided before validation.
                    enum Act {
                        Ret(Option<u64>),
                        Descend(u64),
                    }
                    let act = match sr {
                        Search::Found { klenx, val, .. } => {
                            if klenx == KLEN_LAYER {
                                Act::Descend(val)
                            } else {
                                Act::Ret(Some(val))
                            }
                        }
                        Search::NotFound { pos } => {
                            // A terminal-8 probe may still descend into a layer
                            // holding this exact slice as its empty suffix.
                            if target == 8 && pos < lf.perm().len() {
                                let (k, kl, val) = Self::entry_at(lf, pos);
                                if k == ikey && kl == KLEN_LAYER {
                                    Act::Descend(val)
                                } else {
                                    Act::Ret(None)
                                }
                            } else {
                                Act::Ret(None)
                            }
                        }
                    };
                    if version::changed(v, lf.version.load()) {
                        continue 'retry;
                    }
                    match act {
                        Act::Ret(Some(buf)) => {
                            // Buffers are immutable once published and retired
                            // under EBR: safe to read after validation.
                            return Some(*(buf as *const u64));
                        }
                        Act::Ret(None) => return None,
                        Act::Descend(holder) => {
                            cell = holder as *const RootCell;
                            cur.descend();
                            continue 'layer;
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // put
    // ------------------------------------------------------------------

    unsafe fn put_inner(&self, ctx: &TreeCtx, key: &[u8], val: u64) -> Option<u64> {
        unsafe {
            let mut cur = KeyCursor::new(key);
            let mut cell: *const RootCell = &*self.root;
            'layer: loop {
                let ikey = cur.ikey();
                let target = search_klenx(&cur);
                'retry: loop {
                    let (lf_addr, v) = Self::find_leaf(&*cell, ikey);
                    let lf = leaf_ref(lf_addr);

                    // Fast read-only layer descent (no lock needed).
                    if target == KLEN_LAYER {
                        if let Search::Found { klenx, val: h, .. } =
                            Self::search_leaf(lf, ikey, KLEN_LAYER)
                        {
                            debug_assert_eq!(klenx, KLEN_LAYER);
                            if version::changed(v, lf.version.load()) {
                                continue 'retry;
                            }
                            cell = h as *const RootCell;
                            cur.descend();
                            continue 'layer;
                        }
                    }

                    let lv = lf.version.lock();
                    if Self::moved_since(v, lv) {
                        lf.version.unlock(false, false);
                        continue 'retry;
                    }

                    match Self::search_leaf(lf, ikey, target) {
                        Search::Found {
                            slot,
                            klenx,
                            val: old,
                            ..
                        } => {
                            if klenx == KLEN_LAYER {
                                // target == KLEN_LAYER: descend-insert.
                                lf.version.unlock(false, false);
                                cell = old as *const RootCell;
                                cur.descend();
                                continue 'layer;
                            }
                            // Exact terminal: swap in a fresh value buffer.
                            let nb = self.new_value_buf(ctx, val);
                            lf.vals[slot].store(nb, Ordering::Release);
                            lf.version.unlock(false, false);
                            let old_payload = *(old as *const u64);
                            self.alloc.defer_free(ctx.tid, old, VALUE_BUF_BYTES);
                            return Some(old_payload);
                        }
                        Search::NotFound { pos } => {
                            if target == 8 && pos < lf.perm().len() {
                                // Descend into an existing layer as "".
                                let (k, kl, h) = Self::entry_at(lf, pos);
                                if k == ikey && kl == KLEN_LAYER {
                                    lf.version.unlock(false, false);
                                    cell = h as *const RootCell;
                                    cur.descend();
                                    continue 'layer;
                                }
                            }
                            if target == KLEN_LAYER {
                                // Terminal-8 occupying our slice? Convert it
                                // into a layer holding it as the empty suffix.
                                if pos > 0 {
                                    let ppos = pos - 1;
                                    let pslot = lf.perm().slot_at(ppos);
                                    let k = lf.ikeys[pslot].load(Ordering::Acquire);
                                    let kl = lf.klenx[pslot].load(Ordering::Acquire);
                                    if k == ikey && kl == 8 {
                                        let old = lf.vals[pslot].load(Ordering::Acquire);
                                        let holder = self.new_layer_with(ctx, 0, 0, old);
                                        lf.version.mark_dirty(INSERTING);
                                        lf.vals[pslot].store(holder, Ordering::Release);
                                        lf.klenx[pslot].store(KLEN_LAYER, Ordering::Release);
                                        lf.version.unlock(true, false);
                                        cell = holder as *const RootCell;
                                        cur.descend();
                                        continue 'layer;
                                    }
                                }
                                // Fresh sub-layer chain holding only this key.
                                let mut sub = cur;
                                sub.descend();
                                let holder = self.build_layer_chain(ctx, sub, val);
                                self.insert_entry(
                                    ctx, cell, lf_addr, pos, ikey, KLEN_LAYER, holder,
                                );
                                return None;
                            }
                            // Plain terminal insert.
                            let nb = self.new_value_buf(ctx, val);
                            self.insert_entry(ctx, cell, lf_addr, pos, ikey, target, nb);
                            return None;
                        }
                    }
                }
            }
        }
    }

    /// Whether the leaf's keys may have moved elsewhere since snapshot
    /// `before` (split or retirement) — insert/remove churn is fine, the
    /// leaf still covers the key range.
    fn moved_since(before: u64, now: u64) -> bool {
        const VSPLIT_MASK: u64 = !((1u64 << 36) - 1);
        (before ^ now) & (VSPLIT_MASK | version::DELETED) != 0
    }

    /// Allocates and fills a 32-byte value buffer.
    unsafe fn new_value_buf(&self, ctx: &TreeCtx, val: u64) -> u64 {
        unsafe {
            let buf = self.alloc.alloc(ctx.tid, VALUE_BUF_BYTES);
            (buf as *mut u64).write(val);
            buf
        }
    }

    /// Builds a chain of sub-layers so that `cur`'s remaining key becomes a
    /// terminal entry; returns the top holder-cell address.
    unsafe fn new_layer_with(&self, ctx: &TreeCtx, ikey: u64, klenx: u8, val: u64) -> u64 {
        unsafe {
            let leaf_addr = self.alloc.alloc(ctx.tid, NODE_BYTES);
            let lf = Leaf::init(leaf_addr, IS_ROOT);
            let mut perm = LeafPerm::empty();
            let slot = perm.insert_at(0);
            lf.ikeys[slot].store(ikey, Ordering::Relaxed);
            lf.klenx[slot].store(klenx, Ordering::Relaxed);
            lf.vals[slot].store(val, Ordering::Relaxed);
            lf.set_perm(perm);
            let holder = self.alloc.alloc(ctx.tid, ROOT_CELL_BYTES);
            (holder as *const AtomicU64)
                .as_ref()
                .unwrap()
                .store(leaf_addr, Ordering::Release);
            holder
        }
    }

    unsafe fn build_layer_chain(&self, ctx: &TreeCtx, cur: KeyCursor<'_>, val: u64) -> u64 {
        unsafe {
            if cur.is_terminal() {
                let buf = self.new_value_buf(ctx, val);
                self.new_layer_with(ctx, cur.ikey(), cur.klen(), buf)
            } else {
                let mut sub = cur;
                sub.descend();
                let inner = self.build_layer_chain(ctx, sub, val);
                self.new_layer_with(ctx, cur.ikey(), KLEN_LAYER, inner)
            }
        }
    }

    // ------------------------------------------------------------------
    // remove
    // ------------------------------------------------------------------

    unsafe fn remove_inner(&self, ctx: &TreeCtx, key: &[u8]) -> bool {
        unsafe {
            let mut cur = KeyCursor::new(key);
            let mut cell: *const RootCell = &*self.root;
            'layer: loop {
                let ikey = cur.ikey();
                let target = search_klenx(&cur);
                'retry: loop {
                    let (lf_addr, v) = Self::find_leaf(&*cell, ikey);
                    let lf = leaf_ref(lf_addr);
                    let lv = lf.version.lock();
                    if Self::moved_since(v, lv) {
                        lf.version.unlock(false, false);
                        continue 'retry;
                    }
                    match Self::search_leaf(lf, ikey, target) {
                        Search::Found {
                            pos, klenx, val, ..
                        } => {
                            if klenx == KLEN_LAYER {
                                lf.version.unlock(false, false);
                                cell = val as *const RootCell;
                                cur.descend();
                                continue 'layer;
                            }
                            lf.version.mark_dirty(INSERTING);
                            let mut perm = lf.perm();
                            perm.remove_at(pos);
                            lf.set_perm(perm);
                            lf.version.unlock(true, false);
                            self.alloc.defer_free(ctx.tid, val, VALUE_BUF_BYTES);
                            return true;
                        }
                        Search::NotFound { pos } => {
                            if target == 8 && pos < lf.perm().len() {
                                let (k, kl, h) = Self::entry_at(lf, pos);
                                if k == ikey && kl == KLEN_LAYER {
                                    lf.version.unlock(false, false);
                                    cell = h as *const RootCell;
                                    cur.descend();
                                    continue 'layer;
                                }
                            }
                            lf.version.unlock(false, false);
                            return false;
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // insert with split
    // ------------------------------------------------------------------

    /// Inserts `(ikey, klenx, val)` into the locked leaf `lf_addr` at
    /// sorted position `pos`, splitting if full. Consumes the leaf lock.
    #[allow(clippy::too_many_arguments)] // one flat hot-path call, no natural struct
    unsafe fn insert_entry(
        &self,
        ctx: &TreeCtx,
        cell: *const RootCell,
        lf_addr: u64,
        pos: usize,
        ikey: u64,
        klenx: u8,
        val: u64,
    ) {
        unsafe {
            let lf = leaf_ref(lf_addr);
            let mut perm = lf.perm();
            if !perm.is_full() {
                lf.version.mark_dirty(INSERTING);
                let slot = perm.insert_at(pos);
                lf.ikeys[slot].store(ikey, Ordering::Relaxed);
                lf.klenx[slot].store(klenx, Ordering::Relaxed);
                lf.vals[slot].store(val, Ordering::Relaxed);
                lf.set_perm(perm);
                lf.version.unlock(true, false);
                return;
            }

            // Split, then insert into whichever half now covers the key.
            let (right_addr, sep) = self.split_leaf(ctx, cell, lf_addr);
            let target_addr = if ikey < sep { lf_addr } else { right_addr };
            let target = leaf_ref(target_addr);
            let tpos = match Self::search_leaf(target, ikey, klenx) {
                Search::NotFound { pos } => pos,
                Search::Found { .. } => unreachable!("key appeared during split"),
            };
            let mut tperm = target.perm();
            target.version.mark_dirty(INSERTING);
            let slot = tperm.insert_at(tpos);
            target.ikeys[slot].store(ikey, Ordering::Relaxed);
            target.klenx[slot].store(klenx, Ordering::Relaxed);
            target.vals[slot].store(val, Ordering::Relaxed);
            target.set_perm(tperm);

            // Unlock both halves: the original leaf performed the split; the
            // target additionally performed the insert.
            let left_was_target = target_addr == lf_addr;
            leaf_ref(lf_addr)
                .version
                .unlock(left_was_target, /*did_split*/ true);
            leaf_ref(right_addr).version.unlock(!left_was_target, false);
        }
    }

    /// Splits the locked, full leaf: moves the upper entries to a fresh
    /// right sibling, links it, and pushes the separator into the parent
    /// while holding `SPLITTING`. Returns `(right_addr, separator)`; both
    /// halves remain locked.
    unsafe fn split_leaf(&self, ctx: &TreeCtx, cell: *const RootCell, lf_addr: u64) -> (u64, u64) {
        unsafe {
            let lf = leaf_ref(lf_addr);
            lf.version.mark_dirty(SPLITTING);
            let perm = lf.perm();
            let count = perm.len();
            debug_assert!(perm.is_full(), "only full leaves split");

            // Split position: nearest ikey boundary to the midpoint (equal
            // ikeys must never straddle nodes; interior keys are bare ikeys).
            let ikey_at = |p: usize| lf.ikeys[perm.slot_at(p)].load(Ordering::Relaxed);
            let mid = count / 2 + 1;
            let mut split_pos = None;
            for delta in 0..count {
                for cand in [mid.saturating_sub(delta), mid + delta] {
                    if cand >= 1 && cand < count && ikey_at(cand - 1) != ikey_at(cand) {
                        split_pos = Some(cand);
                        break;
                    }
                }
                if split_pos.is_some() {
                    break;
                }
            }
            let p = split_pos.expect("leaf with a single ikey cannot fill (≤ 10 variants)");

            // Build the right sibling (locked from birth so we can insert into
            // it before publishing an unlock).
            let r_addr = self.alloc.alloc(ctx.tid, NODE_BYTES);
            let r = Leaf::init(r_addr, 0);
            r.version.lock();
            let mut rperm = LeafPerm::empty();
            for (j, posn) in (p..count).enumerate() {
                let slot = perm.slot_at(posn);
                let rslot = rperm.insert_at(j);
                r.ikeys[rslot].store(lf.ikeys[slot].load(Ordering::Relaxed), Ordering::Relaxed);
                r.klenx[rslot].store(lf.klenx[slot].load(Ordering::Relaxed), Ordering::Relaxed);
                r.vals[rslot].store(lf.vals[slot].load(Ordering::Relaxed), Ordering::Relaxed);
            }
            r.set_perm(rperm);
            let sep = r.ikeys[rperm.slot_at(0)].load(Ordering::Relaxed);
            r.next
                .store(lf.next.load(Ordering::Acquire), Ordering::Relaxed);
            r.parent
                .store(lf.parent.load(Ordering::Acquire), Ordering::Relaxed);
            lf.next.store(r_addr, Ordering::Release);
            lf.set_perm(perm.truncated(p));

            self.insert_upward(ctx, cell, lf_addr, r_addr, sep);
            (r_addr, sep)
        }
    }

    /// Reads the parent field shared by both node kinds (same offset).
    unsafe fn parent_of<'a>(addr: u64) -> &'a AtomicU64 {
        unsafe {
            // Leaf.parent and Interior.parent both sit at byte offset 16.
            &*((addr + 16) as *const AtomicU64)
        }
    }

    /// Pushes `(sep, right)` above `left` (both locked by the caller, with
    /// `left` still SPLITTING — that ordering is what readers rely on).
    unsafe fn insert_upward(
        &self,
        ctx: &TreeCtx,
        cell: *const RootCell,
        left: u64,
        right: u64,
        sep: u64,
    ) {
        unsafe {
            loop {
                let p = Self::parent_of(left).load(Ordering::Acquire);
                if p == 0 {
                    // `left` was the layer root: grow a new interior root.
                    let nr_addr = self.alloc.alloc(ctx.tid, NODE_BYTES);
                    let nr = Interior::init(nr_addr, IS_ROOT);
                    nr.keys[0].store(sep, Ordering::Relaxed);
                    nr.children[0].store(left, Ordering::Relaxed);
                    nr.children[1].store(right, Ordering::Relaxed);
                    nr.nkeys.store(1, Ordering::Release);
                    Self::parent_of(left).store(nr_addr, Ordering::Release);
                    Self::parent_of(right).store(nr_addr, Ordering::Release);
                    // Publish the new root BEFORE demoting the old one so
                    // readers that observe !IS_ROOT always find the fresh cell.
                    (*cell).store(nr_addr);
                    version_of(left).set_flag(IS_ROOT, false);
                    return;
                }
                let pi = interior_ref(p);
                pi.version.lock();
                if Self::parent_of(left).load(Ordering::Acquire) != p {
                    // `left` migrated to a new parent while we locked.
                    pi.version.unlock(false, false);
                    continue;
                }
                if pi.len() < INT_WIDTH {
                    self.interior_insert(pi, sep, right);
                    pi.version.unlock(true, false);
                    return;
                }
                // Parent full: split it (recursively), then insert into the
                // proper half.
                let (pr_addr, psep) = self.split_interior(ctx, cell, p);
                let target = if sep < psep { p } else { pr_addr };
                let ti = interior_ref(target);
                self.interior_insert(ti, sep, right);
                interior_ref(p).version.unlock(target == p, true);
                interior_ref(pr_addr)
                    .version
                    .unlock(target == pr_addr, false);
                return;
            }
        }
    }

    /// Inserts `(sep, right)` into a locked, non-full interior node.
    unsafe fn interior_insert(&self, pi: &Interior, sep: u64, right: u64) {
        unsafe {
            pi.version.mark_dirty(INSERTING);
            let n = pi.len();
            let mut idx = 0;
            while idx < n && pi.keys[idx].load(Ordering::Relaxed) < sep {
                idx += 1;
            }
            debug_assert!(idx >= n || pi.keys[idx].load(Ordering::Relaxed) != sep);
            let mut j = n;
            while j > idx {
                pi.keys[j].store(pi.keys[j - 1].load(Ordering::Relaxed), Ordering::Relaxed);
                pi.children[j + 1].store(pi.children[j].load(Ordering::Relaxed), Ordering::Relaxed);
                j -= 1;
            }
            pi.keys[idx].store(sep, Ordering::Relaxed);
            pi.children[idx + 1].store(right, Ordering::Relaxed);
            pi.nkeys.store(n as u64 + 1, Ordering::Release);
            Self::parent_of(right).store(pi as *const Interior as u64, Ordering::Release);
        }
    }

    /// Splits the locked, full interior node at `p_addr`; returns the new
    /// right node (locked) and the promoted separator. Recursively updates
    /// ancestors while holding `SPLITTING`.
    unsafe fn split_interior(
        &self,
        ctx: &TreeCtx,
        cell: *const RootCell,
        p_addr: u64,
    ) -> (u64, u64) {
        unsafe {
            let pi = interior_ref(p_addr);
            pi.version.mark_dirty(SPLITTING);
            let n = pi.len();
            debug_assert_eq!(n, INT_WIDTH);
            let mid = n / 2; // promote keys[mid]
            let psep = pi.keys[mid].load(Ordering::Relaxed);

            let r_addr = self.alloc.alloc(ctx.tid, NODE_BYTES);
            let r = Interior::init(r_addr, 0);
            r.version.lock();
            let rcount = n - mid - 1;
            for j in 0..rcount {
                r.keys[j].store(
                    pi.keys[mid + 1 + j].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
            }
            for j in 0..=rcount {
                let child = pi.children[mid + 1 + j].load(Ordering::Relaxed);
                r.children[j].store(child, Ordering::Relaxed);
                Self::parent_of(child).store(r_addr, Ordering::Release);
            }
            r.nkeys.store(rcount as u64, Ordering::Release);
            r.parent
                .store(pi.parent.load(Ordering::Acquire), Ordering::Relaxed);
            pi.nkeys.store(mid as u64, Ordering::Release);

            self.insert_upward(ctx, cell, p_addr, r_addr, psep);
            (r_addr, psep)
        }
    }

    // ------------------------------------------------------------------
    // scan
    // ------------------------------------------------------------------

    /// Scans the layer at `cell`. `start`: position bound for this layer
    /// (None = from the beginning). Returns `false` once `remaining` hits
    /// zero.
    unsafe fn scan_layer(
        &self,
        cell: &RootCell,
        start: Option<KeyCursor<'_>>,
        prefix: &mut Vec<u8>,
        remaining: &mut usize,
        f: &mut dyn FnMut(&[u8], u64),
    ) -> bool {
        unsafe {
            let start_ikey = start.map(|c| c.ikey()).unwrap_or(0);
            let (mut lf_addr, _) = Self::find_leaf(cell, start_ikey);
            let mut first = true;
            loop {
                let lf = leaf_ref(lf_addr);
                // Snapshot the leaf under version validation.
                let mut entries: Vec<(u64, u8, u64)> = Vec::with_capacity(16);
                let next;
                loop {
                    entries.clear();
                    let v = lf.version.stable();
                    let perm = lf.perm();
                    for pos in 0..perm.len() {
                        let slot = perm.slot_at(pos);
                        entries.push((
                            lf.ikeys[slot].load(Ordering::Acquire),
                            lf.klenx[slot].load(Ordering::Acquire),
                            lf.vals[slot].load(Ordering::Acquire),
                        ));
                    }
                    let n = lf.next.load(Ordering::Acquire);
                    if !version::changed(v, lf.version.load()) {
                        next = n;
                        break;
                    }
                    // On a split, restart this leaf (entries may have moved
                    // right; the `next` hop will still reach them).
                }
                for &(k, kl, val) in &entries {
                    if first {
                        if let Some(sc) = start {
                            let skl = search_klenx(&sc);
                            match entry_cmp(k, kl, sc.ikey(), skl) {
                                std::cmp::Ordering::Less => continue,
                                std::cmp::Ordering::Equal
                                    if kl == KLEN_LAYER && !sc.is_terminal() =>
                                {
                                    // The start key descends into this layer.
                                    let mut sub = sc;
                                    sub.descend();
                                    prefix.extend_from_slice(&k.to_be_bytes());
                                    let go = self.scan_layer(
                                        &*(val as *const RootCell),
                                        Some(sub),
                                        prefix,
                                        remaining,
                                        f,
                                    );
                                    prefix.truncate(prefix.len() - 8);
                                    if !go {
                                        return false;
                                    }
                                    continue;
                                }
                                _ => {}
                            }
                        }
                    }
                    if kl == KLEN_LAYER {
                        prefix.extend_from_slice(&k.to_be_bytes());
                        let go =
                            self.scan_layer(&*(val as *const RootCell), None, prefix, remaining, f);
                        prefix.truncate(prefix.len() - 8);
                        if !go {
                            return false;
                        }
                    } else {
                        let keylen = prefix.len() + kl as usize;
                        prefix.extend_from_slice(&ikey_bytes(k, kl));
                        f(&prefix[..keylen], *(val as *const u64));
                        prefix.truncate(keylen - kl as usize);
                        *remaining -= 1;
                        if *remaining == 0 {
                            return false;
                        }
                    }
                }
                first = false;
                if next == 0 {
                    return true;
                }
                lf_addr = next;
            }
        }
    }

    // ------------------------------------------------------------------
    // teardown
    // ------------------------------------------------------------------

    unsafe fn destroy_subtree(&self, addr: u64) {
        unsafe {
            if version_of(addr).is_leaf() {
                let lf = leaf_ref(addr);
                for slot in lf.perm().occupied() {
                    let kl = lf.klenx[slot].load(Ordering::Relaxed);
                    let val = lf.vals[slot].load(Ordering::Relaxed);
                    if kl == KLEN_LAYER {
                        let sub = (*(val as *const RootCell)).load();
                        self.destroy_subtree(sub);
                        self.alloc.free_now(val, ROOT_CELL_BYTES);
                    } else {
                        self.alloc.free_now(val, VALUE_BUF_BYTES);
                    }
                }
            } else {
                let int = interior_ref(addr);
                for i in 0..=int.len() {
                    let c = int.children[i].load(Ordering::Relaxed);
                    if c != 0 {
                        self.destroy_subtree(c);
                    }
                }
            }
            self.alloc.free_now(addr, NODE_BYTES);
        }
    }
}

impl Drop for Masstree {
    fn drop(&mut self) {
        // Exclusive access (&mut): walk and free everything, then run one
        // boundary drain so deferred frees release too.
        // SAFETY: no concurrent users can exist during Drop.
        unsafe { self.destroy_subtree(self.root.load()) };
        self.alloc.on_epoch_boundary();
    }
}

impl std::fmt::Debug for Masstree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Masstree")
            .field("alloc", &self.alloc)
            .finish()
    }
}
