//! Key slicing for the trie-of-B+trees structure (§2.2).
//!
//! Masstree indexes arbitrary byte strings by consuming them 8 bytes at a
//! time: each trie *layer* is a B+tree keyed by one 64-bit big-endian
//! slice (`ikey`). Within a layer an entry is either **terminal** — the key
//! ends within this slice, `keylenx` = remaining length 0..=8 — or a
//! **layer pointer** (`keylenx` = [`KLEN_LAYER`]) leading to the next trie
//! layer for keys sharing this slice prefix.
//!
//! Entries sort by `(ikey, keylenx)`: big-endian slicing makes the `u64`
//! comparison agree with lexicographic byte order, shorter keys sort before
//! longer ones with the same padded slice, and a layer (holding keys strictly
//! longer than the slice) sorts after every terminal variant.
//!
//! Design note (DESIGN.md): keys longer than 8 bytes *always* descend into
//! a sub-layer; we do not store inline suffixes. At most one of
//! {terminal-8, layer} exists per `ikey` — inserting an overlong key onto a
//! terminal-8 entry converts it into a layer holding the old key as the
//! empty suffix.

/// `keylenx` marker for a slot that points at the next trie layer.
pub const KLEN_LAYER: u8 = 255;

/// A cursor over a key being consumed layer by layer.
///
/// # Example
///
/// ```
/// use incll_masstree::key::KeyCursor;
///
/// let mut k = KeyCursor::new(b"abcdefghij"); // 10 bytes: two layers
/// assert_eq!(k.ikey(), u64::from_be_bytes(*b"abcdefgh"));
/// assert!(!k.is_terminal());
/// k.descend();
/// assert_eq!(k.klen(), 2);
/// assert!(k.is_terminal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyCursor<'a> {
    full: &'a [u8],
    /// Byte offset of the current layer's slice.
    offset: usize,
}

impl<'a> KeyCursor<'a> {
    /// Starts a cursor at layer 0.
    pub fn new(key: &'a [u8]) -> Self {
        KeyCursor {
            full: key,
            offset: 0,
        }
    }

    /// The full key bytes.
    pub fn full_key(&self) -> &'a [u8] {
        self.full
    }

    /// Remaining bytes at the current layer (including this slice).
    #[inline]
    pub fn remaining(&self) -> usize {
        self.full.len().saturating_sub(self.offset)
    }

    /// The current layer's 8-byte big-endian slice, zero-padded.
    #[inline]
    pub fn ikey(&self) -> u64 {
        ikey_of(&self.full[self.offset.min(self.full.len())..])
    }

    /// The `keylenx` this key would have as a *terminal* entry in the
    /// current layer: `min(remaining, 8)` — meaningful only when
    /// [`KeyCursor::is_terminal`].
    #[inline]
    pub fn klen(&self) -> u8 {
        self.remaining().min(8) as u8
    }

    /// Whether the key ends within the current layer (remaining ≤ 8).
    #[inline]
    pub fn is_terminal(&self) -> bool {
        self.remaining() <= 8
    }

    /// Advances to the next layer (consumes 8 bytes).
    pub fn descend(&mut self) {
        self.offset += 8;
    }

    /// Bytes already consumed (the prefix of all keys in the current
    /// layer).
    pub fn prefix(&self) -> &'a [u8] {
        &self.full[..self.offset.min(self.full.len())]
    }
}

/// Builds the 8-byte big-endian slice of `bytes` (zero-padded).
#[inline]
pub fn ikey_of(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// Reconstructs the terminal bytes of an entry: the first `klen` bytes of
/// its `ikey` (big-endian).
pub fn ikey_bytes(ikey: u64, klen: u8) -> Vec<u8> {
    ikey.to_be_bytes()[..klen as usize].to_vec()
}

/// Compares two layer entries by `(ikey, keylenx)` with the layer marker
/// ordered after all terminal lengths.
#[inline]
pub fn entry_cmp(a_ikey: u64, a_klenx: u8, b_ikey: u64, b_klenx: u8) -> std::cmp::Ordering {
    let rank = |k: u8| if k == KLEN_LAYER { 9u8 } else { k };
    (a_ikey, rank(a_klenx)).cmp(&(b_ikey, rank(b_klenx)))
}

/// The `keylenx` a search key targets in the current layer: its terminal
/// length when the key ends here, otherwise the layer marker.
#[inline]
pub fn search_klenx(cur: &KeyCursor<'_>) -> u8 {
    if cur.is_terminal() {
        cur.klen()
    } else {
        KLEN_LAYER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn ikey_is_big_endian_lexicographic() {
        assert!(ikey_of(b"a") < ikey_of(b"b"));
        assert!(ikey_of(b"ab") < ikey_of(b"b"));
        assert!(ikey_of(b"abcdefgh") < ikey_of(b"abcdefgi"));
        // Padding: "ab" and "ab\0" share a slice; klen disambiguates.
        assert_eq!(ikey_of(b"ab"), ikey_of(b"ab\0"));
    }

    #[test]
    fn cursor_walks_layers() {
        let mut c = KeyCursor::new(b"0123456789abcdef_tail");
        assert_eq!(c.remaining(), 21);
        assert!(!c.is_terminal());
        assert_eq!(c.prefix(), b"");
        c.descend();
        assert_eq!(c.ikey(), ikey_of(b"89abcdef"));
        assert_eq!(c.prefix(), b"01234567");
        c.descend();
        assert!(c.is_terminal());
        assert_eq!(c.klen(), 5);
    }

    #[test]
    fn empty_key_is_terminal_len_zero() {
        let c = KeyCursor::new(b"");
        assert!(c.is_terminal());
        assert_eq!(c.klen(), 0);
        assert_eq!(c.ikey(), 0);
    }

    #[test]
    fn exactly_eight_bytes_is_terminal() {
        let c = KeyCursor::new(b"abcdefgh");
        assert!(c.is_terminal());
        assert_eq!(c.klen(), 8);
        assert_eq!(search_klenx(&c), 8);
    }

    #[test]
    fn nine_bytes_targets_layer() {
        let c = KeyCursor::new(b"abcdefghi");
        assert!(!c.is_terminal());
        assert_eq!(search_klenx(&c), KLEN_LAYER);
    }

    #[test]
    fn entry_order_shorter_first_layer_last() {
        let ik = ikey_of(b"ab");
        assert_eq!(entry_cmp(ik, 2, ik, 3), Ordering::Less);
        assert_eq!(entry_cmp(ik, 8, ik, KLEN_LAYER), Ordering::Less);
        assert_eq!(entry_cmp(ik, KLEN_LAYER, ik, KLEN_LAYER), Ordering::Equal);
        // Different ikeys dominate.
        assert_eq!(
            entry_cmp(ikey_of(b"aa"), KLEN_LAYER, ikey_of(b"ab"), 0),
            Ordering::Less
        );
    }

    #[test]
    fn ikey_bytes_roundtrip() {
        let ik = ikey_of(b"xyz");
        assert_eq!(ikey_bytes(ik, 3), b"xyz");
        assert_eq!(ikey_bytes(ik, 0), b"");
        let ik8 = ikey_of(b"abcdefgh");
        assert_eq!(ikey_bytes(ik8, 8), b"abcdefgh");
    }

    #[test]
    fn lexicographic_agreement_with_layers() {
        // For any two keys, comparing their layered (ikey, klenx) tuples
        // layer by layer agrees with byte-wise lexicographic order.
        let keys: Vec<&[u8]> = vec![
            b"",
            b"a",
            b"a\0",
            b"ab",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgh\0",
            b"abcdefghij",
            b"b",
        ];
        for x in &keys {
            for y in &keys {
                let expect = x.cmp(y);
                let got = layered_cmp(x, y);
                assert_eq!(got, expect, "{x:?} vs {y:?}");
            }
        }
    }

    fn layered_cmp(x: &[u8], y: &[u8]) -> Ordering {
        let mut cx = KeyCursor::new(x);
        let mut cy = KeyCursor::new(y);
        loop {
            let ord = entry_cmp(cx.ikey(), search_klenx(&cx), cy.ikey(), search_klenx(&cy));
            if ord != Ordering::Equal {
                return ord;
            }
            if cx.is_terminal() && cy.is_terminal() {
                return Ordering::Equal;
            }
            cx.descend();
            cy.descend();
        }
    }
}
