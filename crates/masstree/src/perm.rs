//! Masstree's permutation word (§2.2).
//!
//! A leaf stores keys and values in *unsorted* array slots; a single 64-bit
//! word — the permutation — records which slots are occupied and in what
//! sorted order. Inserting or removing a key is then a single atomic store
//! of the new permutation, which is exactly the property the paper's
//! `InCLLp` exploits: logging that one word suffices to undo any sequence
//! of pure insertions or pure deletions in an epoch (§4.1.1).
//!
//! Layout (kpermuter-style): the low nibble is the occupied count; nibble
//! `1 + i` holds the slot index at sorted position `i`. Nibbles past the
//! count hold the free slots, so allocating a slot for insertion is "take
//! the nibble at position `count`".
//!
//! The word supports widths up to 15 (15 index nibbles + the count nibble).

/// A permutation over `W` slots (`W` ≤ 15).
///
/// # Example
///
/// ```
/// use incll_masstree::perm::Permutation;
///
/// let mut p = Permutation::<15>::empty();
/// let slot = p.insert_at(0); // allocate a slot for sorted position 0
/// assert_eq!(p.len(), 1);
/// assert_eq!(p.slot_at(0), slot);
/// p.remove_at(0);
/// assert_eq!(p.len(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Permutation<const W: usize>(u64);

impl<const W: usize> Permutation<W> {
    /// An empty permutation: count 0, free slots in ascending order.
    pub fn empty() -> Self {
        assert!(W <= 15, "permutation supports at most 15 slots");
        let mut word = 0u64;
        for i in 0..W {
            word |= (i as u64) << (4 + 4 * i);
        }
        Permutation(word)
    }

    /// Wraps a raw permutation word (e.g. read from a node).
    #[inline]
    pub const fn from_raw(word: u64) -> Self {
        Permutation(word)
    }

    /// The raw 64-bit word.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(self) -> usize {
        (self.0 & 0xF) as usize
    }

    /// Whether no slot is occupied.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Whether all `W` slots are occupied.
    #[inline]
    pub fn is_full(self) -> bool {
        self.len() == W
    }

    /// The slot index stored at sorted position `pos`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `pos >= W`.
    #[inline]
    pub fn slot_at(self, pos: usize) -> usize {
        debug_assert!(pos < W);
        ((self.0 >> (4 + 4 * pos)) & 0xF) as usize
    }

    fn set_slot_at(&mut self, pos: usize, slot: usize) {
        let shift = 4 + 4 * pos;
        self.0 = (self.0 & !(0xF << shift)) | ((slot as u64) << shift);
    }

    /// Allocates a free slot and inserts it at sorted position `pos`,
    /// returning the slot index. The caller writes the key/value into the
    /// slot *before* publishing the new permutation.
    ///
    /// # Panics
    ///
    /// Panics if the permutation is full or `pos > len()`.
    #[must_use = "the returned slot must be filled before publishing"]
    pub fn insert_at(&mut self, pos: usize) -> usize {
        let count = self.len();
        assert!(count < W, "insert into full permutation");
        assert!(pos <= count, "insert position {pos} beyond count {count}");
        let free = self.slot_at(count); // first free slot lives at position `count`
        let mut i = count;
        while i > pos {
            let v = self.slot_at(i - 1);
            self.set_slot_at(i, v);
            i -= 1;
        }
        self.set_slot_at(pos, free);
        self.0 = (self.0 & !0xF) | (count as u64 + 1);
        free
    }

    /// Removes the entry at sorted position `pos`; its slot returns to the
    /// free region.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn remove_at(&mut self, pos: usize) {
        let count = self.len();
        assert!(pos < count, "remove position {pos} beyond count {count}");
        let slot = self.slot_at(pos);
        for i in pos..count - 1 {
            let v = self.slot_at(i + 1);
            self.set_slot_at(i, v);
        }
        // Recycle the slot at the front of the free region.
        self.set_slot_at(count - 1, slot);
        self.0 = (self.0 & !0xF) | (count as u64 - 1);
    }

    /// Iterator over occupied slot indices in sorted order.
    pub fn occupied(self) -> impl Iterator<Item = usize> {
        (0..self.len()).map(move |i| self.slot_at(i))
    }

    /// Returns a permutation keeping only the first `keep` sorted
    /// positions; the dropped entries' slots return to the free region.
    /// Used when a split moves the upper entries to a new node.
    ///
    /// # Panics
    ///
    /// Panics if `keep > len()`.
    #[must_use]
    pub fn truncated(self, keep: usize) -> Self {
        let count = self.len();
        assert!(keep <= count, "cannot keep {keep} of {count}");
        let mut out = self;
        // Occupied prefix stays; everything else (dropped + already free)
        // goes to the free region in stable order.
        for i in keep..W {
            out.set_slot_at(i, self.slot_at(i));
        }
        out.0 = (out.0 & !0xF) | keep as u64;
        out
    }

    /// Checks the structural invariant: all `W` nibbles form a permutation
    /// of `0..W`. Used by tests and debug assertions.
    pub fn is_valid(self) -> bool {
        if self.len() > W {
            return false;
        }
        let mut seen = [false; 16];
        for i in 0..W {
            let s = self.slot_at(i);
            if s >= W || seen[s] {
                return false;
            }
            seen[s] = true;
        }
        true
    }
}

impl<const W: usize> std::fmt::Debug for Permutation<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Perm[{}](", self.len())?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.slot_at(i))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P15 = Permutation<15>;
    type P14 = Permutation<14>;

    #[test]
    fn empty_has_ascending_free_slots() {
        let p = P15::empty();
        assert_eq!(p.len(), 0);
        assert!(p.is_valid());
        // First insertion takes slot 0, second slot 1, ...
        let mut q = p;
        assert_eq!(q.insert_at(0), 0);
        assert_eq!(q.insert_at(1), 1);
        assert_eq!(q.insert_at(0), 2);
        assert!(q.is_valid());
    }

    #[test]
    fn insert_shifts_positions() {
        let mut p = P15::empty();
        let a = p.insert_at(0);
        let b = p.insert_at(0); // inserted before a
        assert_eq!(p.slot_at(0), b);
        assert_eq!(p.slot_at(1), a);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn remove_returns_slot_to_free_pool() {
        let mut p = P15::empty();
        let a = p.insert_at(0);
        let _b = p.insert_at(1);
        p.remove_at(0);
        assert_eq!(p.len(), 1);
        assert!(p.is_valid());
        // The freed slot is immediately reusable.
        let c = p.insert_at(1);
        assert_eq!(c, a);
    }

    #[test]
    fn fill_and_empty_width_14() {
        let mut p = P14::empty();
        let mut slots = Vec::new();
        for i in 0..14 {
            slots.push(p.insert_at(i));
        }
        assert!(p.is_full());
        assert!(p.is_valid());
        let unique: std::collections::HashSet<_> = slots.iter().collect();
        assert_eq!(unique.len(), 14);
        for _ in 0..14 {
            p.remove_at(0);
        }
        assert!(p.is_empty());
        assert!(p.is_valid());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_into_full_panics() {
        let mut p = P14::empty();
        for i in 0..14 {
            let _ = p.insert_at(i);
        }
        let _ = p.insert_at(0);
    }

    #[test]
    #[should_panic(expected = "beyond count")]
    fn remove_past_count_panics() {
        let mut p = P15::empty();
        let _ = p.insert_at(0);
        p.remove_at(1);
    }

    #[test]
    fn raw_roundtrip() {
        let mut p = P15::empty();
        let _ = p.insert_at(0);
        let q = P15::from_raw(p.raw());
        assert_eq!(p, q);
    }

    #[test]
    fn occupied_iterates_in_order() {
        let mut p = P15::empty();
        let a = p.insert_at(0);
        let b = p.insert_at(1);
        let c = p.insert_at(1);
        assert_eq!(p.occupied().collect::<Vec<_>>(), vec![a, c, b]);
    }

    #[test]
    fn random_ops_preserve_invariant() {
        // Deterministic pseudo-random insert/remove churn.
        let mut p = P15::empty();
        let mut model: Vec<usize> = Vec::new(); // model of slots by position
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (x >> 33) as usize;
            if p.is_full() || (!p.is_empty() && r.is_multiple_of(2)) {
                let pos = r % p.len();
                p.remove_at(pos);
                model.remove(pos);
            } else {
                let pos = r % (p.len() + 1);
                let slot = p.insert_at(pos);
                model.insert(pos, slot);
            }
            assert!(p.is_valid());
            assert_eq!(p.occupied().collect::<Vec<_>>(), model);
        }
    }
}
