//! The durable Masstree: fine-grain checkpointing + in-cache-line logging.
//!
//! Structure and concurrency protocol mirror the transient tree
//! (`incll_masstree::tree`); every *durable mutation* additionally runs the
//! paper's logging discipline:
//!
//! * permutation changes (insert/remove) are guarded by `InCLLp`
//!   (Listing 3) — one same-cache-line log write, no flush;
//! * value updates are guarded by `ValInCLL1/2` (§4.1.3) — ditto;
//! * splits, layer conversions, root swings and every interior-node
//!   modification go through the external undo log (§4.2): entry → `clwb`
//!   → `sfence` → mutate;
//! * a leaf captured in the external log needs no further logging for the
//!   rest of the epoch (`logged` bit).
//!
//! With `incll_enabled == false` the tree runs in the paper's **LOGGING**
//! configuration (Figs. 7–8): the in-line logs are bypassed and every
//! node's first modification per epoch external-logs it.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::Mutex;

use incll_epoch::{EpochManager, EpochOptions, Guard, ThreadHandle};
use incll_extlog::ExtLog;
use incll_masstree::key::{entry_cmp, ikey_bytes, search_klenx, KeyCursor, KLEN_LAYER};
use incll_palloc::PAlloc;
use incll_pmem::{superblock, FlushDomainScope, PArena};

use crate::error::{Error, MAX_VALUE_BYTES};
use crate::layout::{
    incll_for, meta, off_ikey, off_int_child, off_int_key, off_val, val_incll, DPerm, INT_WIDTH,
    LEAF_WIDTH, NODE_BYTES, OFF_INCLL1, OFF_INCLL2, OFF_INT_NKEYS, OFF_KLENX, OFF_META, OFF_NEXT,
    OFF_PARENT, OFF_PERM, OFF_PERM_INCLL,
};
use crate::pversion as pv;

/// Minimum durable value-buffer size (paper §6: 32-byte buffers).
///
/// Every value buffer is length-prefixed (`[len: u64][payload bytes]`) and
/// allocated from the size class fitting `8 + len`, but never smaller than
/// this — so the paper's fixed 32-byte-buffer regime is exactly what small
/// (e.g. `u64`) values get.
pub const VALUE_BUF_BYTES: usize = 32;
/// Layer root-holder cell size.
const HOLDER_BYTES: usize = 16;
/// Recovery-lock array size (transient; hashed by node offset, §4.3).
pub(crate) const REC_LOCKS: usize = 1024;

/// Construction options for [`DurableMasstree`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Worker-thread slots (allocator lists + log buffers are per-thread).
    pub threads: usize,
    /// External-log capacity per thread, in bytes. Size for the worst-case
    /// logged nodes per epoch (§6.3 measures 84 K nodes ≈ 30 MB on a
    /// write-heavy 1 M-key tree).
    pub log_bytes_per_thread: usize,
    /// `false` selects the paper's LOGGING ablation: external log only.
    pub incll_enabled: bool,
    /// Keyspace shards: independent tree roots, one epoch domain each
    /// (power of two, `1..=`[`superblock::MAX_SHARDS`]). Fixed at create;
    /// opens must pass the created value.
    pub shards: usize,
    /// Worker threads [`DurableMasstree::open`] spreads per-shard recovery
    /// over (clamped to the shard count; 1 = sequential replay). Recovered
    /// state is byte-identical at every worker count — shards recover on
    /// disjoint state — so this is purely a restart-latency knob.
    ///
    /// Defaults to the `INCLL_RECOVERY_THREADS` environment variable when
    /// set (so a whole test suite can be rerun under parallel recovery),
    /// else 1.
    pub recovery_threads: usize,
    /// External-log batched-persistence threshold in bytes; 0 (the
    /// default) keeps the paper's per-entry `clwb`+`sfence` protocol
    /// byte-for-byte. With a nonzero value, batch *intent* entries stage
    /// and one flush+fence covers each `persistence_granularity` bytes —
    /// or less, at a batch commit (before its record) and at every
    /// checkpoint boundary. Undo pre-images are **never** deferred: they
    /// seal before the modification they guard, at every granularity, so
    /// crash semantics are unchanged. A runtime knob only: no on-media
    /// layout difference at any value.
    pub persistence_granularity: usize,
}

/// The default for [`DurableConfig::recovery_threads`]: the
/// `INCLL_RECOVERY_THREADS` environment override, or 1 (sequential).
pub(crate) fn default_recovery_threads() -> usize {
    std::env::var("INCLL_RECOVERY_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            threads: 8,
            log_bytes_per_thread: 16 << 20,
            incll_enabled: true,
            shards: 1,
            recovery_threads: default_recovery_threads(),
            persistence_granularity: 0,
        }
    }
}

/// Checks that `shards` is a power of two in `1..=MAX_SHARDS`.
pub(crate) fn validate_shard_count(shards: usize) -> Result<(), Error> {
    if shards == 0 || shards > superblock::MAX_SHARDS || !shards.is_power_of_two() {
        return Err(Error::InvalidShardCount {
            requested: shards,
            max: superblock::MAX_SHARDS,
        });
    }
    Ok(())
}

/// Per-thread operation context.
pub struct DCtx {
    handle: ThreadHandle,
    tid: usize,
}

impl DCtx {
    /// The thread id (allocator/log slot).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Pins shard 0's epoch domain (exposed for multi-op transactions in
    /// examples/benchmarks). On a sharded store each shard advances
    /// independently; pin the shard you operate in with
    /// [`DCtx::pin_shard`].
    pub fn pin(&self) -> Guard<'_> {
        self.handle.pin()
    }

    /// Pins shard `shard`'s epoch domain: that shard cannot checkpoint
    /// while the guard lives.
    pub fn pin_shard(&self, shard: usize) -> Guard<'_> {
        self.handle.pin_domain(shard)
    }

    /// Mutating pin on one shard (marks the domain dirty): the batch
    /// fast path holds one of these across every op of a single-shard
    /// batch so all of them land in one epoch.
    pub(crate) fn pin_shard_mut(&self, shard: usize) -> Guard<'_> {
        self.handle.pin_domain_mut(shard)
    }

    /// Mutating pins on every shard named by `mask`, taken in ascending
    /// shard order (the batch-commit pin set; see `crate::batch`).
    pub(crate) fn pin_shards_mut(&self, mask: u64) -> Vec<Guard<'_>> {
        self.handle.pin_domains_mut(mask)
    }
}

impl std::fmt::Debug for DCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DCtx").field("tid", &self.tid).finish()
    }
}

/// The epoch pin backing a borrowed read ([`ValueRef`]).
///
/// While a `ReadGuard` lives, its shard's epoch domain cannot advance, so
/// epoch-based reclamation cannot recycle any buffer the reader still
/// holds a [`ValueRef`] into. It is a *read* pin
/// ([`ThreadHandle::pin_domain_read`]): it writes no log-buffer or arena
/// byte and never marks the domain dirty, so holding one briefly is free
/// — but holding one across long pauses delays that one shard's
/// checkpoints, exactly like an open transaction. Drop it (by dropping
/// the `ValueRef`) before blocking.
pub struct ReadGuard<'s> {
    guard: Guard<'s>,
    shard: usize,
}

impl ReadGuard<'_> {
    /// The epoch pinned by this guard.
    pub fn epoch(&self) -> u64 {
        self.guard.epoch()
    }

    /// The shard (epoch domain) this guard pins.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl std::fmt::Debug for ReadGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadGuard")
            .field("shard", &self.shard)
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// A borrowed, zero-copy view of one value's durable bytes, returned by
/// [`DurableMasstree::get_ref`] / [`crate::Store::get_ref`].
///
/// Dereferences to the payload byte slice **in place** — no allocation,
/// no copy; the backing [`ReadGuard`] keeps the shard's epoch open so the
/// buffer cannot be recycled while the view lives.
///
/// # What a `ValueRef` may observe
///
/// The bytes were the key's current value at lookup time (validated under
/// the leaf's version check). A *concurrent overwrite or remove* of the
/// same key does not disturb them: puts swap in a fresh buffer and only
/// pass the old one to the allocator, whose free path rewrites just the
/// 16-byte object *header* in front of the payload — never the payload
/// itself — and cannot recycle the buffer before an epoch boundary this
/// pin blocks. So a held `ValueRef` always reads an intact, complete
/// value (possibly superseded), never a torn one.
///
/// [`ValueRef::is_stale`] detects supersession: it re-reads the buffer's
/// header words and compares them against the snapshot taken at lookup.
/// Any cross-epoch free rewrites both words (bumping the §5.1 ABA
/// counter) and is always detected; a same-epoch free is detected on a
/// best-effort basis (see [`PAlloc::payload_header_words`]). Either way
/// the payload bytes remain the intact old value.
pub struct ValueRef<'s> {
    arena: &'s PArena,
    alloc: &'s PAlloc,
    /// Offset of the `[len: u64][payload]` value buffer.
    buf: u64,
    len: usize,
    /// Header-word snapshot taken at lookup, for [`ValueRef::is_stale`].
    hdr: (u64, u64),
    pin: ReadGuard<'s>,
}

impl<'s> ValueRef<'s> {
    /// Payload length in bytes.
    #[allow(clippy::len_without_is_empty)] // is_empty comes via Deref<[u8]>
    pub fn len(&self) -> usize {
        self.len
    }

    /// Decodes the payload as the `u64` convenience encoding
    /// (little-endian, as written by [`DurableMasstree::put`] /
    /// [`crate::Store::put_u64`]). Meaningful only for 8-byte values.
    pub fn as_u64(&self) -> u64 {
        u64::from_le(self.arena.pread_u64(self.buf + 8))
    }

    /// Copies the payload out (the escape hatch back to owned data; this
    /// is exactly what the allocating `get` does).
    pub fn to_vec(&self) -> Vec<u8> {
        (**self).to_vec()
    }

    /// Whether the value has been superseded (overwritten or removed)
    /// since lookup, detected by re-reading the buffer's allocator header
    /// words against the snapshot taken at lookup. The payload bytes stay
    /// the intact old value either way — this is a freshness signal, not
    /// a validity one. Detection is exact across epoch boundaries and
    /// best-effort within one epoch (see the type docs).
    pub fn is_stale(&self) -> bool {
        self.alloc.payload_header_words(self.buf) != self.hdr
    }

    /// The epoch this view is pinned in.
    pub fn epoch(&self) -> u64 {
        self.pin.epoch()
    }

    /// The shard the value lives in.
    pub fn shard(&self) -> usize {
        self.pin.shard()
    }

    /// The allocator size class (index into
    /// [`incll_palloc::CLASS_SIZES`]) serving this value's buffer —
    /// derived from the validated length prefix, the same arithmetic the
    /// free path uses.
    pub fn size_class(&self) -> usize {
        incll_palloc::class_for(value_buf_size(self.len)).expect("value_buf_size is never zero")
    }
}

impl std::ops::Deref for ValueRef<'_> {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        // SAFETY: `buf + 8 .. buf + 8 + len` lies inside the arena
        // mapping (the length prefix was read under the leaf version
        // check and bounds are debug-asserted by `ptr_at`), and the held
        // epoch pin keeps the allocator from recycling the buffer, so the
        // bytes stay valid and unmutated for the borrow's lifetime.
        unsafe { std::slice::from_raw_parts(self.arena.ptr_at(self.buf + 8), self.len) }
    }
}

impl AsRef<[u8]> for ValueRef<'_> {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for ValueRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueRef")
            .field("len", &self.len)
            .field("shard", &self.pin.shard)
            .field("epoch", &self.epoch())
            .field("stale", &self.is_stale())
            .finish()
    }
}

pub(crate) struct Inner {
    pub(crate) arena: PArena,
    pub(crate) mgr: EpochManager,
    pub(crate) alloc: PAlloc,
    pub(crate) log: ExtLog,
    /// Durable failed-epoch set **per shard**, loaded at open (empty on a
    /// fresh create). Shard `s`'s nodes are only ever rolled back against
    /// `failed[s]` — each shard crashes and recovers on its own timeline.
    pub(crate) failed: Vec<Vec<u64>>,
    /// First epoch of each shard's current execution; nodes stamped older
    /// than their shard's entry need lazy recovery.
    pub(crate) exec_epochs: Vec<u64>,
    pub(crate) rec_locks: Vec<Mutex<()>>,
    pub(crate) incll_enabled: bool,
    /// Keyspace shards sharing this state (allocator, log; one epoch
    /// domain and one tree root per shard).
    pub(crate) shard_count: usize,
    /// Cross-shard batch-commit state: serializes commits and mirrors the
    /// superblock batch table's `(id, shard-mask)` slots (see
    /// `crate::batch`). Loaded from media at create/open.
    pub(crate) batches: Mutex<crate::batch::BatchSlots>,
}

/// A durable, crash-recoverable Masstree in persistent memory.
///
/// See the crate docs for a usage walk-through; constructors live on this
/// type ([`DurableMasstree::create`], [`DurableMasstree::open`]).
///
/// # Sharding
///
/// A store formatted with more than one shard holds that many independent
/// tree roots, each with its **own epoch domain** — its own counter,
/// advance cadence, log buffers, allocator lists and failed-epoch set —
/// over one shared arena. A `DurableMasstree` handle speaks to **one**
/// shard's tree: its operations pin that shard's domain and its writes
/// land in that shard's persistence scope. Constructors return the
/// shard-0 handle; [`DurableMasstree::shard`] derives handles for the
/// others. Key routing lives a level up, in [`crate::Store`]; at this
/// level the caller owns placement.
#[derive(Clone)]
pub struct DurableMasstree {
    pub(crate) inner: Arc<Inner>,
    /// Superblock offset of this handle's root-holder cell.
    root_holder: u64,
    /// The shard this handle is rooted in: its epoch domain, its log
    /// buffers, its allocator lists.
    shard_id: usize,
    /// Cached `inner.exec_epochs[shard_id]` (the `maybe_recover` hot-path
    /// comparison must not chase a Vec).
    exec_epoch: u64,
}

enum Search {
    Found {
        pos: usize,
        slot: usize,
        klenx: u8,
        val: u64,
    },
    NotFound {
        pos: usize,
    },
}

impl DurableMasstree {
    // ==================================================================
    // Construction
    // ==================================================================

    /// Creates a fresh durable tree in a formatted arena, flushing the
    /// initial state so it survives an immediate crash.
    ///
    /// Most callers want the [`crate::Store`] facade instead, whose
    /// [`crate::Store::open`] formats and creates (or recovers) in one
    /// call.
    ///
    /// # Errors
    ///
    /// Propagates arena exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the arena is not formatted
    /// ([`incll_pmem::superblock::format`]).
    pub fn create(arena: &PArena, config: DurableConfig) -> Result<Self, Error> {
        assert!(
            superblock::is_formatted(arena),
            "arena must be formatted before create"
        );
        crate::tree::validate_shard_count(config.shards)?;
        // One epoch domain, one log buffer set and one allocator list set
        // per shard: every shard checkpoints on its own timeline. The log
        // region is carved *before* the allocator: a multi-domain
        // allocator splits all remaining carvable space into per-shard
        // regions and must be the last create-time carver.
        let mgr = EpochManager::with_domains(arena.clone(), EpochOptions::durable(), config.shards);
        let log = ExtLog::create_sharded(
            arena,
            config.threads,
            config.log_bytes_per_thread,
            config.shards,
        )?;
        log.set_persistence_granularity(config.persistence_granularity as u64);
        let alloc = PAlloc::create_sharded(arena, config.threads, config.shards)?;
        let epoch = mgr.current_epoch();

        let inner = Arc::new(Inner {
            arena: arena.clone(),
            mgr,
            alloc,
            log,
            failed: vec![Vec::new(); config.shards],
            exec_epochs: vec![arena.pread_u64(superblock::SB_EXEC_EPOCH).max(1); config.shards],
            rec_locks: (0..REC_LOCKS).map(|_| Mutex::new(())).collect(),
            incll_enabled: config.incll_enabled,
            shard_count: config.shards,
            batches: Mutex::new(crate::batch::BatchSlots::load(arena)),
        });
        let tree = Self::shard_handle(&inner, 0);
        // One empty root leaf per shard, each behind its own holder cell.
        for s in 0..config.shards {
            let root = tree.new_leaf(0, epoch, /*is_root*/ true, /*locked*/ false)?;
            arena.pwrite_u64(superblock::shard_root_holder(s), root);
        }
        // Seal the mkfs epoch before the flush below makes it a durable
        // checkpoint: every carve and free-list move above is InCLL-tagged
        // with `epoch`, so the store must *execute* in `epoch + 1`. Were a
        // crash before the first runtime boundary to fail the mkfs epoch
        // itself, allocator recovery would revert those moves — un-carving
        // the very root leaves the flushed tree references — and later
        // allocations would hand their memory out again.
        for s in 0..config.shards {
            inner.mgr.restart_domain_at(s, epoch + 1);
        }
        arena.pwrite_u64(superblock::SB_SHARD_COUNT, config.shards as u64);
        arena.pwrite_u64(superblock::SB_TREE_META, 1);
        tree.attach_hooks();
        // mkfs moment: the empty trees become the first durable checkpoint.
        arena.global_flush();
        Ok(tree)
    }

    /// The shard count fixed when this store was created.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count
    }

    /// The shard this handle is rooted in.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// A handle rooted in shard `i`, sharing all state (allocator, log,
    /// epoch manager, sessions) with this one.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn shard(&self, i: usize) -> DurableMasstree {
        assert!(
            i < self.inner.shard_count,
            "shard {i} out of range (store has {})",
            self.inner.shard_count
        );
        Self::shard_handle(&self.inner, i)
    }

    /// The shard `key` routes to under the store-level hash partitioning
    /// (FNV-1a over the key bytes, masked by the power-of-two count).
    /// Stable across restarts — it is part of the on-media contract.
    pub fn shard_for(&self, key: &[u8]) -> usize {
        shard_of(key, self.inner.shard_count)
    }

    /// Wraps recovered shared state into the shard-0 handle (recovery's
    /// constructor; `create` builds its own).
    pub(crate) fn from_inner(inner: Arc<Inner>) -> Self {
        Self::shard_handle(&inner, 0)
    }

    pub(crate) fn attach_hooks(&self) {
        // Weak: the hooks live inside the epoch manager, which `Inner`
        // owns — a strong capture would cycle and leak the whole arena.
        for d in 0..self.inner.shard_count {
            // Pre-flush (quiesced, before the checkpoint flush): the
            // failed-epoch-set compaction sweep. When shard `d` still has
            // durable failed entries, eagerly lazy-recover every leaf of
            // its tree and re-tag its allocator lists, so the flush that
            // follows persists a state in which no node or header needs a
            // rollback keyed to those entries.
            let weak = Arc::downgrade(&self.inner);
            self.inner.mgr.add_pre_flush_hook_on(
                d,
                Box::new(move |finishing_epoch| {
                    if let Some(inner) = weak.upgrade() {
                        // Checkpoint boundaries force a log drain: the
                        // finishing epoch's entries must be durable before
                        // its checkpoint completes. Normally a no-op —
                        // undo entries seal themselves and the batch layer
                        // drains its staged intents before its commit
                        // record — but mid-level callers staging raw
                        // intents are still covered here (writers are
                        // quiesced, so the sweep is race-free).
                        inner.log.drain_domain(d);
                        if !superblock::failed_epochs_for(&inner.arena, d).is_empty() {
                            DurableMasstree::shard_handle(&inner, d).sweep_recover();
                            inner.alloc.normalize_lists(d, finishing_epoch);
                        }
                    }
                }),
            );
            // Boundary (after the flush + durable epoch bump): discard the
            // shard's undo log, release its pending frees, and prune the
            // failed entries the sweep above made unreferenceable (every
            // entry predates the epoch whose checkpoint just completed).
            let weak = Arc::downgrade(&self.inner);
            self.inner.mgr.add_advance_hook_on(
                d,
                Box::new(move |new_epoch| {
                    if let Some(inner) = weak.upgrade() {
                        // The preceding flush made all of this shard's
                        // logged pre-images obsolete.
                        inner.log.reset_domain(d);
                        inner.alloc.on_domain_boundary(d, new_epoch);
                        superblock::prune_failed_epochs(&inner.arena, d, new_epoch);
                        // The log reset just discarded this shard's batch
                        // intents too, so no commit record needs to name
                        // this shard any more: retire its bit from every
                        // batch-table slot (see `crate::batch`).
                        inner.retire_batch_shard(d);
                    }
                }),
            );
        }
    }

    /// The one construction site for shard handles: derives the root
    /// holder and the cached exec epoch from `shard` (every other
    /// constructor delegates here so the caching invariant lives in one
    /// place).
    fn shard_handle(inner: &Arc<Inner>, shard: usize) -> DurableMasstree {
        DurableMasstree {
            inner: Arc::clone(inner),
            root_holder: superblock::shard_root_holder(shard),
            shard_id: shard,
            exec_epoch: inner.exec_epochs[shard],
        }
    }

    /// The epoch manager (drive it with
    /// [`incll_epoch::AdvanceDriver`] or manual
    /// [`EpochManager::advance`]).
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.inner.mgr
    }

    /// The underlying arena.
    pub fn arena(&self) -> &PArena {
        &self.inner.arena
    }

    /// The durable allocator backing this tree.
    pub fn allocator(&self) -> &PAlloc {
        &self.inner.alloc
    }

    /// Registers the calling thread on slot `tid`.
    ///
    /// Slot ids index the per-thread allocator free lists and external-log
    /// buffers, so they are bounds-checked against the configured pool
    /// ([`DurableConfig::threads`]). [`crate::Store::session`] hands out
    /// slots automatically.
    ///
    /// # Errors
    ///
    /// [`Error::TooManyThreads`] when `tid` is outside the configured
    /// range.
    pub fn thread_ctx(&self, tid: usize) -> Result<DCtx, Error> {
        let limit = self.inner.alloc.threads();
        if tid >= limit {
            return Err(Error::TooManyThreads { limit });
        }
        Ok(DCtx {
            handle: self.inner.mgr.register(),
            tid,
        })
    }

    // ==================================================================
    // Public operations
    // ==================================================================

    /// Pins this handle's shard domain (the cheap **read** pin — no
    /// log-buffer touch, never dirties the domain) and enters its flush
    /// scope (ops on shard `s` stall only behind shard `s`'s advances,
    /// and any writes they do make — lazy-recovery repairs on the read
    /// path — are covered by shard `s`'s scoped checkpoint flush).
    #[inline]
    fn enter<'c>(&self, ctx: &'c DCtx) -> (Guard<'c>, FlushDomainScope) {
        (
            ctx.handle.pin_domain_read(self.shard_id),
            FlushDomainScope::enter(self.shard_id as u16),
        )
    }

    /// [`DurableMasstree::enter`] for mutating operations: also stamps the
    /// shard's domain dirty so lazily cadenced drivers checkpoint it.
    #[inline]
    fn enter_mut<'c>(&self, ctx: &'c DCtx) -> (Guard<'c>, FlushDomainScope) {
        (
            ctx.handle.pin_domain_mut(self.shard_id),
            FlushDomainScope::enter(self.shard_id as u16),
        )
    }

    /// Looks up `key`, returning its `u64` payload
    /// (the [`DurableMasstree::put`] convenience encoding).
    pub fn get(&self, ctx: &DCtx, key: &[u8]) -> Option<u64> {
        let _g = self.enter(ctx);
        // SAFETY: guard pinned; offsets reachable from the root are nodes.
        unsafe { self.get_inner(key, read_value_u64) }
    }

    /// Looks up `key`, returning a copy of its byte-slice value.
    pub fn get_bytes(&self, ctx: &DCtx, key: &[u8]) -> Option<Vec<u8>> {
        let _g = self.enter(ctx);
        // SAFETY: as for `get`.
        unsafe { self.get_inner(key, read_value_bytes) }
    }

    /// Looks up `key`, appending its value to `out` (which is cleared
    /// first). Returns whether the key was present. The allocation-free
    /// twin of [`DurableMasstree::get_bytes`]: the caller's buffer is
    /// reused across lookups.
    pub fn get_bytes_into(&self, ctx: &DCtx, key: &[u8], out: &mut Vec<u8>) -> bool {
        out.clear();
        let _g = self.enter(ctx);
        // SAFETY: as for `get`.
        unsafe {
            self.get_inner(key, |a, buf| read_value_bytes_into(a, buf, out))
                .is_some()
        }
    }

    /// Looks up `key`, returning a **borrowed, zero-copy** view of its
    /// value bytes in the durable buffer — the `(ptr, len, class)`-shaped
    /// lookup. No byte is copied; the returned [`ValueRef`] dereferences
    /// to the payload in place and holds a read pin on this shard's epoch
    /// domain, so the shard cannot checkpoint (and the allocator cannot
    /// recycle the buffer) until the view is dropped.
    ///
    /// The view is validated at construction: the leaf's version is
    /// re-checked after the slot read (so the buffer was `key`'s current
    /// value at that instant) and the buffer's allocator header words are
    /// snapshotted for later [`ValueRef::is_stale`] checks. See
    /// [`ValueRef`] for the full read-semantics contract.
    pub fn get_ref<'s>(&'s self, ctx: &'s DCtx, key: &[u8]) -> Option<ValueRef<'s>> {
        let guard = ctx.handle.pin_domain_read(self.shard_id);
        let alloc = &self.inner.alloc;
        let found = {
            // Lazy-recovery repairs during the descent are writes; scope
            // them to this shard for the lookup only — the returned view
            // itself never writes, so it does not hold the scope.
            let _scope = FlushDomainScope::enter(self.shard_id as u16);
            // SAFETY: guard pinned; offsets reachable from the root are
            // nodes.
            unsafe {
                self.get_inner(key, |a, buf| {
                    let len = a.pread_u64(buf) as usize;
                    debug_assert!(len <= MAX_VALUE_BYTES, "corrupt value-buffer length");
                    (buf, len, alloc.payload_header_words(buf))
                })
            }
        };
        found.map(|(buf, len, hdr)| ValueRef {
            arena: &self.inner.arena,
            alloc,
            buf,
            len,
            hdr,
            pin: ReadGuard {
                guard,
                shard: self.shard_id,
            },
        })
    }

    /// Inserts or updates `key` with a `u64` payload (stored little-endian
    /// in a fresh length-prefixed durable buffer), returning the previous
    /// payload.
    ///
    /// The returned payload is meaningful only when the previous value was
    /// itself 8 bytes wide; use [`DurableMasstree::put_bytes`] to observe
    /// the full previous value of mixed-width keys.
    ///
    /// # Panics
    ///
    /// Panics when the arena is exhausted (use
    /// [`DurableMasstree::put_bytes`] for the error-returning form).
    pub fn put(&self, ctx: &DCtx, key: &[u8], val: u64) -> Option<u64> {
        let (g, _s) = self.enter_mut(ctx);
        let epoch = g.epoch();
        // SAFETY: as for `get`.
        let out = unsafe {
            self.put_inner(
                ctx,
                epoch,
                key,
                &val.to_le_bytes(),
                &mut None,
                read_value_u64,
            )
        }
        .expect("arena full");
        // No drain on exit: every undo entry the operation appended was
        // sealed before its guarded modification (see `log_node`), at
        // every persistence granularity.
        out
    }

    /// Inserts or updates `key` with a byte-slice value (fresh size-classed
    /// durable buffer per put, §5), returning a copy of the previous value.
    ///
    /// # Errors
    ///
    /// [`Error::ValueTooLarge`] when `val` exceeds [`MAX_VALUE_BYTES`] (the
    /// tree is untouched in that case), and [`Error::Pmem`] when the arena
    /// cannot fit the value buffer (the key's previous mapping survives).
    ///
    /// # Panics
    ///
    /// Panics if the arena runs out *mid-split* while making room for a
    /// brand-new key — structural node allocation still treats exhaustion
    /// as fatal.
    pub fn put_bytes(&self, ctx: &DCtx, key: &[u8], val: &[u8]) -> Result<Option<Vec<u8>>, Error> {
        self.put_bytes_with_buf(ctx, key, val, None)
    }

    /// [`DurableMasstree::put_bytes`] consuming a value buffer the caller
    /// already reserved with [`DurableMasstree::prepare_value_buf`] (the
    /// batch commit path reserves every buffer up front so a full shard
    /// fails the batch before anything durable names it). `None` falls
    /// back to allocating inline.
    pub(crate) fn put_bytes_with_buf(
        &self,
        ctx: &DCtx,
        key: &[u8],
        val: &[u8],
        prealloc: Option<u64>,
    ) -> Result<Option<Vec<u8>>, Error> {
        if val.len() > MAX_VALUE_BYTES {
            return Err(Error::ValueTooLarge {
                size: val.len(),
                max: MAX_VALUE_BYTES,
            });
        }
        let mut prealloc = prealloc;
        let (g, _s) = self.enter_mut(ctx);
        let epoch = g.epoch();
        // SAFETY: as for `get`.
        let out = unsafe { self.put_inner(ctx, epoch, key, val, &mut prealloc, read_value_bytes) };
        // No drain on exit — as for `put`: undo entries seal themselves.
        out
    }

    /// Allocates — and fills — the value buffer a later
    /// [`DurableMasstree::put_bytes_with_buf`] for `val` will consume.
    /// Must run under a mutating pin on this shard carrying `epoch`.
    pub(crate) fn prepare_value_buf(
        &self,
        ctx: &DCtx,
        epoch: u64,
        val: &[u8],
    ) -> Result<u64, Error> {
        if val.len() > MAX_VALUE_BYTES {
            return Err(Error::ValueTooLarge {
                size: val.len(),
                max: MAX_VALUE_BYTES,
            });
        }
        self.new_value_buf(ctx.tid, epoch, val)
    }

    /// Returns an unused [`DurableMasstree::prepare_value_buf`] reservation
    /// to the shard's pending list (reusable at its next boundary).
    pub(crate) fn release_value_buf(&self, ctx: &DCtx, epoch: u64, buf: u64) {
        self.free_value_buf(ctx.tid, epoch, buf);
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&self, ctx: &DCtx, key: &[u8]) -> bool {
        let (g, _s) = self.enter_mut(ctx);
        let epoch = g.epoch();
        // SAFETY: as for `get`.
        let out = unsafe { self.remove_inner(ctx, epoch, key) };
        // No drain on exit — as for `put`: undo entries seal themselves.
        out
    }

    /// Scans at most `limit` keys ≥ `start` in order, passing each `u64`
    /// payload to `f`.
    pub fn scan(
        &self,
        ctx: &DCtx,
        start: &[u8],
        limit: usize,
        f: &mut dyn FnMut(&[u8], u64),
    ) -> usize {
        let a = &self.inner.arena;
        self.scan_raw(ctx, start, limit, &mut |k, buf| {
            f(k, read_value_u64(a, buf))
        })
    }

    /// Scans at most `limit` keys ≥ `start` in order, passing each
    /// byte-slice value to `f`.
    pub fn scan_bytes(
        &self,
        ctx: &DCtx,
        start: &[u8],
        limit: usize,
        f: &mut dyn FnMut(&[u8], &[u8]),
    ) -> usize {
        let a = &self.inner.arena;
        self.scan_raw(ctx, start, limit, &mut |k, buf| {
            f(k, &read_value_bytes(a, buf))
        })
    }

    /// Callback scan over (key, value-buffer offset) pairs.
    pub(crate) fn scan_raw(
        &self,
        ctx: &DCtx,
        start: &[u8],
        limit: usize,
        f: &mut dyn FnMut(&[u8], u64),
    ) -> usize {
        if limit == 0 {
            return 0;
        }
        let _g = self.enter(ctx);
        let mut remaining = limit;
        let mut prefix = Vec::with_capacity(start.len() + 8);
        // SAFETY: as for `get`.
        unsafe {
            self.scan_layer(
                self.root_holder,
                Some(KeyCursor::new(start)),
                &mut prefix,
                &mut remaining,
                f,
            );
        }
        limit - remaining
    }

    // ==================================================================
    // Node creation
    // ==================================================================

    fn new_leaf(
        &self,
        tid: usize,
        epoch: u64,
        is_root: bool,
        locked: bool,
    ) -> Result<u64, incll_palloc::Error> {
        let a = &self.inner.arena;
        let off = self
            .inner
            .alloc
            .alloc_aligned64_in(tid, self.shard_id, epoch, NODE_BYTES)?;
        let mut vflags = pv::IS_LEAF;
        let mut mflags = meta::IS_LEAF | meta::INS_ALLOWED | meta::LOGGED;
        if is_root {
            vflags |= pv::IS_ROOT;
            mflags |= meta::IS_ROOT;
        }
        pv::reinit(a, off, if locked { vflags | pv::LOCK } else { vflags });
        a.pwrite_u64(off + OFF_PARENT, 0);
        a.pwrite_u64(off + OFF_NEXT, 0);
        a.pwrite_u64(off + OFF_PERM_INCLL, DPerm::empty().raw());
        a.pwrite_u64(off + OFF_PERM, DPerm::empty().raw());
        a.pwrite_u64(off + OFF_INCLL1, val_incll::invalid(epoch as u16));
        a.pwrite_u64(off + OFF_INCLL2, val_incll::invalid(epoch as u16));
        // klenx words zeroed (slots are gated by the permutation, but keep
        // recycled-node debris out of debug dumps).
        a.pwrite_u64(off + OFF_KLENX, 0);
        a.pwrite_u64(off + OFF_KLENX + 8, 0);
        // Fresh node: `logged` set — a crash reverts the allocator and the
        // referencing pointer, so the node needs no pre-image this epoch.
        a.pwrite_u64_release(off + OFF_META, meta::with_epoch(mflags, epoch));
        Ok(off)
    }

    fn new_interior(
        &self,
        tid: usize,
        epoch: u64,
        is_root: bool,
        locked: bool,
    ) -> Result<u64, incll_palloc::Error> {
        let a = &self.inner.arena;
        let off = self
            .inner
            .alloc
            .alloc_aligned64_in(tid, self.shard_id, epoch, NODE_BYTES)?;
        let mut vflags = 0;
        let mut mflags = meta::LOGGED;
        if is_root {
            vflags |= pv::IS_ROOT;
            mflags |= meta::IS_ROOT;
        }
        pv::reinit(a, off, if locked { vflags | pv::LOCK } else { vflags });
        a.pwrite_u64(off + OFF_PARENT, 0);
        a.pwrite_u64(off + OFF_INT_NKEYS, 0);
        a.pwrite_u64_release(off + OFF_META, meta::with_epoch(mflags, epoch));
        Ok(off)
    }

    // ==================================================================
    // The InCLL engine (Listing 3)
    // ==================================================================

    /// Logs the node image externally into this shard's (thread, domain)
    /// buffer, tagged with the shard id, so the shard's recovery replays
    /// — and its boundary discards — exactly its own entries.
    ///
    /// The entry is **sealed before return at every persistence
    /// granularity**: callers publish `meta::LOGGED` and mutate the node
    /// in place the moment this returns, and a crash may persist any
    /// dirty line of that mutation, so the pre-image must already be
    /// durable (write-ahead). Under a nonzero granularity the seal is
    /// one `clwb_range`+`sfence` over the slot's whole staged run — any
    /// batch intents staged ahead of this entry share its fence.
    fn log_node(&self, tid: usize, epoch: u64, node: u64) {
        self.inner
            .log
            .log_object_in(tid, self.shard_id, epoch, node, NODE_BYTES);
        self.inner
            .mgr
            .note_logged_bytes(self.shard_id, NODE_BYTES as u64);
    }

    /// `InCLL()` for permutation-only mutations (insert/remove).
    /// `allowed`: whether InCLLp may absorb this mutation when the node was
    /// already touched this epoch.
    fn incll_perm(&self, tid: usize, epoch: u64, lf: u64, allowed: bool) {
        let a = &self.inner.arena;
        let m = a.pread_u64(lf + OFF_META);
        if meta::epoch(m) != epoch {
            self.incll_new_epoch(tid, epoch, lf, m, None);
        } else if m & meta::LOGGED == 0 && !allowed {
            self.log_node(tid, epoch, lf);
            a.pwrite_u64_release(lf + OFF_META, m | meta::LOGGED);
        }
    }

    /// `InCLL()` for a value update of slot `idx` whose current value is
    /// `oldval`.
    fn incll_val(&self, tid: usize, epoch: u64, lf: u64, idx: usize, oldval: u64) {
        let a = &self.inner.arena;
        let m = a.pread_u64(lf + OFF_META);
        if meta::epoch(m) != epoch {
            self.incll_new_epoch(tid, epoch, lf, m, Some((idx, oldval)));
            return;
        }
        if m & meta::LOGGED != 0 {
            return;
        }
        let incll_off = lf + incll_for(idx);
        let w = a.pread_u64(incll_off);
        if val_incll::idx(w) == idx {
            // This slot's epoch-start value is already captured.
        } else if val_incll::idx(w) == val_incll::INVALID_IDX {
            // The line's log is free: take it. Ordered before the value
            // store by the same-line rule.
            a.pwrite_u64_release(incll_off, val_incll::pack(oldval, idx, epoch as u16));
            a.stats().add_incll_val();
        } else {
            // Two hot values in one cache line: fall back (§4.2).
            self.log_node(tid, epoch, lf);
            a.pwrite_u64_release(lf + OFF_META, m | meta::LOGGED);
        }
    }

    /// First modification of the node in `epoch`: stamp all three in-line
    /// logs (or external-log on the 16-bit epoch-window wrap, §4.1.3), then
    /// advance `nodeEpoch`. Store order per line: log words first, epoch
    /// word second, caller's mutation third.
    fn incll_new_epoch(&self, tid: usize, epoch: u64, lf: u64, m: u64, vlog: Option<(usize, u64)>) {
        let a = &self.inner.arena;
        let node_epoch = meta::epoch(m);
        let mut logged = false;
        if !self.inner.incll_enabled || meta::high_window(epoch) != meta::high_window(node_epoch) {
            self.log_node(tid, epoch, lf);
            logged = true;
        }
        if !logged {
            a.pwrite_u64(lf + OFF_PERM_INCLL, a.pread_u64(lf + OFF_PERM));
            let low = epoch as u16;
            let (w1, w2) = match vlog {
                Some((idx, oldval)) if idx < 7 => {
                    (val_incll::pack(oldval, idx, low), val_incll::invalid(low))
                }
                Some((idx, oldval)) => (val_incll::invalid(low), val_incll::pack(oldval, idx, low)),
                None => (val_incll::invalid(low), val_incll::invalid(low)),
            };
            a.pwrite_u64(lf + OFF_INCLL1, w1);
            a.pwrite_u64(lf + OFF_INCLL2, w2);
            a.stats().add_incll_perm();
            if vlog.is_some() {
                a.stats().add_incll_val();
            }
        }
        let kind = m & (meta::IS_LEAF | meta::IS_ROOT);
        let flags = kind | meta::INS_ALLOWED | if logged { meta::LOGGED } else { 0 };
        a.pwrite_u64_release(lf + OFF_META, meta::with_epoch(flags, epoch));
    }

    /// Ensures a leaf is externally logged this epoch (split / conversion
    /// paths: subsequent modifications in the epoch are then free).
    fn ensure_leaf_logged(&self, tid: usize, epoch: u64, lf: u64) {
        let a = &self.inner.arena;
        let m = a.pread_u64(lf + OFF_META);
        if meta::epoch(m) == epoch && m & meta::LOGGED != 0 {
            return;
        }
        self.log_node(tid, epoch, lf);
        let kind = m & (meta::IS_LEAF | meta::IS_ROOT);
        a.pwrite_u64_release(
            lf + OFF_META,
            meta::with_epoch(kind | meta::INS_ALLOWED | meta::LOGGED, epoch),
        );
    }

    /// Externally logs a 16-byte root-holder cell at most once per epoch
    /// (the cell's second word tags the last logged epoch). At-most-once
    /// matters: replay applies entries in order, so a second entry would
    /// re-install a mid-epoch (doomed) root.
    fn log_holder(&self, tid: usize, epoch: u64, holder: u64) {
        let a = &self.inner.arena;
        if a.pread_u64(holder + 8) != epoch {
            self.inner
                .log
                .log_object_in(tid, self.shard_id, epoch, holder, HOLDER_BYTES);
            self.inner
                .mgr
                .note_logged_bytes(self.shard_id, HOLDER_BYTES as u64);
            a.pwrite_u64_release(holder + 8, epoch);
        }
    }

    /// Ensures an interior node is externally logged this epoch — interior
    /// nodes have no InCLLs; this is their entire logging story (§4.2's
    /// per-node epoch check prevents duplicate logging).
    fn ensure_int_logged(&self, tid: usize, epoch: u64, node: u64) {
        let a = &self.inner.arena;
        let m = a.pread_u64(node + OFF_META);
        if meta::epoch(m) == epoch && m & meta::LOGGED != 0 {
            return;
        }
        a.stats().add_ext_interior();
        self.ensure_leaf_logged(tid, epoch, node); // identical mechanics
    }

    // ==================================================================
    // Lazy recovery (Listing 4)
    // ==================================================================

    /// Recovery check on every node access: nodes stamped before this
    /// shard's execution are repaired in place before use (against this
    /// shard's failed-epoch set — each shard rolls back to its own
    /// boundary).
    #[inline]
    pub(crate) fn maybe_recover(&self, node: u64) {
        let m = self.inner.arena.pread_u64(node + OFF_META);
        if meta::epoch(m) >= self.exec_epoch {
            return;
        }
        self.recover_node_slow(node);
    }

    #[cold]
    fn recover_node_slow(&self, node: u64) {
        let inner = &self.inner;
        let a = &inner.arena;
        let failed = &inner.failed[self.shard_id];
        let exec_epoch = self.exec_epoch;
        let _g = inner.rec_locks[(node as usize >> 6) % REC_LOCKS].lock();
        let m = a.pread_u64(node + OFF_META);
        let node_epoch = meta::epoch(m);
        if node_epoch >= exec_epoch {
            return; // someone else repaired it while we waited
        }
        let is_leaf = m & meta::IS_LEAF != 0;
        if is_leaf {
            // InCLLp: roll the permutation back to the epoch start.
            if failed.contains(&node_epoch) {
                let logged = a.pread_u64(node + OFF_PERM_INCLL);
                a.pwrite_u64(node + OFF_PERM, logged);
            }
            // Refresh the log to match the (possibly restored) current
            // value: the epoch bump below re-arms InCLLp for this epoch,
            // and its content must be the epoch-start value.
            let cur = a.pread_u64(node + OFF_PERM);
            a.pwrite_u64(node + OFF_PERM_INCLL, cur);

            // ValInCLLs: reconstruct each log's epoch from the node's
            // window; roll back and reset. Value restore precedes the
            // reset in the same line, so a re-crash replays idempotently.
            for incll in [OFF_INCLL1, OFF_INCLL2] {
                let w = a.pread_u64(node + incll);
                let idx = val_incll::idx(w);
                if idx != val_incll::INVALID_IDX && idx < LEAF_WIDTH {
                    let e = val_incll::full_epoch(w, node_epoch);
                    if failed.contains(&e) {
                        a.pwrite_u64(node + off_val(idx), val_incll::ptr(w));
                    }
                }
                a.pwrite_u64_release(node + incll, val_incll::invalid(exec_epoch as u16));
            }
            a.stats().add_lazy_recovered();
        }
        // The lock word may hold any torn garbage: reinitialise it from
        // the durable kind bits (`basenode::initlock()`).
        let mut vflags = 0;
        if is_leaf {
            vflags |= pv::IS_LEAF;
        }
        if m & meta::IS_ROOT != 0 {
            vflags |= pv::IS_ROOT;
        }
        pv::reinit(a, node, vflags);
        // Publish: stamping exec_epoch ends recovery for this node. Note
        // the refreshed InCLLp above makes this exactly equivalent to a
        // first-modification stamp in exec_epoch.
        let kind = m & (meta::IS_LEAF | meta::IS_ROOT);
        a.pwrite_u64_release(
            node + OFF_META,
            meta::with_epoch(kind | meta::INS_ALLOWED, exec_epoch),
        );
    }

    /// Eagerly lazy-recovers **every** leaf of this shard's tree (layer
    /// roots included) — the failed-epoch-set compaction sweep. Runs in
    /// the shard's pre-flush advance hook, with the shard's threads
    /// quiesced, so no pins or version validation are needed; after the
    /// checkpoint flush that follows, no durable node of this shard still
    /// references an old failed epoch and the shard's set can be pruned.
    pub(crate) fn sweep_recover(&self) {
        // SAFETY: quiesced advance context — this shard has no concurrent
        // mutators, and holders reachable from the root are live.
        unsafe { self.sweep_layer_quiesced(self.root_holder) }
    }

    unsafe fn sweep_layer_quiesced(&self, holder: u64) {
        unsafe {
            let a = &self.inner.arena;
            let mut n = a.pread_u64(holder);
            if n == 0 {
                return;
            }
            // Descend to the leftmost leaf, repairing interiors on the way.
            loop {
                self.maybe_recover(n);
                let m = a.pread_u64(n + OFF_META);
                if m & meta::IS_LEAF != 0 {
                    break;
                }
                let child = a.pread_u64(n + off_int_child(0));
                if child == 0 {
                    return;
                }
                n = child;
            }
            // Walk the leaf chain, recursing into sub-layers.
            let mut lf = n;
            loop {
                self.maybe_recover(lf);
                let perm = self.perm_of(lf);
                for pos in 0..perm.len() {
                    let slot = perm.slot_at(pos);
                    if self.klenx_at(lf, slot) == KLEN_LAYER {
                        // The slot's value is the sub-layer's holder cell.
                        self.sweep_layer_quiesced(a.pread_u64(lf + off_val(slot)));
                    }
                }
                let next = a.pread_u64(lf + OFF_NEXT);
                if next == 0 {
                    return;
                }
                lf = next;
            }
        }
    }

    // ==================================================================
    // Descent (mirrors the transient tree)
    // ==================================================================

    unsafe fn find_leaf(&self, holder: u64, ikey: u64) -> (u64, u64) {
        let a = &self.inner.arena;
        'retry: loop {
            let n0 = a.pread_u64_acquire(holder);
            self.maybe_recover(n0);
            let v0 = pv::stable(a, n0);
            if v0 & pv::IS_ROOT == 0 {
                std::hint::spin_loop();
                continue 'retry;
            }
            let mut n = n0;
            let mut v = v0;
            loop {
                if v & pv::IS_LEAF != 0 {
                    return (n, v);
                }
                let idx = self.route(n, ikey);
                let child = a.pread_u64_acquire(n + off_int_child(idx));
                if child == 0 {
                    continue 'retry;
                }
                self.maybe_recover(child);
                let vc = pv::stable(a, child);
                if pv::changed(v, pv::load(a, n)) {
                    continue 'retry;
                }
                n = child;
                v = vc;
            }
        }
    }

    fn route(&self, int: u64, ikey: u64) -> usize {
        let a = &self.inner.arena;
        let n = a.pread_u64_acquire(int + OFF_INT_NKEYS) as usize;
        let n = n.min(INT_WIDTH);
        let mut i = 0;
        while i < n && a.pread_u64_acquire(int + off_int_key(i)) <= ikey {
            i += 1;
        }
        i
    }

    fn klenx_at(&self, lf: u64, slot: usize) -> u8 {
        let word = self
            .inner
            .arena
            .pread_u64_acquire(lf + OFF_KLENX + ((slot as u64) / 8) * 8);
        (word >> ((slot % 8) * 8)) as u8
    }

    /// Writes `klenx[slot]` (leaf locked: exclusive writer).
    fn set_klenx(&self, lf: u64, slot: usize, klenx: u8) {
        let a = &self.inner.arena;
        let off = lf + OFF_KLENX + ((slot as u64) / 8) * 8;
        let shift = (slot % 8) * 8;
        let word = a.pread_u64(off);
        let new = (word & !(0xFFu64 << shift)) | ((klenx as u64) << shift);
        a.pwrite_u64_release(off, new);
    }

    fn perm_of(&self, lf: u64) -> DPerm {
        DPerm::from_raw(self.inner.arena.pread_u64_acquire(lf + OFF_PERM))
    }

    unsafe fn search_leaf(&self, lf: u64, ikey: u64, klenx: u8) -> Search {
        let a = &self.inner.arena;
        let perm = self.perm_of(lf);
        for pos in 0..perm.len() {
            let slot = perm.slot_at(pos);
            let k = a.pread_u64_acquire(lf + off_ikey(slot));
            let kl = self.klenx_at(lf, slot);
            match entry_cmp(k, kl, ikey, klenx) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => {
                    return Search::Found {
                        pos,
                        slot,
                        klenx: kl,
                        val: a.pread_u64_acquire(lf + off_val(slot)),
                    }
                }
                std::cmp::Ordering::Greater => return Search::NotFound { pos },
            }
        }
        Search::NotFound { pos: perm.len() }
    }

    unsafe fn entry_at(&self, lf: u64, pos: usize) -> (u64, u8, u64) {
        let a = &self.inner.arena;
        let slot = self.perm_of(lf).slot_at(pos);
        (
            a.pread_u64_acquire(lf + off_ikey(slot)),
            self.klenx_at(lf, slot),
            a.pread_u64_acquire(lf + off_val(slot)),
        )
    }

    // ==================================================================
    // get
    // ==================================================================

    unsafe fn get_inner<R>(
        &self,
        key: &[u8],
        mut read: impl FnMut(&PArena, u64) -> R,
    ) -> Option<R> {
        unsafe {
            let a = &self.inner.arena;
            let mut cur = KeyCursor::new(key);
            let mut holder = self.root_holder;
            'layer: loop {
                let ikey = cur.ikey();
                let target = search_klenx(&cur);
                'retry: loop {
                    let (lf, v) = self.find_leaf(holder, ikey);
                    enum Act {
                        Ret(Option<u64>),
                        Descend(u64),
                    }
                    let act = match self.search_leaf(lf, ikey, target) {
                        Search::Found { klenx, val, .. } => {
                            if klenx == KLEN_LAYER {
                                Act::Descend(val)
                            } else {
                                Act::Ret(Some(val))
                            }
                        }
                        Search::NotFound { pos } => {
                            if target == 8 && pos < self.perm_of(lf).len() {
                                let (k, kl, val) = self.entry_at(lf, pos);
                                if k == ikey && kl == KLEN_LAYER {
                                    Act::Descend(val)
                                } else {
                                    Act::Ret(None)
                                }
                            } else {
                                Act::Ret(None)
                            }
                        }
                    };
                    if pv::changed(v, pv::load(a, lf)) {
                        continue 'retry;
                    }
                    match act {
                        Act::Ret(Some(buf)) => return Some(read(a, buf)),
                        Act::Ret(None) => return None,
                        Act::Descend(h) => {
                            holder = h;
                            cur.descend();
                            continue 'layer;
                        }
                    }
                }
            }
        }
    }

    // ==================================================================
    // put
    // ==================================================================

    fn moved_since(before: u64, now: u64) -> bool {
        const VSPLIT_MASK: u64 = !((1u64 << 36) - 1);
        (before ^ now) & (VSPLIT_MASK | pv::DELETED) != 0
    }

    /// Allocates a fresh length-prefixed value buffer holding `data`.
    fn new_value_buf(&self, tid: usize, epoch: u64, data: &[u8]) -> Result<u64, Error> {
        let buf =
            self.inner
                .alloc
                .alloc_in(tid, self.shard_id, epoch, value_buf_size(data.len()))?;
        // Plain stores, no flush: the checkpoint flush persists contents,
        // and a crash reverts both the buffer and every reference (§5).
        self.inner.arena.pwrite_u64(buf, data.len() as u64);
        self.inner.arena.pwrite_bytes(buf + 8, data);
        Ok(buf)
    }

    /// Returns a value buffer to the allocator. The stored length prefix
    /// names the size class; it is intact for any live buffer (the §5 EBR
    /// argument: buffers referenced at a boundary are never overwritten
    /// during the following epoch).
    fn free_value_buf(&self, tid: usize, epoch: u64, buf: u64) {
        let len = self.inner.arena.pread_u64(buf) as usize;
        self.inner
            .alloc
            .free_in(tid, self.shard_id, epoch, buf, value_buf_size(len));
    }

    unsafe fn put_inner<R>(
        &self,
        ctx: &DCtx,
        epoch: u64,
        key: &[u8],
        val: &[u8],
        prealloc: &mut Option<u64>,
        read_old: impl Fn(&PArena, u64) -> R,
    ) -> Result<Option<R>, Error> {
        // Allocation failures below must release the held leaf lock before
        // surfacing, or the leaf would be stuck locked forever.
        macro_rules! alloc_or_unlock {
            ($a:expr, $lf:expr, $alloc:expr) => {
                match $alloc {
                    Ok(off) => off,
                    Err(e) => {
                        pv::unlock($a, $lf, false, false);
                        return Err(e.into());
                    }
                }
            };
        }
        unsafe {
            let a = &self.inner.arena;
            let tid = ctx.tid;
            let mut cur = KeyCursor::new(key);
            let mut holder = self.root_holder;
            'layer: loop {
                let ikey = cur.ikey();
                let target = search_klenx(&cur);
                'retry: loop {
                    let (lf, v) = self.find_leaf(holder, ikey);

                    if target == KLEN_LAYER {
                        if let Search::Found { val: h, .. } = self.search_leaf(lf, ikey, KLEN_LAYER)
                        {
                            if pv::changed(v, pv::load(a, lf)) {
                                continue 'retry;
                            }
                            holder = h;
                            cur.descend();
                            continue 'layer;
                        }
                    }

                    let lv = pv::lock(a, lf);
                    if Self::moved_since(v, lv) {
                        pv::unlock(a, lf, false, false);
                        continue 'retry;
                    }

                    match self.search_leaf(lf, ikey, target) {
                        Search::Found {
                            slot,
                            klenx,
                            val: old,
                            ..
                        } => {
                            if klenx == KLEN_LAYER {
                                pv::unlock(a, lf, false, false);
                                holder = old;
                                cur.descend();
                                continue 'layer;
                            }
                            // Update: InCLL-log the old pointer, then swap.
                            let nb = match prealloc.take() {
                                Some(b) => b,
                                None => {
                                    alloc_or_unlock!(a, lf, self.new_value_buf(tid, epoch, val))
                                }
                            };
                            self.incll_val(tid, epoch, lf, slot, old);
                            a.pwrite_u64_release(lf + off_val(slot), nb);
                            pv::unlock(a, lf, false, false);
                            let old_payload = read_old(a, old);
                            self.free_value_buf(tid, epoch, old);
                            return Ok(Some(old_payload));
                        }
                        Search::NotFound { pos } => {
                            if target == 8 && pos < self.perm_of(lf).len() {
                                let (k, kl, h) = self.entry_at(lf, pos);
                                if k == ikey && kl == KLEN_LAYER {
                                    pv::unlock(a, lf, false, false);
                                    holder = h;
                                    cur.descend();
                                    continue 'layer;
                                }
                            }
                            if target == KLEN_LAYER {
                                // Terminal-8 conversion: complex op → external
                                // log the node, then swing the slot to a layer.
                                if pos > 0 {
                                    let (k, kl, old) = self.entry_at(lf, pos - 1);
                                    if k == ikey && kl == 8 {
                                        let slot = self.perm_of(lf).slot_at(pos - 1);
                                        let h = alloc_or_unlock!(
                                            a,
                                            lf,
                                            self.new_layer_with(tid, epoch, 0, 0, old)
                                        );
                                        self.ensure_leaf_logged(tid, epoch, lf);
                                        pv::mark_dirty(a, lf, pv::DIRTY_INSERT);
                                        a.pwrite_u64_release(lf + off_val(slot), h);
                                        self.set_klenx(lf, slot, KLEN_LAYER);
                                        pv::unlock(a, lf, true, false);
                                        holder = h;
                                        cur.descend();
                                        continue 'layer;
                                    }
                                }
                                let mut sub = cur;
                                sub.descend();
                                let h = alloc_or_unlock!(
                                    a,
                                    lf,
                                    self.build_layer_chain(tid, epoch, sub, val, prealloc)
                                );
                                self.insert_entry(ctx, epoch, holder, lf, pos, ikey, KLEN_LAYER, h);
                                return Ok(None);
                            }
                            let nb = match prealloc.take() {
                                Some(b) => b,
                                None => {
                                    alloc_or_unlock!(a, lf, self.new_value_buf(tid, epoch, val))
                                }
                            };
                            self.insert_entry(ctx, epoch, holder, lf, pos, ikey, target, nb);
                            return Ok(None);
                        }
                    }
                }
            }
        }
    }

    /// Builds a single-entry sub-layer; returns the holder-cell offset.
    fn new_layer_with(
        &self,
        tid: usize,
        epoch: u64,
        ikey: u64,
        klenx: u8,
        val: u64,
    ) -> Result<u64, incll_palloc::Error> {
        let a = &self.inner.arena;
        let leaf = self.new_leaf(tid, epoch, /*is_root*/ true, /*locked*/ false)?;
        let mut perm = DPerm::empty();
        let slot = perm.insert_at(0);
        a.pwrite_u64(leaf + off_ikey(slot), ikey);
        self.set_klenx(leaf, slot, klenx);
        a.pwrite_u64(leaf + off_val(slot), val);
        a.pwrite_u64_release(leaf + OFF_PERM, perm.raw());
        let holder = self
            .inner
            .alloc
            .alloc_in(tid, self.shard_id, epoch, HOLDER_BYTES)?;
        a.pwrite_u64(holder, leaf);
        // Fresh holder: tag it as already logged this epoch (a crash
        // reverts the whole allocation, so no pre-image is needed).
        a.pwrite_u64_release(holder + 8, epoch);
        Ok(holder)
    }

    unsafe fn build_layer_chain(
        &self,
        tid: usize,
        epoch: u64,
        cur: KeyCursor<'_>,
        val: &[u8],
        prealloc: &mut Option<u64>,
    ) -> Result<u64, Error> {
        unsafe {
            if cur.is_terminal() {
                let buf = match prealloc.take() {
                    Some(b) => b,
                    None => self.new_value_buf(tid, epoch, val)?,
                };
                Ok(self.new_layer_with(tid, epoch, cur.ikey(), cur.klen(), buf)?)
            } else {
                let mut sub = cur;
                sub.descend();
                let inner = self.build_layer_chain(tid, epoch, sub, val, prealloc)?;
                Ok(self.new_layer_with(tid, epoch, cur.ikey(), KLEN_LAYER, inner)?)
            }
        }
    }

    // ==================================================================
    // remove
    // ==================================================================

    unsafe fn remove_inner(&self, ctx: &DCtx, epoch: u64, key: &[u8]) -> bool {
        unsafe {
            let a = &self.inner.arena;
            let tid = ctx.tid;
            let mut cur = KeyCursor::new(key);
            let mut holder = self.root_holder;
            'layer: loop {
                let ikey = cur.ikey();
                let target = search_klenx(&cur);
                'retry: loop {
                    let (lf, v) = self.find_leaf(holder, ikey);
                    let lv = pv::lock(a, lf);
                    if Self::moved_since(v, lv) {
                        pv::unlock(a, lf, false, false);
                        continue 'retry;
                    }
                    match self.search_leaf(lf, ikey, target) {
                        Search::Found {
                            pos, klenx, val, ..
                        } => {
                            if klenx == KLEN_LAYER {
                                pv::unlock(a, lf, false, false);
                                holder = val;
                                cur.descend();
                                continue 'layer;
                            }
                            // InCLLp absorbs pure removals; afterwards,
                            // insertions into this node must external-log
                            // (remove-then-insert hazard, §4.1.1).
                            self.incll_perm(tid, epoch, lf, true);
                            let m = a.pread_u64(lf + OFF_META);
                            a.pwrite_u64_release(lf + OFF_META, m & !meta::INS_ALLOWED);
                            pv::mark_dirty(a, lf, pv::DIRTY_INSERT);
                            let mut perm = self.perm_of(lf);
                            perm.remove_at(pos);
                            a.pwrite_u64_release(lf + OFF_PERM, perm.raw());
                            pv::unlock(a, lf, true, false);
                            self.free_value_buf(tid, epoch, val);
                            return true;
                        }
                        Search::NotFound { pos } => {
                            if target == 8 && pos < self.perm_of(lf).len() {
                                let (k, kl, h) = self.entry_at(lf, pos);
                                if k == ikey && kl == KLEN_LAYER {
                                    pv::unlock(a, lf, false, false);
                                    holder = h;
                                    cur.descend();
                                    continue 'layer;
                                }
                            }
                            pv::unlock(a, lf, false, false);
                            return false;
                        }
                    }
                }
            }
        }
    }

    // ==================================================================
    // insert + splits
    // ==================================================================

    #[allow(clippy::too_many_arguments)] // one flat hot-path call, no natural struct
    unsafe fn insert_entry(
        &self,
        ctx: &DCtx,
        epoch: u64,
        holder: u64,
        lf: u64,
        pos: usize,
        ikey: u64,
        klenx: u8,
        val: u64,
    ) {
        unsafe {
            let a = &self.inner.arena;
            let tid = ctx.tid;
            let mut perm = self.perm_of(lf);
            if !perm.is_full() {
                let allowed = a.pread_u64(lf + OFF_META) & meta::INS_ALLOWED != 0;
                self.incll_perm(tid, epoch, lf, allowed);
                pv::mark_dirty(a, lf, pv::DIRTY_INSERT);
                let slot = perm.insert_at(pos);
                a.pwrite_u64(lf + off_ikey(slot), ikey);
                self.set_klenx(lf, slot, klenx);
                a.pwrite_u64(lf + off_val(slot), val);
                a.pwrite_u64_release(lf + OFF_PERM, perm.raw());
                pv::unlock(a, lf, true, false);
                return;
            }

            let (right, sep) = self.split_leaf(ctx, epoch, holder, lf);
            let target = if ikey < sep { lf } else { right };
            let tpos = match self.search_leaf(target, ikey, klenx) {
                Search::NotFound { pos } => pos,
                Search::Found { .. } => unreachable!("key appeared during split"),
            };
            let mut tperm = self.perm_of(target);
            pv::mark_dirty(a, target, pv::DIRTY_INSERT);
            let slot = tperm.insert_at(tpos);
            a.pwrite_u64(target + off_ikey(slot), ikey);
            self.set_klenx(target, slot, klenx);
            a.pwrite_u64(target + off_val(slot), val);
            a.pwrite_u64_release(target + OFF_PERM, tperm.raw());

            let left_was_target = target == lf;
            pv::unlock(a, lf, left_was_target, true);
            pv::unlock(a, right, !left_was_target, false);
        }
    }

    /// Splits the locked, full leaf (external-logged first: splits are the
    /// "complex modification" case, §4.2). Both halves stay locked.
    unsafe fn split_leaf(&self, ctx: &DCtx, epoch: u64, holder: u64, lf: u64) -> (u64, u64) {
        unsafe {
            let a = &self.inner.arena;
            let tid = ctx.tid;
            self.ensure_leaf_logged(tid, epoch, lf);
            pv::mark_dirty(a, lf, pv::DIRTY_SPLIT);
            let perm = self.perm_of(lf);
            let count = perm.len();
            debug_assert!(perm.is_full());

            let ikey_at = |p: usize| a.pread_u64(lf + off_ikey(perm.slot_at(p)));
            let mid = count / 2 + 1;
            let mut split_pos = None;
            for delta in 0..count {
                for cand in [mid.saturating_sub(delta), mid + delta] {
                    if cand >= 1 && cand < count && ikey_at(cand - 1) != ikey_at(cand) {
                        split_pos = Some(cand);
                        break;
                    }
                }
                if split_pos.is_some() {
                    break;
                }
            }
            let p = split_pos.expect("a full leaf holds at least two distinct ikeys");

            let right = self
                .new_leaf(tid, epoch, /*is_root*/ false, /*locked*/ true)
                .expect("arena full");
            let mut rperm = DPerm::empty();
            for (j, posn) in (p..count).enumerate() {
                let slot = perm.slot_at(posn);
                let rslot = rperm.insert_at(j);
                a.pwrite_u64(right + off_ikey(rslot), a.pread_u64(lf + off_ikey(slot)));
                self.set_klenx(right, rslot, self.klenx_at(lf, slot));
                a.pwrite_u64(right + off_val(rslot), a.pread_u64(lf + off_val(slot)));
            }
            a.pwrite_u64_release(right + OFF_PERM, rperm.raw());
            let sep = a.pread_u64(right + off_ikey(rperm.slot_at(0)));
            a.pwrite_u64(right + OFF_NEXT, a.pread_u64(lf + OFF_NEXT));
            a.pwrite_u64(right + OFF_PARENT, a.pread_u64(lf + OFF_PARENT));
            a.pwrite_u64_release(lf + OFF_NEXT, right);
            a.pwrite_u64_release(lf + OFF_PERM, perm.truncated(p).raw());

            self.insert_upward(ctx, epoch, holder, lf, right, sep);
            (right, sep)
        }
    }

    unsafe fn insert_upward(
        &self,
        ctx: &DCtx,
        epoch: u64,
        holder: u64,
        left: u64,
        right: u64,
        sep: u64,
    ) {
        unsafe {
            let a = &self.inner.arena;
            let tid = ctx.tid;
            loop {
                let p = a.pread_u64_acquire(left + OFF_PARENT);
                if p == 0 {
                    // Layer-root split: grow an interior root and swing the
                    // holder (both external-logged; the holder is tiny but
                    // must revert with everything else).
                    let nr = self
                        .new_interior(tid, epoch, /*is_root*/ true, /*locked*/ false)
                        .expect("arena full");
                    a.pwrite_u64(nr + off_int_key(0), sep);
                    a.pwrite_u64(nr + off_int_child(0), left);
                    a.pwrite_u64(nr + off_int_child(1), right);
                    a.pwrite_u64_release(nr + OFF_INT_NKEYS, 1);
                    a.pwrite_u64_release(left + OFF_PARENT, nr);
                    a.pwrite_u64_release(right + OFF_PARENT, nr);
                    self.log_holder(tid, epoch, holder);
                    a.pwrite_u64_release(holder, nr);
                    // Demote `left` (logged above by its split path): durable
                    // root bit then transient flag.
                    let m = a.pread_u64(left + OFF_META);
                    a.pwrite_u64_release(left + OFF_META, m & !meta::IS_ROOT);
                    pv::set_flag(a, left, pv::IS_ROOT, false);
                    return;
                }
                self.maybe_recover(p);
                pv::lock(a, p);
                if a.pread_u64_acquire(left + OFF_PARENT) != p {
                    pv::unlock(a, p, false, false);
                    continue;
                }
                let n = a.pread_u64(p + OFF_INT_NKEYS) as usize;
                if n < INT_WIDTH {
                    self.ensure_int_logged(tid, epoch, p);
                    self.interior_insert(p, sep, right);
                    pv::unlock(a, p, true, false);
                    return;
                }
                let (pr, psep) = self.split_interior(ctx, epoch, holder, p);
                let target = if sep < psep { p } else { pr };
                self.interior_insert(target, sep, right);
                pv::unlock(a, p, target == p, true);
                pv::unlock(a, pr, target == pr, false);
                return;
            }
        }
    }

    unsafe fn interior_insert(&self, pi: u64, sep: u64, right: u64) {
        let a = &self.inner.arena;
        pv::mark_dirty(a, pi, pv::DIRTY_INSERT);
        let n = a.pread_u64(pi + OFF_INT_NKEYS) as usize;
        let mut idx = 0;
        while idx < n && a.pread_u64(pi + off_int_key(idx)) < sep {
            idx += 1;
        }
        let mut j = n;
        while j > idx {
            a.pwrite_u64(pi + off_int_key(j), a.pread_u64(pi + off_int_key(j - 1)));
            a.pwrite_u64(
                pi + off_int_child(j + 1),
                a.pread_u64(pi + off_int_child(j)),
            );
            j -= 1;
        }
        a.pwrite_u64(pi + off_int_key(idx), sep);
        a.pwrite_u64(pi + off_int_child(idx + 1), right);
        a.pwrite_u64_release(pi + OFF_INT_NKEYS, n as u64 + 1);
        a.pwrite_u64_release(right + OFF_PARENT, pi);
    }

    unsafe fn split_interior(&self, ctx: &DCtx, epoch: u64, holder: u64, p: u64) -> (u64, u64) {
        unsafe {
            let a = &self.inner.arena;
            let tid = ctx.tid;
            self.ensure_int_logged(tid, epoch, p);
            pv::mark_dirty(a, p, pv::DIRTY_SPLIT);
            let n = a.pread_u64(p + OFF_INT_NKEYS) as usize;
            debug_assert_eq!(n, INT_WIDTH);
            let mid = n / 2;
            let psep = a.pread_u64(p + off_int_key(mid));

            let r = self
                .new_interior(tid, epoch, /*is_root*/ false, /*locked*/ true)
                .expect("arena full");
            let rcount = n - mid - 1;
            for j in 0..rcount {
                a.pwrite_u64(
                    r + off_int_key(j),
                    a.pread_u64(p + off_int_key(mid + 1 + j)),
                );
            }
            for j in 0..=rcount {
                let child = a.pread_u64(p + off_int_child(mid + 1 + j));
                a.pwrite_u64(r + off_int_child(j), child);
                // The move of the child's parent word is NOT logged here:
                // recovery re-derives every parent pointer from the restored
                // interior images (see `recovery.rs`), which both avoids
                // racing the (unlocked) child's own logging and keeps each
                // log target single-entry.
                self.maybe_recover(child);
                pv_store_parent(a, child, r);
            }
            a.pwrite_u64_release(r + OFF_INT_NKEYS, rcount as u64);
            a.pwrite_u64(r + OFF_PARENT, a.pread_u64(p + OFF_PARENT));
            a.pwrite_u64_release(p + OFF_INT_NKEYS, mid as u64);

            self.insert_upward(ctx, epoch, holder, p, r, psep);
            (r, psep)
        }
    }

    // ==================================================================
    // scan
    // ==================================================================

    unsafe fn scan_layer(
        &self,
        holder: u64,
        start: Option<KeyCursor<'_>>,
        prefix: &mut Vec<u8>,
        remaining: &mut usize,
        f: &mut dyn FnMut(&[u8], u64),
    ) -> bool {
        unsafe {
            let a = &self.inner.arena;
            let start_ikey = start.map(|c| c.ikey()).unwrap_or(0);
            let (mut lf, _) = self.find_leaf(holder, start_ikey);
            let mut first = true;
            loop {
                self.maybe_recover(lf);
                let mut entries: Vec<(u64, u8, u64)> = Vec::with_capacity(LEAF_WIDTH);
                let next;
                loop {
                    entries.clear();
                    let v = pv::stable(a, lf);
                    let perm = self.perm_of(lf);
                    for pos in 0..perm.len() {
                        let slot = perm.slot_at(pos);
                        entries.push((
                            a.pread_u64_acquire(lf + off_ikey(slot)),
                            self.klenx_at(lf, slot),
                            a.pread_u64_acquire(lf + off_val(slot)),
                        ));
                    }
                    let nx = a.pread_u64_acquire(lf + OFF_NEXT);
                    if !pv::changed(v, pv::load(a, lf)) {
                        next = nx;
                        break;
                    }
                }
                for &(k, kl, val) in &entries {
                    if first {
                        if let Some(sc) = start {
                            let skl = search_klenx(&sc);
                            match entry_cmp(k, kl, sc.ikey(), skl) {
                                std::cmp::Ordering::Less => continue,
                                std::cmp::Ordering::Equal
                                    if kl == KLEN_LAYER && !sc.is_terminal() =>
                                {
                                    let mut sub = sc;
                                    sub.descend();
                                    prefix.extend_from_slice(&k.to_be_bytes());
                                    let go = self.scan_layer(val, Some(sub), prefix, remaining, f);
                                    prefix.truncate(prefix.len() - 8);
                                    if !go {
                                        return false;
                                    }
                                    continue;
                                }
                                _ => {}
                            }
                        }
                    }
                    if kl == KLEN_LAYER {
                        prefix.extend_from_slice(&k.to_be_bytes());
                        let go = self.scan_layer(val, None, prefix, remaining, f);
                        prefix.truncate(prefix.len() - 8);
                        if !go {
                            return false;
                        }
                    } else {
                        let keylen = prefix.len() + kl as usize;
                        prefix.extend_from_slice(&ikey_bytes(k, kl));
                        f(&prefix[..keylen], val);
                        prefix.truncate(keylen - kl as usize);
                        *remaining -= 1;
                        if *remaining == 0 {
                            return false;
                        }
                    }
                }
                first = false;
                if next == 0 {
                    return true;
                }
                lf = next;
            }
        }
    }
}

/// Stores a node's parent word (helper shared by split paths).
fn pv_store_parent(a: &PArena, node: u64, parent: u64) {
    a.pwrite_u64_release(node + OFF_PARENT, parent);
}

/// Routes a key to one of `shards` (power-of-two) keyspace shards: FNV-1a
/// 64 over the key bytes, masked. Part of the on-media contract — the
/// same key must route identically across restarts.
#[inline]
pub(crate) fn shard_of(key: &[u8], shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (incll_extlog::fnv1a64(key) as usize) & (shards - 1)
    }
}

// ======================================================================
// Value-buffer codec (`[len: u64][payload bytes]`, size-classed)
// ======================================================================

/// Allocation size for a value of `len` bytes: length prefix + payload,
/// floored at the paper's 32-byte buffer so small values keep the §6
/// regime.
#[inline]
fn value_buf_size(len: usize) -> usize {
    (8 + len).max(VALUE_BUF_BYTES)
}

/// Reads a buffer's payload as the `u64` convenience encoding
/// (little-endian, written by [`DurableMasstree::put`]).
#[inline]
fn read_value_u64(a: &PArena, buf: u64) -> u64 {
    u64::from_le(a.pread_u64(buf + 8))
}

/// Copies a buffer's payload out.
pub(crate) fn read_value_bytes(a: &PArena, buf: u64) -> Vec<u8> {
    let len = a.pread_u64(buf) as usize;
    debug_assert!(len <= MAX_VALUE_BYTES, "corrupt value-buffer length");
    let mut out = vec![0u8; len];
    a.pread_bytes(buf + 8, &mut out);
    out
}

/// Appends a buffer's payload to `out` (the allocation-free read path:
/// `out`'s capacity is the caller's to reuse).
pub(crate) fn read_value_bytes_into(a: &PArena, buf: u64, out: &mut Vec<u8>) {
    let len = a.pread_u64(buf) as usize;
    debug_assert!(len <= MAX_VALUE_BYTES, "corrupt value-buffer length");
    let start = out.len();
    out.resize(start + len, 0);
    a.pread_bytes(buf + 8, &mut out[start..]);
}

impl std::fmt::Debug for DurableMasstree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableMasstree")
            .field("exec_epoch", &self.exec_epoch)
            .field("incll_enabled", &self.inner.incll_enabled)
            .field("failed_epochs", &self.inner.failed[self.shard_id].len())
            .field("shard", &self.shard_id)
            .field("shard_count", &self.inner.shard_count)
            .finish()
    }
}

// Keep AtomicU64 import alive for the doc examples in lib.rs.
#[allow(unused)]
type _A = AtomicU64;
