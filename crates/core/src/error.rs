//! The crate-wide error type for the public `Store` / tree API.
//!
//! Lower layers have their own error enums (`incll_pmem::Error`,
//! `incll_palloc::Error`); everything the public API can return is folded
//! into [`Error`] here so callers never need to name an internal crate.

use incll_palloc::{CLASS_SIZES, NUM_CLASSES};

/// Largest value accepted by byte-slice `put` (the biggest allocator size
/// class minus the 8-byte length prefix every value buffer carries).
pub const MAX_VALUE_BYTES: usize = CLASS_SIZES[NUM_CLASSES - 1] - 8;

/// Errors surfaced by the public API ([`crate::Store`],
/// [`crate::DurableMasstree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Underlying persistent-memory failure (arena exhaustion, bad
    /// capacity, full failed-epoch set, ...).
    Pmem(incll_pmem::Error),
    /// A value exceeds the largest durable-buffer size class.
    ValueTooLarge {
        /// The offending value length, in bytes.
        size: usize,
        /// The maximum supported length ([`MAX_VALUE_BYTES`]).
        max: usize,
    },
    /// All session slots are taken, or an explicit thread id is out of
    /// range: the store was opened with a bounded per-thread pool
    /// ([`crate::Options::threads`]) sizing its allocator free lists and
    /// external-log buffers.
    TooManyThreads {
        /// The configured slot count.
        limit: usize,
    },
    /// The arena carries an InCLL superblock of a different on-media
    /// layout version (e.g. pre-shard media); opening it would
    /// misinterpret the layout, and formatting it would destroy data, so
    /// neither happens.
    UnsupportedLayout {
        /// The version found on media.
        found: u64,
        /// The version this build reads and writes.
        expected: u64,
    },
    /// The requested shard count does not match the count fixed when the
    /// store was formatted ([`crate::Options::shards`] is a format-time
    /// property; reopen with the on-media value).
    ShardMismatch {
        /// The shard count the caller asked for.
        requested: usize,
        /// The shard count recorded in the superblock.
        on_media: usize,
    },
    /// The requested shard count is not a power of two in
    /// `1..=`[`incll_pmem::superblock::MAX_SHARDS`].
    InvalidShardCount {
        /// The offending count.
        requested: usize,
        /// The largest supported count.
        max: usize,
    },
    /// [`crate::Store::session_blocking`] waited out its deadline without
    /// any live [`crate::Session`] releasing a slot. Unlike
    /// [`Error::TooManyThreads`] (the immediate-mode failure), this means
    /// the pool stayed exhausted for the whole timeout.
    SessionTimeout {
        /// The configured slot count.
        limit: usize,
        /// How long the caller was willing to wait.
        waited: std::time::Duration,
    },
    /// A [`crate::WriteBatch`] staged more operations than one batch can
    /// carry ([`crate::MAX_BATCH_OPS`]): every staged op becomes an intent
    /// entry in the per-thread external log, so the cap bounds the log
    /// space one commit can pin. Split the work across batches.
    BatchTooLarge {
        /// The number of operations the caller tried to stage.
        ops: usize,
        /// The largest supported batch ([`crate::MAX_BATCH_OPS`]).
        max: usize,
    },
    /// An internal subsystem reported a condition with no dedicated
    /// variant (future-proofing against `#[non_exhaustive]` sources).
    Internal(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Pmem(e) => write!(f, "persistent memory error: {e}"),
            Error::ValueTooLarge { size, max } => {
                write!(f, "value of {size} bytes exceeds the {max}-byte maximum")
            }
            Error::TooManyThreads { limit } => {
                write!(
                    f,
                    "no usable thread slot: the store has {limit} (all in use, \
                     or the requested tid is out of range)"
                )
            }
            Error::UnsupportedLayout { found, expected } => {
                write!(
                    f,
                    "arena holds an InCLL store with on-media layout version \
                     {found}, but this build speaks version {expected}"
                )
            }
            Error::ShardMismatch {
                requested,
                on_media,
            } => {
                write!(
                    f,
                    "shard count is fixed at format time: the store on media \
                     has {on_media} shard(s), but {requested} were requested"
                )
            }
            Error::InvalidShardCount { requested, max } => {
                write!(
                    f,
                    "invalid shard count {requested}: must be a power of two \
                     between 1 and {max}"
                )
            }
            Error::SessionTimeout { limit, waited } => {
                write!(
                    f,
                    "no session slot released within {waited:?}: all {limit} \
                     remained held for the whole wait"
                )
            }
            Error::BatchTooLarge { ops, max } => {
                write!(
                    f,
                    "write batch of {ops} operations exceeds the {max}-op \
                     maximum"
                )
            }
            Error::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<incll_pmem::Error> for Error {
    fn from(e: incll_pmem::Error) -> Self {
        Error::Pmem(e)
    }
}

impl From<incll_palloc::Error> for Error {
    fn from(e: incll_palloc::Error) -> Self {
        match e {
            incll_palloc::Error::Pmem(p) => Error::Pmem(p),
            incll_palloc::Error::UnsupportedSize { size } => Error::ValueTooLarge {
                // Allocation sizes include the 8-byte length prefix; report
                // the value length the caller asked for.
                size: size.saturating_sub(8),
                max: MAX_VALUE_BYTES,
            },
            other => Error::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            Error::Pmem(incll_pmem::Error::FailedEpochSetFull),
            Error::ValueTooLarge {
                size: 9000,
                max: MAX_VALUE_BYTES,
            },
            Error::TooManyThreads { limit: 4 },
            Error::UnsupportedLayout {
                found: 1,
                expected: 2,
            },
            Error::ShardMismatch {
                requested: 4,
                on_media: 2,
            },
            Error::InvalidShardCount {
                requested: 3,
                max: 64,
            },
            Error::BatchTooLarge {
                ops: 2000,
                max: 1024,
            },
            Error::SessionTimeout {
                limit: 4,
                waited: std::time::Duration::from_millis(50),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn palloc_errors_fold_in() {
        let e: Error = incll_palloc::Error::UnsupportedSize { size: 5000 }.into();
        assert!(matches!(e, Error::ValueTooLarge { .. }));
        let e: Error = incll_palloc::Error::Pmem(incll_pmem::Error::FailedEpochSetFull).into();
        assert_eq!(e, Error::Pmem(incll_pmem::Error::FailedEpochSetFull));
    }

    #[test]
    fn max_value_tracks_the_largest_class() {
        assert_eq!(MAX_VALUE_BYTES + 8, CLASS_SIZES[NUM_CLASSES - 1]);
    }
}
