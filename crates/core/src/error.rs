//! The crate-wide error type for the public `Store` / tree API.
//!
//! Lower layers have their own error enums (`incll_pmem::Error`,
//! `incll_palloc::Error`); everything the public API can return is folded
//! into [`Error`] here so callers never need to name an internal crate.

use incll_palloc::{CLASS_SIZES, NUM_CLASSES};

/// Largest value accepted by byte-slice `put` (the biggest allocator size
/// class minus the 8-byte length prefix every value buffer carries).
pub const MAX_VALUE_BYTES: usize = CLASS_SIZES[NUM_CLASSES - 1] - 8;

/// Errors surfaced by the public API ([`crate::Store`],
/// [`crate::DurableMasstree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Underlying persistent-memory failure (arena exhaustion, bad
    /// capacity, full failed-epoch set, ...).
    Pmem(incll_pmem::Error),
    /// A value exceeds the largest durable-buffer size class.
    ValueTooLarge {
        /// The offending value length, in bytes.
        size: usize,
        /// The maximum supported length ([`MAX_VALUE_BYTES`]).
        max: usize,
    },
    /// All session slots are taken, or an explicit thread id is out of
    /// range: the store was opened with a bounded per-thread pool
    /// ([`crate::Options::threads`]) sizing its allocator free lists and
    /// external-log buffers.
    TooManyThreads {
        /// The configured slot count.
        limit: usize,
    },
    /// An internal subsystem reported a condition with no dedicated
    /// variant (future-proofing against `#[non_exhaustive]` sources).
    Internal(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Pmem(e) => write!(f, "persistent memory error: {e}"),
            Error::ValueTooLarge { size, max } => {
                write!(f, "value of {size} bytes exceeds the {max}-byte maximum")
            }
            Error::TooManyThreads { limit } => {
                write!(
                    f,
                    "no usable thread slot: the store has {limit} (all in use, \
                     or the requested tid is out of range)"
                )
            }
            Error::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<incll_pmem::Error> for Error {
    fn from(e: incll_pmem::Error) -> Self {
        Error::Pmem(e)
    }
}

impl From<incll_palloc::Error> for Error {
    fn from(e: incll_palloc::Error) -> Self {
        match e {
            incll_palloc::Error::Pmem(p) => Error::Pmem(p),
            incll_palloc::Error::UnsupportedSize { size } => Error::ValueTooLarge {
                // Allocation sizes include the 8-byte length prefix; report
                // the value length the caller asked for.
                size: size.saturating_sub(8),
                max: MAX_VALUE_BYTES,
            },
            other => Error::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            Error::Pmem(incll_pmem::Error::FailedEpochSetFull),
            Error::ValueTooLarge {
                size: 9000,
                max: MAX_VALUE_BYTES,
            },
            Error::TooManyThreads { limit: 4 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn palloc_errors_fold_in() {
        let e: Error = incll_palloc::Error::UnsupportedSize { size: 5000 }.into();
        assert!(matches!(e, Error::ValueTooLarge { .. }));
        let e: Error = incll_palloc::Error::Pmem(incll_pmem::Error::FailedEpochSetFull).into();
        assert_eq!(e, Error::Pmem(incll_pmem::Error::FailedEpochSetFull));
    }

    #[test]
    fn max_value_tracks_the_largest_class() {
        assert_eq!(MAX_VALUE_BYTES + 8, CLASS_SIZES[NUM_CLASSES - 1]);
    }
}
