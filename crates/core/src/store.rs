//! The `Store` facade: unified lifecycle, RAII sessions, byte-slice
//! values, and iterator scans.
//!
//! [`Store`] is the front door of the crate. It wraps the durable Masstree
//! behind an embedded-KV-store shape:
//!
//! * **One-call lifecycle** — [`Store::open`] formats an empty arena,
//!   creates a fresh store, or recovers an existing one, and always
//!   returns a [`RecoveryReport`] describing what happened.
//! * **RAII sessions** — [`Store::session`] hands out a slot from the
//!   bounded per-thread pool ([`Options::threads`]); dropping the
//!   [`Session`] releases it. No unchecked thread ids.
//! * **Byte-slice values** — [`Store::put`]/[`Store::get`] move `&[u8]`
//!   values in and out of length-prefixed, size-classed durable buffers
//!   (§5), with [`Store::put_u64`]/[`Store::get_u64`] as the paper's
//!   8-byte-payload convenience.
//! * **Zero-copy reads** — [`Store::get_ref`] returns a borrowed
//!   [`ValueRef`] view of the value bytes in place, backed by an epoch
//!   read pin; `get`/`get_into`/`get_u64` are wrappers over it.
//! * **Scans** — callback ([`Store::scan`]) and iterator
//!   ([`Store::range`], [`Store::iter`]) forms, both in global key order.
//! * **Sharding** — [`Options::shards`] hash partitions the keyspace over
//!   N independent durable trees, **each with its own epoch domain**:
//!   point ops route by key hash, scans k-way merge, and every shard
//!   checkpoints ([`Store::checkpoint_shard`]) and crash-recovers on its
//!   own cadence ([`Store::checkpoint`] remains the all-shards barrier).
//!   See the crate docs' "crash semantics under independent cadences".
//!
//! ```
//! use incll_pmem::PArena;
//! use incll::{Options, Store};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arena = PArena::builder().capacity_bytes(16 << 20).build()?;
//! let opts = Options::new().threads(1).log_bytes_per_thread(1 << 20);
//! let (store, report) = Store::open(&arena, opts)?;
//! assert!(report.created);
//! let sess = store.session()?;
//! store.put(&sess, b"k", b"some bytes")?;
//! assert_eq!(store.get(&sess, b"k").as_deref(), Some(&b"some bytes"[..]));
//! store.checkpoint(); // durable from here on
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::ops::{Bound, RangeBounds};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use incll_epoch::{AdvanceDriver, Cadence, EpochManager, Guard};
use incll_pmem::{superblock, PArena};

use crate::error::Error;
use crate::recovery::RecoveryReport;
use crate::tree::{DCtx, DurableConfig, DurableMasstree, ValueRef};

/// Builder-style construction options for [`Store::open`].
///
/// The defaults match [`DurableConfig::default`]: 8 thread slots, 16 MiB
/// of external log per thread, InCLL enabled, 1 shard.
#[derive(Debug, Clone)]
pub struct Options {
    config: DurableConfig,
    cadence: Option<Cadence>,
}

impl Options {
    /// Default options.
    pub fn new() -> Self {
        Options {
            config: DurableConfig::default(),
            cadence: None,
        }
    }

    /// Session-slot count (per-thread allocator lists + log buffers).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// External-log capacity per thread, in bytes.
    #[must_use]
    pub fn log_bytes_per_thread(mut self, bytes: usize) -> Self {
        self.config.log_bytes_per_thread = bytes;
        self
    }

    /// `false` selects the paper's LOGGING ablation (external log only).
    #[must_use]
    pub fn incll(mut self, enabled: bool) -> Self {
        self.config.incll_enabled = enabled;
        self
    }

    /// Keyspace shard count: the store holds `shards` independent durable
    /// trees, one epoch domain each, and routes every operation by key
    /// hash. Must be a power of two in
    /// `1..=`[`incll_pmem::superblock::MAX_SHARDS`]; the default 1
    /// reproduces the unsharded layout and behavior exactly.
    ///
    /// The count is **fixed at format time**: it decides where every key
    /// lives, so reopening an existing store with a different value is a
    /// typed error ([`crate::Error::ShardMismatch`]), never a silent
    /// re-rout.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Worker threads [`Store::open`] spreads per-shard crash recovery
    /// over (clamped to the shard count; values below 1 read as 1 =
    /// sequential replay). Purely a restart-latency knob: the recovered
    /// state is byte-identical at every worker count, because each shard's
    /// recovery touches only shard-owned state.
    ///
    /// Defaults to the `INCLL_RECOVERY_THREADS` environment variable when
    /// set, else 1.
    #[must_use]
    pub fn recovery_threads(mut self, workers: usize) -> Self {
        self.config.recovery_threads = workers.max(1);
        self
    }

    /// Background checkpoint cadence: [`Store::open`] spawns an
    /// [`incll_epoch::AdvanceDriver`] applying this policy to **every**
    /// shard's epoch domain, and the store owns the driver for its
    /// lifetime (it stops when the last clone drops). Accepts a
    /// [`Cadence`], an [`incll_epoch::DomainCadence`] (static), or an
    /// [`incll_epoch::AdaptiveCadence`] (the measured controller) — see
    /// the crate docs' "Cadence tuning and persistence granularity".
    ///
    /// Without this option no driver is spawned (today's behavior):
    /// checkpoints come from explicit [`Store::checkpoint`] /
    /// [`Store::checkpoint_shard`] calls or a driver the caller manages
    /// on [`Store::epoch_manager`].
    #[must_use]
    pub fn cadence(mut self, cadence: impl Into<Cadence>) -> Self {
        self.cadence = Some(cadence.into());
        self
    }

    /// External-log batched-persistence threshold in bytes
    /// ([`DurableConfig::persistence_granularity`]): 0 (the default)
    /// keeps the paper's eager per-entry `clwb`+`sfence`; a nonzero
    /// value coalesces a [`Session::batch`]'s *intent* entries into one
    /// flush+fence per that many staged bytes — or fewer, at the commit
    /// (before its record) and at every checkpoint boundary. Undo
    /// pre-images always seal before the modification they guard
    /// (write-ahead), so crash semantics are unchanged. Purely a
    /// runtime knob: any value opens any v5 media.
    #[must_use]
    pub fn persistence_granularity(mut self, bytes: usize) -> Self {
        self.config.persistence_granularity = bytes;
        self
    }

    /// The low-level configuration these options describe (crate-internal:
    /// the mid-level [`DurableConfig`] is not part of the facade's stable
    /// surface).
    pub(crate) fn to_config(&self) -> DurableConfig {
        self.config.clone()
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::new()
    }
}

/// Bounded pool of per-thread slots backing [`Session`]s.
struct SlotPool {
    free: Mutex<Vec<usize>>,
    /// Signalled once per released slot ([`Session::drop`]), waking one
    /// [`Store::session_blocking`] waiter.
    released: Condvar,
    limit: usize,
}

impl SlotPool {
    fn new(limit: usize) -> Arc<Self> {
        Arc::new(SlotPool {
            // Reversed so the first session gets slot 0.
            free: Mutex::new((0..limit).rev().collect()),
            released: Condvar::new(),
            limit,
        })
    }

    fn lock_free(&self) -> std::sync::MutexGuard<'_, Vec<usize>> {
        // Slot pushes/pops cannot panic, so the lock cannot be poisoned.
        self.free.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A registered operation handle: one slot from the store's bounded
/// per-thread pool, released automatically on drop.
///
/// Obtain via [`Store::session`]; pass by reference to every operation.
/// A `Session` is single-threaded state (`!Sync` use pattern: one per
/// worker thread), but may be *moved* across threads.
pub struct Session {
    ctx: DCtx,
    pool: Arc<SlotPool>,
    tid: usize,
    /// The owning store (clones share everything), so batch commit can
    /// route staged keys and reach shared batch-commit state.
    store: Store,
}

impl Session {
    /// The slot id this session occupies.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Pins shard 0's epoch domain for a multi-operation sequence. Each
    /// shard checkpoints independently; use [`Session::pin_shard`] (with
    /// [`Store::shard_of`]) to hold a specific shard's boundary.
    pub fn pin(&self) -> Guard<'_> {
        self.ctx.pin()
    }

    /// Pins shard `shard`'s epoch domain: that shard cannot take a
    /// checkpoint while the guard lives.
    pub fn pin_shard(&self, shard: usize) -> Guard<'_> {
        self.ctx.pin_shard(shard)
    }

    /// Starts an empty [`crate::WriteBatch`]: a staged set of puts and
    /// deletes that commits **atomically across shards** — after a crash,
    /// recovery surfaces either every operation of the batch or none of
    /// them, even though the touched shards checkpoint on independent
    /// cadences. Batches whose keys all land on one shard skip the
    /// cross-shard machinery entirely (see `crate::batch`).
    ///
    /// ```
    /// # use incll_pmem::PArena;
    /// # use incll::{Options, Store};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let arena = PArena::builder().capacity_bytes(16 << 20).build()?;
    /// # let (store, _) = Store::open(&arena, Options::new().threads(1)
    /// #     .log_bytes_per_thread(1 << 20).shards(2))?;
    /// # let sess = store.session()?;
    /// let mut batch = sess.batch();
    /// batch.put(b"debit:alice", b"-10")?;
    /// batch.put(b"credit:bob", b"+10")?;
    /// batch.commit()?; // both keys or neither, on any crash
    /// # Ok(())
    /// # }
    /// ```
    pub fn batch(&self) -> crate::batch::WriteBatch<'_> {
        crate::batch::WriteBatch::new(self)
    }

    /// The owning store (batch commit's route back to shared state).
    pub(crate) fn store(&self) -> &Store {
        &self.store
    }

    /// The mid-level per-thread context — an **unstable escape hatch** for
    /// APIs that still speak [`DurableMasstree`]; its shape may change in
    /// any release. Using it keeps the slot under the pool's accounting —
    /// prefer it over a separate [`DurableMasstree::thread_ctx`] call,
    /// which the pool cannot see. See [`Store::masstree`] for the routing
    /// hazards of bypassing the facade on a sharded store.
    pub fn ctx(&self) -> &DCtx {
        &self.ctx
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.pool.lock_free().push(self.tid);
        self.pool.released.notify_one();
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("tid", &self.tid).finish()
    }
}

/// A durable, crash-recoverable key-value store (see module docs).
///
/// Cheap to clone; all clones share the underlying trees and session pool.
///
/// # Sharding
///
/// When opened with [`Options::shards`]` > 1`, the keyspace is hash
/// partitioned over that many independent durable trees. Point operations
/// route by key hash; [`Store::scan`], [`Store::range`] and [`Store::iter`]
/// merge the per-shard trees lazily into one globally key-ordered stream.
/// Every shard is its **own epoch domain**: [`Store::checkpoint_shard`]
/// (or a per-domain driver cadence) makes one shard durable, stalling
/// only sessions pinned in it, and a crash rolls each shard back to its
/// own last completed boundary. [`Store::checkpoint`] is the all-domains
/// barrier yielding one common cross-shard point-in-time.
#[derive(Clone)]
pub struct Store {
    /// One handle per shard; `shards[0]` doubles as the lifecycle handle
    /// (epoch manager, allocator, arena).
    shards: Vec<DurableMasstree>,
    slots: Arc<SlotPool>,
    /// The background cadence driver [`Options::cadence`] asked for
    /// (`None` without that option). Shared by every clone; the driver
    /// stops when the last clone drops.
    driver: Option<Arc<AdvanceDriver>>,
}

impl Store {
    /// Opens the store in `arena`, doing whatever the arena's state calls
    /// for: **format** if the arena is blank, **create** if it holds no
    /// store yet, **recover** otherwise (uniform across crashes and clean
    /// shutdowns). The report says which path ran
    /// ([`RecoveryReport::created`]) and what recovery replayed — per
    /// shard, in [`RecoveryReport::per_shard`].
    ///
    /// # Errors
    ///
    /// Arena exhaustion while creating; a full failed-epoch set while
    /// recovering; [`Error::UnsupportedLayout`] when the arena carries a
    /// superblock of a different on-media version (e.g. pre-shard media —
    /// never silently reformatted); [`Error::InvalidShardCount`] /
    /// [`Error::ShardMismatch`] when [`Options::shards`] is malformed or
    /// disagrees with the count fixed at format time.
    pub fn open(arena: &PArena, options: Options) -> Result<(Store, RecoveryReport), Error> {
        let config = options.to_config();
        // Reject malformed options before any media write: a blank arena
        // handed a bad shard count must stay blank.
        crate::tree::validate_shard_count(config.shards)?;
        if !superblock::is_formatted(arena) {
            if superblock::has_magic(arena) {
                // A store from another layout generation: refuse to guess,
                // and above all refuse to reformat over it.
                return Err(Error::UnsupportedLayout {
                    found: superblock::raw_version(arena),
                    expected: superblock::VERSION,
                });
            }
            superblock::format(arena);
        }
        let (tree, report) = if arena.pread_u64(superblock::SB_TREE_META) == 1 {
            DurableMasstree::open(arena, config)?
        } else {
            let tree = DurableMasstree::create(arena, config)?;
            let report = RecoveryReport {
                created: true,
                failed_epoch: 0,
                failed_epochs: Vec::new(),
                replayed_entries: 0,
                replayed_bytes: 0,
                replay_time: Duration::ZERO,
                parallel_workers: 0,
                per_shard: Vec::new(),
            };
            (tree, report)
        };
        let slots = SlotPool::new(tree.allocator().threads());
        let shards: Vec<DurableMasstree> = (0..tree.shard_count()).map(|i| tree.shard(i)).collect();
        let driver = options.cadence.map(|c| {
            Arc::new(AdvanceDriver::spawn_per_domain(
                tree.epoch_manager().clone(),
                vec![c; shards.len()],
            ))
        });
        Ok((
            Store {
                shards,
                slots,
                driver,
            },
            report,
        ))
    }

    /// Acquires a session slot from the bounded pool.
    ///
    /// # Errors
    ///
    /// [`Error::TooManyThreads`] when every configured slot
    /// ([`Options::threads`]) is held by a live [`Session`]. To wait for
    /// a slot instead of failing, use [`Store::session_blocking`].
    pub fn session(&self) -> Result<Session, Error> {
        let tid = self.slots.lock_free().pop().ok_or(Error::TooManyThreads {
            limit: self.slots.limit,
        })?;
        Ok(self.session_from_slot(tid))
    }

    /// Acquires a session slot, **waiting** up to `timeout` for one to be
    /// released when the pool is exhausted. The fairness is the pool's
    /// (each released slot wakes one waiter); a zero timeout degenerates
    /// to [`Store::session`]'s try-acquire.
    ///
    /// This is the front door for servers mapping more client connections
    /// than the store has session slots ([`Options::threads`]): a worker
    /// that would have gotten a hard [`Error::TooManyThreads`] instead
    /// rides out a short burst, and only a genuinely wedged pool (a slot
    /// held past the deadline) surfaces an error.
    ///
    /// # Errors
    ///
    /// [`Error::SessionTimeout`] when no slot was released within
    /// `timeout`.
    pub fn session_blocking(&self, timeout: Duration) -> Result<Session, Error> {
        let deadline = Instant::now() + timeout;
        let mut free = self.slots.lock_free();
        loop {
            if let Some(tid) = free.pop() {
                drop(free);
                return Ok(self.session_from_slot(tid));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::SessionTimeout {
                    limit: self.slots.limit,
                    waited: timeout,
                });
            }
            // Spurious wakeups and steals (another waiter popping first)
            // both land back on the pop-or-wait loop above.
            let (guard, _timeout_result) = self
                .slots
                .released
                .wait_timeout(free, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            free = guard;
        }
    }

    /// Wraps an already-popped pool slot in a [`Session`].
    fn session_from_slot(&self, tid: usize) -> Session {
        let ctx = self.shards[0]
            .thread_ctx(tid)
            .expect("pool slots are within the configured range");
        Session {
            ctx,
            pool: Arc::clone(&self.slots),
            tid,
            store: self.clone(),
        }
    }

    // ==================================================================
    // Operations
    // ==================================================================

    /// The shard tree `key` routes to.
    #[inline]
    fn route(&self, key: &[u8]) -> &DurableMasstree {
        &self.shards[crate::tree::shard_of(key, self.shards.len())]
    }

    /// Inserts or updates `key`, returning a copy of the previous value.
    ///
    /// The value lands in a fresh length-prefixed durable buffer from the
    /// size class fitting it; like every operation here, no cache-line
    /// flush or fence runs on this path.
    ///
    /// # Errors
    ///
    /// [`Error::ValueTooLarge`] above [`crate::MAX_VALUE_BYTES`].
    pub fn put(&self, sess: &Session, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, Error> {
        self.route(key).put_bytes(&sess.ctx, key, value)
    }

    /// [`Store::put`] consuming a value buffer reserved earlier on the
    /// key's shard (the batch commit path's pre-reservation hook).
    pub(crate) fn put_with_buf(
        &self,
        sess: &Session,
        key: &[u8],
        value: &[u8],
        buf: Option<u64>,
    ) -> Result<Option<Vec<u8>>, Error> {
        self.route(key)
            .put_bytes_with_buf(&sess.ctx, key, value, buf)
    }

    /// Looks up `key`, returning a **borrowed, zero-copy** view of its
    /// value bytes in place in the durable buffer.
    ///
    /// The returned [`ValueRef`] dereferences to `&[u8]` without copying
    /// a byte; it holds a read pin on the key's shard, so that one shard
    /// cannot checkpoint until the view is dropped (other shards are
    /// unaffected). Concurrent overwrites or removes of the key leave the
    /// viewed bytes intact — the reader always sees a complete old-or-
    /// current value, never a torn one — and can be detected with
    /// [`ValueRef::is_stale`]. [`Store::get`], [`Store::get_into`] and
    /// [`Store::get_u64`] are all thin wrappers over this method.
    ///
    /// ```
    /// # use incll_pmem::PArena;
    /// # use incll::{Options, Store};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let arena = PArena::builder().capacity_bytes(16 << 20).build()?;
    /// # let (store, _) = Store::open(&arena, Options::new().threads(1)
    /// #     .log_bytes_per_thread(1 << 20))?;
    /// # let sess = store.session()?;
    /// store.put(&sess, b"k", b"value bytes")?;
    /// let v = store.get_ref(&sess, b"k").unwrap();
    /// assert_eq!(&*v, b"value bytes"); // no allocation, no copy
    /// assert!(!v.is_stale());
    /// drop(v); // releases the shard's read pin
    /// # Ok(())
    /// # }
    /// ```
    pub fn get_ref<'s>(&'s self, sess: &'s Session, key: &[u8]) -> Option<ValueRef<'s>> {
        self.route(key).get_ref(&sess.ctx, key)
    }

    /// Looks up `key`, returning a copy of its value.
    ///
    /// Exactly [`Store::get_ref`] + [`ValueRef::to_vec`]: one allocation
    /// and one copy per hit. Prefer [`Store::get_ref`] on read-heavy hot
    /// paths and [`Store::get_into`] when a reusable buffer is at hand.
    pub fn get(&self, sess: &Session, key: &[u8]) -> Option<Vec<u8>> {
        self.get_ref(sess, key).map(|v| v.to_vec())
    }

    /// Looks up `key`, writing its value into `out` (cleared first) and
    /// returning whether the key was present. The allocation-free twin of
    /// [`Store::get`]: the caller's buffer (and its capacity) is reused
    /// across lookups, eliminating the per-`get` allocation on byte-value
    /// hot paths.
    ///
    /// ```
    /// # use incll_pmem::PArena;
    /// # use incll::{Options, Store};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let arena = PArena::builder().capacity_bytes(16 << 20).build()?;
    /// # let (store, _) = Store::open(&arena, Options::new().threads(1)
    /// #     .log_bytes_per_thread(1 << 20))?;
    /// # let sess = store.session()?;
    /// store.put(&sess, b"k", b"value bytes")?;
    /// let mut buf = Vec::new();
    /// assert!(store.get_into(&sess, b"k", &mut buf));
    /// assert_eq!(&buf, b"value bytes");
    /// assert!(!store.get_into(&sess, b"missing", &mut buf));
    /// assert!(buf.is_empty());
    /// # Ok(())
    /// # }
    /// ```
    pub fn get_into(&self, sess: &Session, key: &[u8], out: &mut Vec<u8>) -> bool {
        out.clear();
        match self.get_ref(sess, key) {
            Some(v) => {
                out.extend_from_slice(&v);
                true
            }
            None => false,
        }
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&self, sess: &Session, key: &[u8]) -> bool {
        self.route(key).remove(&sess.ctx, key)
    }

    /// [`Store::put`] for the paper's 8-byte payloads (stored
    /// little-endian; interchangeable with the byte-slice form).
    ///
    /// The returned previous payload is meaningful only when the previous
    /// value was itself 8 bytes; for mixed-width keys use [`Store::put`],
    /// which returns the full previous value.
    pub fn put_u64(&self, sess: &Session, key: &[u8], value: u64) -> Option<u64> {
        self.route(key).put(&sess.ctx, key, value)
    }

    /// [`Store::get`] for the paper's 8-byte payloads.
    ///
    /// Routed through the borrowed read path: equivalent to
    /// `store.get(&sess, key)` followed by a little-endian `u64` decode
    /// of the 8-byte value, but decodes in place via
    /// [`ValueRef::as_u64`] — no allocation, no byte copy.
    pub fn get_u64(&self, sess: &Session, key: &[u8]) -> Option<u64> {
        self.get_ref(sess, key).map(|v| v.as_u64())
    }

    /// Scans at most `limit` keys ≥ `start` in **global** key order,
    /// passing each (key, value) pair to `f`. Returns the number visited.
    ///
    /// On a sharded store this is the k-way merge of the per-shard trees.
    /// Like [`Store::range`], the scan is an **epoch-snapshot** scan: it
    /// pins a shard's epoch only for the duration of each batch refill
    /// (never across calls to `f`), so an arbitrarily long or slow scan
    /// never blocks any shard's checkpoint — `f` may itself call
    /// [`Store::checkpoint_shard`].
    pub fn scan(
        &self,
        sess: &Session,
        start: &[u8],
        limit: usize,
        f: &mut dyn FnMut(&[u8], &[u8]),
    ) -> usize {
        if limit == 0 {
            return 0;
        }
        let mut merge = self.range(sess, start..);
        // Small limits must not pull a full batch per shard: each cursor
        // copies every fetched value, so clamp the refill size.
        merge.batch = limit.min(RANGE_BATCH);
        let mut visited = 0usize;
        for (key, value) in merge {
            f(&key, &value);
            visited += 1;
            if visited == limit {
                break;
            }
        }
        visited
    }

    /// Iterates `(key, value)` pairs over a key range, in **global** key
    /// order (a lazy k-way merge over the per-shard trees).
    ///
    /// Bounds are byte strings: `store.range(&sess, &b"a"[..]..&b"m"[..])`.
    /// For the full store use [`Store::iter`].
    ///
    /// The iterator is an **epoch-snapshot** scan: no epoch pin is held
    /// between `next()` calls. Each shard cursor pins its shard's domain
    /// only while refilling one bounded batch, then re-finds its position
    /// by a fresh descent from the successor of the last key it saw — so
    /// a scan held open indefinitely never delays any shard's
    /// `advance_domain`, and checkpoints taken mid-scan are perfectly
    /// legal (each batch observes a state at least as new as the last).
    pub fn range<'s, K, R>(&'s self, sess: &'s Session, bounds: R) -> RangeScan<'s>
    where
        K: AsRef<[u8]>,
        R: RangeBounds<K>,
    {
        let start = match bounds.start_bound() {
            Bound::Unbounded => Vec::new(),
            Bound::Included(k) => k.as_ref().to_vec(),
            Bound::Excluded(k) => successor(k.as_ref().to_vec()),
        };
        let end = match bounds.end_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(k.as_ref().to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.as_ref().to_vec()),
        };
        RangeScan {
            store: self,
            sess,
            end,
            batch: RANGE_BATCH,
            cursors: (0..self.shards.len())
                .map(|shard| ShardCursor {
                    shard,
                    next_start: Some(start.clone()),
                    buf: VecDeque::new(),
                })
                .collect(),
        }
    }

    /// Iterates every `(key, value)` pair in order.
    pub fn iter<'s>(&'s self, sess: &'s Session) -> RangeScan<'s> {
        self.range::<&[u8], _>(sess, ..)
    }

    // ==================================================================
    // Lifecycle & introspection
    // ==================================================================

    /// Takes a checkpoint of **every** shard now (the all-domains
    /// barrier): everything written so far — on every shard — survives
    /// any later crash. Advances each shard's epoch domain in shard
    /// order; returns shard 0's new epoch.
    ///
    /// For a scoped checkpoint that stalls only one shard's sessions, use
    /// [`Store::checkpoint_shard`]. (Background cadence:
    /// [`incll_epoch::AdvanceDriver`] — per-domain cadences via
    /// [`incll_epoch::AdvanceDriver::spawn_per_domain`] — on
    /// [`Store::epoch_manager`].)
    pub fn checkpoint(&self) -> u64 {
        self.shards[0].epoch_manager().advance()
    }

    /// Takes a checkpoint of shard `shard` only: everything written to
    /// **that shard** so far survives any later crash, and only sessions
    /// currently operating in that shard are (briefly) stalled. Other
    /// shards' epochs, logs and in-flight work are untouched. Returns the
    /// shard's new epoch.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn checkpoint_shard(&self, shard: usize) -> u64 {
        assert!(shard < self.shards.len(), "shard out of range");
        self.shards[0].epoch_manager().advance_domain(shard)
    }

    /// Permanently stops the background cadence driver, if
    /// [`Options::cadence`] spawned one (no-op otherwise): no further
    /// automatic checkpoints fire on any shard, while explicit
    /// [`Store::checkpoint`] / [`Store::checkpoint_shard`] keep working.
    /// For controlled teardowns: a crash-measurement harness freezes the
    /// cadence *before* quiescing its writers, so a backlogged driver
    /// can't spend the sudden idle time on a final catch-up advance that
    /// erases the undo exposure the harness is about to measure.
    pub fn halt_cadence(&self) {
        if let Some(d) = &self.driver {
            d.halt();
        }
    }

    /// The epoch authority driving fine-grain checkpoints (shared by every
    /// shard).
    pub fn epoch_manager(&self) -> &EpochManager {
        self.shards[0].epoch_manager()
    }

    /// The underlying arena (stats counters, latency knobs).
    pub fn arena(&self) -> &PArena {
        self.shards[0].arena()
    }

    /// The configured session-slot count.
    pub fn threads(&self) -> usize {
        self.slots.limit
    }

    /// The keyspace shard count fixed when this store was formatted.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to (stable across restarts).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        crate::tree::shard_of(key, self.shards.len())
    }

    /// Checkpoint observability for shard `i`: the write-rate counters an
    /// adaptive cadence controller steers by ([`ShardStats::bytes_logged`]
    /// and friends), plus the shard's current epoch and — when
    /// [`Options::cadence`] spawned the store's driver — the interval the
    /// controller is currently running the shard at.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn shard_stats(&self, i: usize) -> ShardStats {
        assert!(i < self.shards.len(), "shard out of range");
        let mgr = self.epoch_manager();
        let c = mgr.domain_counters(i);
        ShardStats {
            epoch: mgr.current_epoch_of(i),
            bytes_logged: c.bytes_logged,
            bytes_since_boundary: c.bytes_since_boundary,
            advances_fired: c.advances_fired,
            advances_skipped: c.advances_skipped,
            current_interval: self.driver.as_ref().and_then(|d| d.current_interval(i)),
        }
    }

    /// Extent-pool observability: the pool descriptor
    /// `(pool_base, extent_bytes, extent_count)` plus the number of
    /// extents each shard currently owns (create claims one per shard;
    /// hot shards claim more online). `None` on `shards(1)`, which
    /// carves from the arena's single implicit chain. Diagnostics /
    /// experiments.
    pub fn extent_stats(&self) -> Option<ExtentStats> {
        let alloc = self.shards[0].allocator();
        let (pool_base, extent_bytes, extent_count) = alloc.extent_pool()?;
        Some(ExtentStats {
            pool_base,
            extent_bytes,
            extent_count,
            owned_per_shard: (0..self.shards.len())
                .map(|d| alloc.owned_extents(d).len())
                .collect(),
        })
    }

    /// Shard `i`'s tree handle (crate-internal: batch commit and recovery
    /// resolution reach per-shard state through it).
    pub(crate) fn shard_tree(&self, i: usize) -> &DurableMasstree {
        &self.shards[i]
    }

    /// The mid-level tree behind **shard 0** — an **unstable escape
    /// hatch**; the facade is the supported surface and this accessor's
    /// shape may change in any release. Reach the other shards through
    /// [`DurableMasstree::shard`].
    ///
    /// Two hazards when bypassing the facade:
    ///
    /// * **Slots** — the session pool and [`DurableMasstree::thread_ctx`]
    ///   hand out the **same** per-thread slots without knowing about each
    ///   other: do not run a raw `thread_ctx(tid)` context concurrently
    ///   with sessions, or two owners of one allocator free list / log
    ///   buffer can race. Use [`Session::ctx`] to reach mid-level APIs
    ///   from a pooled slot.
    /// * **Routing** — on a sharded store a `DurableMasstree` handle
    ///   speaks to one shard's tree only; a key written there is invisible
    ///   to the facade unless it lives on its hash shard
    ///   ([`Store::shard_of`]).
    pub fn masstree(&self) -> &DurableMasstree {
        &self.shards[0]
    }
}

/// One shard's checkpoint observability snapshot ([`Store::shard_stats`]).
///
/// The counter fields come from the shard's epoch domain
/// ([`incll_epoch::EpochManager::domain_counters`]); they are what an
/// [`incll_epoch::AdaptiveCadence`] controller observes per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's current epoch.
    pub epoch: u64,
    /// Lifetime bytes externally logged under this shard's domain.
    pub bytes_logged: u64,
    /// Bytes logged since the shard's last completed checkpoint.
    pub bytes_since_boundary: u64,
    /// Checkpoints completed on this shard (driver ticks plus explicit
    /// [`Store::checkpoint`]/[`Store::checkpoint_shard`] calls).
    pub advances_fired: u64,
    /// Driver ticks skipped because the shard was clean (the dirty-work
    /// heuristic of lazy and adaptive cadences).
    pub advances_skipped: u64,
    /// The interval the store's cadence driver currently runs this shard
    /// at; `None` when the store was opened without [`Options::cadence`].
    pub current_interval: Option<Duration>,
}

/// Extent-pool snapshot ([`Store::extent_stats`]): the superblock v6
/// pool descriptor plus each shard's current chain length, read from the
/// durable owner table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentStats {
    /// Arena offset where the extent pool starts.
    pub pool_base: u64,
    /// Bytes per extent (power of two, fixed at format).
    pub extent_bytes: u64,
    /// Total extents in the pool.
    pub extent_count: usize,
    /// `owned_per_shard[s]` = extents shard `s` has durably claimed.
    pub owned_per_shard: Vec<usize>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("threads", &self.slots.limit)
            .field("shards", &self.shards.len())
            .field("tree", &self.shards[0])
            .finish()
    }
}

/// Keys-in-batches pull iterator returned by [`Store::range`]: a lazy
/// k-way merge over one batched cursor per shard, yielding global key
/// order.
///
/// Each refill runs one bounded scan on one shard under a short read pin
/// released before the refill returns — the iterator holds **no** epoch
/// pin between `next()` calls, so shards checkpoint freely mid-scan. A
/// cursor revalidates its position on every refill by descending afresh
/// from the successor of the last key it yielded (positions are keys,
/// not node pointers, so advances and even node splits between batches
/// are harmless). Mutations racing the iterator are seen or missed per
/// batch exactly as they would be by the equivalent sequence of
/// [`Store::scan`] calls. Keys are unique across shards (each key routes
/// to exactly one), so the merge needs no tie-breaking.
///
/// # Interaction with [`crate::WriteBatch`] commits
///
/// A batch that commits **between** two refills is observed atomically
/// by every refill that follows: commit applies all of its ops before
/// returning, and each refill re-descends from the successor of the last
/// yielded key, reading whatever is then current. So a later refill
/// never shows a *torn* batch — a committed batch's op is visible to it
/// exactly when every other op of that batch is already applied. (Keys
/// the scan already passed are history: a batch writing behind the
/// cursor is simply not revisited, same as any racing put.) A refill
/// racing a commit's *apply phase* may still see its prefix — per-op
/// visibility there is the same as for individual racing puts; only
/// crash recovery and refills after commit returns get the all-or-
/// nothing view. Shrink [`Store::scan`]'s `limit` (or a small batch) to
/// tighten refill boundaries — the guarantee is per refill, not per
/// `next()` call.
pub struct RangeScan<'s> {
    store: &'s Store,
    sess: &'s Session,
    end: Bound<Vec<u8>>,
    batch: usize,
    cursors: Vec<ShardCursor>,
}

/// One shard's position in the merge.
struct ShardCursor {
    shard: usize,
    /// Start key of the shard's next batch; `None` once exhausted.
    next_start: Option<Vec<u8>>,
    buf: VecDeque<(Vec<u8>, Vec<u8>)>,
}

/// Keys fetched per refill.
const RANGE_BATCH: usize = 64;

impl ShardCursor {
    /// Pulls the next batch from this cursor's shard tree. After this
    /// returns, either `buf` is non-empty or `next_start` is `None`.
    fn refill(&mut self, store: &Store, sess: &Session, end: &Bound<Vec<u8>>, batch: usize) {
        let Some(start) = self.next_start.take() else {
            return;
        };
        let mut visited = 0usize;
        let mut past_end = false;
        let buf = &mut self.buf;
        let tree = &store.shards[self.shard];
        let arena = tree.arena();
        // scan_raw yields value-buffer offsets, so each in-bound value is
        // copied exactly once (directly into the batch).
        tree.scan_raw(sess.ctx(), &start, batch, &mut |k, vbuf| {
            visited += 1;
            if past_end {
                return;
            }
            if !within_end(end, k) {
                past_end = true;
                return;
            }
            buf.push_back((k.to_vec(), crate::tree::read_value_bytes(arena, vbuf)));
        });
        // Re-arm only if this batch was full and still inside the bound.
        // `buf` was empty on entry (the merge drains a cursor before
        // refilling it), so its back is the last visited in-bound key.
        if visited == batch && !past_end {
            if let Some((last, _)) = self.buf.back() {
                self.next_start = Some(successor(last.clone()));
            }
        }
    }
}

impl Iterator for RangeScan<'_> {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        // Refill any drained-but-live cursor, then pop the smallest head.
        // Shard counts are small (≤ 64), so a linear min beats a heap.
        for c in &mut self.cursors {
            if c.buf.is_empty() && c.next_start.is_some() {
                c.refill(self.store, self.sess, &self.end, self.batch);
            }
        }
        let mut min: Option<usize> = None;
        for (i, c) in self.cursors.iter().enumerate() {
            if let Some((head, _)) = c.buf.front() {
                if min.is_none_or(|m| head < &self.cursors[m].buf.front().expect("non-empty").0) {
                    min = Some(i);
                }
            }
        }
        self.cursors[min?].buf.pop_front()
    }
}

/// The smallest byte string strictly greater than `k`.
fn successor(mut k: Vec<u8>) -> Vec<u8> {
    k.push(0);
    k
}

fn within_end(end: &Bound<Vec<u8>>, key: &[u8]) -> bool {
    match end {
        Bound::Unbounded => true,
        Bound::Included(e) => key <= e.as_slice(),
        Bound::Excluded(e) => key < e.as_slice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_two_slot() -> (PArena, Store) {
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .build()
            .expect("arena");
        let opts = Options::new().threads(2).log_bytes_per_thread(1 << 20);
        let (store, _) = Store::open(&arena, opts).expect("open");
        (arena, store)
    }

    #[test]
    fn session_blocking_times_out_on_an_exhausted_pool() {
        let (_arena, store) = open_two_slot();
        let _a = store.session().unwrap();
        let _b = store.session().unwrap();
        assert!(matches!(
            store.session(),
            Err(Error::TooManyThreads { limit: 2 })
        ));
        let start = Instant::now();
        let err = store
            .session_blocking(Duration::from_millis(30))
            .expect_err("pool stays exhausted");
        assert!(
            matches!(err, Error::SessionTimeout { limit: 2, .. }),
            "{err:?}"
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn session_blocking_wakes_when_a_slot_releases() {
        let (_arena, store) = open_two_slot();
        let a = store.session().unwrap();
        let _b = store.session().unwrap();
        std::thread::scope(|s| {
            let store2 = store.clone();
            let waiter = s.spawn(move || store2.session_blocking(Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(20));
            drop(a); // releases a slot; the waiter must claim it
            let sess = waiter.join().expect("no panic").expect("slot released");
            assert!(sess.tid() < 2);
        });
    }

    #[test]
    fn session_blocking_grabs_a_free_slot_immediately() {
        let (_arena, store) = open_two_slot();
        let start = Instant::now();
        let sess = store
            .session_blocking(Duration::from_secs(5))
            .expect("free pool");
        assert!(start.elapsed() < Duration::from_secs(1));
        store.put(&sess, b"k", b"v").expect("usable session");
    }
}
