//! Durable node layout: the paper's Figure 1, byte for byte.
//!
//! A durable leaf is 320 bytes = 5 cache lines with every in-cache-line
//! log placed in the same line as the field it protects:
//!
//! ```text
//! line 0 (  0.. 64): version | parent | next | meta(nodeEpoch+flags)
//!                    | permutationInCLL | permutation | 2 spare words
//! line 1 ( 64..128): ikeys[0..8]
//! line 2 (128..192): ikeys[8..14] | klenx[14] + 2 pad
//! line 3 (192..256): ValInCLL1 | vals[0..7]
//! line 4 (256..320): vals[7..14] | ValInCLL2
//! ```
//!
//! `InCLLp` = {meta, permutationInCLL} shares line 0 with `permutation`;
//! `ValInCLL1` shares line 3 with `vals[0..7]`; `ValInCLL2` shares line 4
//! with `vals[7..14]` — so every log write is ordered before its mutation
//! by PCSO's same-line rule alone (§4.1).
//!
//! The durable leaf holds **14** entries — one fewer than transient
//! Masstree — paying for the embedded logs exactly as the paper does
//! (§4.1, footnote 4).
//!
//! Durable interior nodes are also 320 bytes; all their modifications go
//! through the external log (§4.2), so they carry no InCLLs.

use incll_masstree::Permutation;

/// Entries per durable leaf (one fewer than transient, §4.1).
pub const LEAF_WIDTH: usize = 14;
/// Separator keys per durable interior node.
pub const INT_WIDTH: usize = 14;
/// Durable node size in bytes (5 cache lines).
pub const NODE_BYTES: usize = 320;

/// Permutation type for durable leaves.
pub type DPerm = Permutation<LEAF_WIDTH>;

// ---------------------------------------------------------------------
// Leaf field offsets (bytes from the node base)
// ---------------------------------------------------------------------

/// Version word (transient semantics; reinitialised by recovery).
pub const OFF_VERSION: u64 = 0;
/// Parent interior offset (0 = layer root).
pub const OFF_PARENT: u64 = 8;
/// Right-sibling leaf offset.
pub const OFF_NEXT: u64 = 16;
/// `meta` word: nodeEpoch + flags (see [`meta`]).
pub const OFF_META: u64 = 24;
/// `permutationInCLL` — the permutation's in-line undo log.
pub const OFF_PERM_INCLL: u64 = 32;
/// The permutation word.
pub const OFF_PERM: u64 = 40;
/// Key slices: 14 × 8 bytes spanning lines 1–2.
pub const OFF_IKEYS: u64 = 64;
/// `keylenx` byte array (line 2 tail).
pub const OFF_KLENX: u64 = 176;
/// `ValInCLL1`: head of line 3, covering `vals[0..7]`.
pub const OFF_INCLL1: u64 = 192;
/// Values 0..7 (line 3) and 7..14 (line 4).
pub const OFF_VALS: u64 = 200;
/// `ValInCLL2`: tail of line 4, covering `vals[7..14]`.
pub const OFF_INCLL2: u64 = 312;

/// Offset of `vals[idx]`, skipping the `ValInCLL2` hole.
///
/// `vals[0..7]` occupy line 3 after `ValInCLL1`; `vals[7..14]` start line 4.
#[inline]
pub fn off_val(idx: usize) -> u64 {
    debug_assert!(idx < LEAF_WIDTH);
    if idx < 7 {
        OFF_VALS + (idx as u64) * 8
    } else {
        256 + ((idx - 7) as u64) * 8
    }
}

/// Offset of `ikeys[idx]`.
#[inline]
pub fn off_ikey(idx: usize) -> u64 {
    debug_assert!(idx < LEAF_WIDTH);
    OFF_IKEYS + (idx as u64) * 8
}

/// The ValInCLL covering `vals[idx]`: `(incll_offset, line_index)` where
/// line 0 = `ValInCLL1`, 1 = `ValInCLL2`.
#[inline]
pub fn incll_for(idx: usize) -> u64 {
    if idx < 7 {
        OFF_INCLL1
    } else {
        OFF_INCLL2
    }
}

// ---------------------------------------------------------------------
// Interior field offsets
// ---------------------------------------------------------------------

/// Interior: number of separator keys.
pub const OFF_INT_NKEYS: u64 = 32;
/// Interior: sorted separator keys (14 × 8 bytes).
pub const OFF_INT_KEYS: u64 = 40;
/// Interior: children offsets (15 × 8 bytes).
pub const OFF_INT_CHILDREN: u64 = 152;

/// Offset of interior key `i`.
#[inline]
pub fn off_int_key(i: usize) -> u64 {
    debug_assert!(i < INT_WIDTH);
    OFF_INT_KEYS + (i as u64) * 8
}

/// Offset of interior child `i`.
#[inline]
pub fn off_int_child(i: usize) -> u64 {
    debug_assert!(i <= INT_WIDTH);
    OFF_INT_CHILDREN + (i as u64) * 8
}

// ---------------------------------------------------------------------
// meta word: nodeEpoch (56 bits) + flags
// ---------------------------------------------------------------------

/// The durable `meta` word (Listing 2's `nodeEpoch`, `logged`,
/// `InsAllowed`, plus durable node-kind bits so recovery can rebuild the
/// transient version word):
///
/// ```text
/// bits  0..56: nodeEpoch
/// bit  60:     insAllowed (transient semantics)
/// bit  61:     logged     (transient semantics)
/// bit  62:     is_leaf    (immutable after init)
/// bit  63:     is_root    (changes only under external logging)
/// ```
pub mod meta {
    /// Mask of the epoch field.
    pub const EPOCH_MASK: u64 = (1 << 56) - 1;
    /// Insertions may use InCLLp (no remove happened this epoch).
    pub const INS_ALLOWED: u64 = 1 << 60;
    /// Node already captured in the external log this epoch.
    pub const LOGGED: u64 = 1 << 61;
    /// Border node.
    pub const IS_LEAF: u64 = 1 << 62;
    /// Root of its trie layer.
    pub const IS_ROOT: u64 = 1 << 63;

    /// Extracts the node epoch.
    #[inline]
    pub fn epoch(meta: u64) -> u64 {
        meta & EPOCH_MASK
    }

    /// Replaces the epoch field, keeping flags.
    #[inline]
    pub fn with_epoch(meta: u64, epoch: u64) -> u64 {
        debug_assert_eq!(epoch & !EPOCH_MASK, 0, "epoch overflow");
        (meta & !EPOCH_MASK) | epoch
    }

    /// The high 40 bits of an epoch — the window shared with the 16-bit
    /// `lowNodeEpoch` stored in each ValInCLL (§4.1.3's wrap guard
    /// compares these).
    #[inline]
    pub fn high_window(epoch: u64) -> u64 {
        epoch & EPOCH_MASK & !0xFFFF
    }
}

// ---------------------------------------------------------------------
// ValInCLL packing (§4.1.3)
// ---------------------------------------------------------------------

/// A packed value-log word: slot index (4 bits), value offset (44 bits),
/// low 16 epoch bits.
pub mod val_incll {
    /// Index marker for an unused ValInCLL.
    pub const INVALID_IDX: usize = 15;
    const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFF0;

    /// Packs `(ptr, idx, low16 epoch)` into one word.
    ///
    /// # Panics
    ///
    /// Debug-panics if `ptr` is not 16-aligned / below 2^48 or `idx > 15`.
    #[inline]
    pub fn pack(ptr: u64, idx: usize, epoch_low16: u16) -> u64 {
        debug_assert_eq!(ptr & !PTR_MASK, 0, "value offset {ptr:#x} not packable");
        debug_assert!(idx <= 15);
        ptr | idx as u64 | ((epoch_low16 as u64) << 48)
    }

    /// An invalid (unused) word stamped with an epoch.
    #[inline]
    pub fn invalid(epoch_low16: u16) -> u64 {
        pack(0, INVALID_IDX, epoch_low16)
    }

    /// The logged value offset.
    #[inline]
    pub fn ptr(word: u64) -> u64 {
        word & PTR_MASK
    }

    /// The logged slot index (15 = invalid).
    #[inline]
    pub fn idx(word: u64) -> usize {
        (word & 0xF) as usize
    }

    /// The low 16 epoch bits.
    #[inline]
    pub fn low16(word: u64) -> u16 {
        (word >> 48) as u16
    }

    /// Reconstructs the full epoch from the node's epoch window (§4.1.3).
    #[inline]
    pub fn full_epoch(word: u64, node_epoch: u64) -> u64 {
        super::meta::high_window(node_epoch) | low16(word) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_cache_line_discipline() {
        // InCLLp (meta + permutationInCLL) shares line 0 with permutation.
        assert_eq!(OFF_META / 64, OFF_PERM / 64);
        assert_eq!(OFF_PERM_INCLL / 64, OFF_PERM / 64);
        // ValInCLL1 shares line 3 with vals[0..7].
        for i in 0..7 {
            assert_eq!(OFF_INCLL1 / 64, off_val(i) / 64, "val {i}");
        }
        // ValInCLL2 shares line 4 with vals[7..14].
        for i in 7..14 {
            assert_eq!(OFF_INCLL2 / 64, off_val(i) / 64, "val {i}");
        }
        // The two value lines are distinct.
        assert_ne!(OFF_INCLL1 / 64, OFF_INCLL2 / 64);
        // Node is exactly 5 lines.
        assert_eq!(OFF_INCLL2 + 8, NODE_BYTES as u64);
    }

    // Compile-time layout guards (clippy: constant assertions belong
    // outside runtime tests).
    const _: () = assert!(OFF_IKEYS >= 64);
    const _: () = assert!(OFF_KLENX + 14 <= OFF_INCLL1);

    #[test]
    fn field_regions_do_not_overlap() {
        assert_eq!(off_ikey(13) + 8, OFF_KLENX);
        assert_eq!(off_val(6) + 8, 256);
        assert_eq!(off_val(13) + 8, OFF_INCLL2);
        assert!(off_int_child(INT_WIDTH) + 8 <= NODE_BYTES as u64);
    }

    #[test]
    fn meta_roundtrip() {
        let m = meta::with_epoch(meta::IS_LEAF | meta::INS_ALLOWED, 0xABCD);
        assert_eq!(meta::epoch(m), 0xABCD);
        assert!(m & meta::IS_LEAF != 0);
        assert!(m & meta::INS_ALLOWED != 0);
        assert!(m & meta::LOGGED == 0);
        let m2 = meta::with_epoch(m, 7);
        assert_eq!(meta::epoch(m2), 7);
        assert!(m2 & meta::IS_LEAF != 0);
    }

    #[test]
    fn val_incll_roundtrip() {
        let w = val_incll::pack(0x1234_5670, 6, 0xBEEF);
        assert_eq!(val_incll::ptr(w), 0x1234_5670);
        assert_eq!(val_incll::idx(w), 6);
        assert_eq!(val_incll::low16(w), 0xBEEF);
    }

    #[test]
    fn val_incll_invalid() {
        let w = val_incll::invalid(7);
        assert_eq!(val_incll::idx(w), val_incll::INVALID_IDX);
        assert_eq!(val_incll::ptr(w), 0);
        assert_eq!(val_incll::low16(w), 7);
    }

    #[test]
    fn val_incll_epoch_reconstruction() {
        let node_epoch = 0x12_3456_ABCD;
        let w = val_incll::pack(16, 0, 0xABCD);
        assert_eq!(val_incll::full_epoch(w, node_epoch), node_epoch);
        // A stale low half reconstructs within the same window.
        let stale = val_incll::pack(16, 0, 0x0001);
        assert_eq!(val_incll::full_epoch(stale, node_epoch), 0x12_3456_0001);
    }

    #[test]
    fn epoch_window_wrap_detection() {
        let e1 = 0xFFFF;
        let e2 = 0x1_0000;
        assert_ne!(meta::high_window(e1), meta::high_window(e2));
        assert_eq!(meta::high_window(e2), meta::high_window(e2 + 0xFF));
    }
}
