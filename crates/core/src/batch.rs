//! Cross-shard atomic write batches: the mini-transaction layer.
//!
//! Since every shard checkpoints and recovers on its own epoch timeline
//! (PR 4), a multi-key write spanning shards is not crash-atomic by
//! itself: a crash can persist shard `a`'s half at its boundary while
//! shard `b`'s half rolls back. [`WriteBatch`] restores atomicity for
//! exactly those writes, without giving up the per-shard cadence:
//!
//! 1. **Stage** — [`Session::batch`] collects puts/deletes in DRAM; no
//!    tree or media byte is touched until commit.
//! 2. **Intent entries** — commit assigns a monotonic durable batch id
//!    ([`incll_pmem::superblock::next_batch_id`]) and appends one
//!    *intent* entry per operation into the owning shard's external-log
//!    buffer ([`incll_extlog::ExtLog::log_intent_in`]) — a new tagged
//!    entry kind beside the undo entries, checksummed the same way.
//!    Intents are redo records: recovery replays them *forward*, never
//!    into an object.
//! 3. **Commit record** — one durable `(batch id, shard mask)` slot write
//!    in the superblock batch table
//!    ([`incll_pmem::superblock::set_batch_slot`], layout v5) marks the
//!    batch committed. This is the atomicity point: a batch id present in
//!    the table is committed everywhere, an absent id nowhere.
//! 4. **Apply** — the staged operations run through the ordinary put /
//!    remove paths while every touched shard is pinned
//!    (`ThreadHandle::pin_domains_mut`, ascending shard order), so each
//!    shard's half lands in a single epoch of that shard.
//!
//! Per-shard recovery resolves in-doubt batches deterministically: the
//! replay scan surfaces each shard's intents, and intents whose batch id
//! has a durable commit record are **redone** through the normal put /
//! remove paths (idempotent — a second crash replays them again), while
//! intents with no commit record are **dropped**. Resolution is per-shard
//! work on shard-owned state, so it is byte-identical at every
//! `recovery_threads` count.
//!
//! A shard's epoch boundary makes its applied half durable and
//! simultaneously discards its log buffers — so the boundary hook also
//! retires the shard's bit from every batch-table slot
//! ([`incll_pmem::superblock::clear_batch_shard`]). A slot whose mask
//! drains to zero is reusable; when all [`superblock::BATCH_SLOTS`] are
//! still live, commit evicts the slot covering the fewest shards by
//! forcing those shards over a boundary first.
//!
//! **Single-shard batches take none of this machinery**: when every
//! staged key routes to one shard (always true with `shards(1)`), commit
//! holds one mutating pin on that shard across the ordinary put / remove
//! calls — same-epoch atomicity with no batch id, no intents, no commit
//! record. `shards(1)` media and semantics are unchanged.

use incll_pmem::{superblock, PArena};

use crate::error::{Error, MAX_VALUE_BYTES};
use crate::store::{Session, Store};
use crate::tree::Inner;

/// Most operations one [`WriteBatch`] can stage. Every staged op becomes
/// an intent entry in the committing thread's external-log buffers, so
/// the cap bounds the log space a single commit can pin between
/// checkpoints.
pub const MAX_BATCH_OPS: usize = 1024;

/// Intent-payload op kinds (`[kind: u64][key_len: u64][key][val]`).
const KIND_PUT: u64 = 0;
const KIND_DELETE: u64 = 1;

/// In-memory mirror of the superblock batch table: one `(batch id,
/// shard mask)` pair per slot, `id == 0` meaning empty. Guarded by
/// `Inner::batches`, which doubles as the global commit lock (commits
/// are rare and cross-shard by definition; serializing them keeps the
/// slot protocol trivial).
pub(crate) struct BatchSlots {
    pub(crate) slots: [(u64, u64); superblock::BATCH_SLOTS],
}

impl BatchSlots {
    /// Snapshots the durable table (create loads all-zero slots; open
    /// loads whatever survived the crash).
    pub(crate) fn load(arena: &PArena) -> Self {
        let mut slots = [(0u64, 0u64); superblock::BATCH_SLOTS];
        for (i, s) in slots.iter_mut().enumerate() {
            *s = superblock::batch_slot(arena, i);
        }
        BatchSlots { slots }
    }

    /// Retires shard `d` from every slot, durable word and mirror both.
    /// Called at shard `d`'s epoch boundary (its intents just became
    /// non-replayable) and during eviction (after forcing that boundary).
    fn clear_shard(&mut self, arena: &PArena, d: usize) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.0 != 0 && s.1 & (1u64 << d) != 0 {
                superblock::clear_batch_shard(arena, i, d);
                s.1 &= !(1u64 << d);
            }
        }
    }

    /// Picks the slot the next commit record will use: any drained slot,
    /// else evict the live slot covering the fewest shards by forcing
    /// each covered shard over an epoch boundary (that makes the victim's
    /// intents non-replayable, so its commit record is moot). Returns
    /// with the chosen slot's mirror mask at zero.
    fn acquire(&mut self, inner: &Inner) -> usize {
        if let Some(i) = self
            .slots
            .iter()
            .position(|&(id, mask)| id == 0 || mask == 0)
        {
            return i;
        }
        let victim = (0..self.slots.len())
            .min_by_key(|&i| self.slots[i].1.count_ones())
            .expect("table has slots");
        let mask = self.slots[victim].1;
        for d in 0..64 {
            if mask & (1u64 << d) != 0 {
                // The boundary hook cannot take `Inner::batches` (we hold
                // it), so mirror its clearing here ourselves.
                inner.mgr.advance_domain(d);
                self.clear_shard(&inner.arena, d);
            }
        }
        debug_assert_eq!(self.slots[victim].1, 0);
        victim
    }
}

impl Inner {
    /// Boundary-hook half of the slot lifecycle: shard `d` just completed
    /// a checkpoint (discarding its log, intents included), so no commit
    /// record needs to name it any more.
    ///
    /// `try_lock`: a commit in flight holds the table lock — possibly
    /// while *forcing* this very advance during eviction. Skipping is
    /// safe because a stale mask bit is conservative: it only delays slot
    /// reuse (commit matching is by id, never by mask), and the next
    /// boundary clears it.
    pub(crate) fn retire_batch_shard(&self, d: usize) {
        if let Some(mut table) = self.batches.try_lock() {
            table.clear_shard(&self.arena, d);
        }
    }
}

/// One staged operation.
enum BatchOp {
    Put { key: Vec<u8>, val: Vec<u8> },
    Delete { key: Vec<u8> },
}

impl BatchOp {
    fn key(&self) -> &[u8] {
        match self {
            BatchOp::Put { key, .. } | BatchOp::Delete { key } => key,
        }
    }

    /// The intent-entry payload: `[kind: u64][key_len: u64][key][val]`,
    /// little-endian words (deletes carry no value bytes).
    fn encode(&self) -> Vec<u8> {
        let (kind, key, val): (u64, &[u8], &[u8]) = match self {
            BatchOp::Put { key, val } => (KIND_PUT, key, val),
            BatchOp::Delete { key } => (KIND_DELETE, key, &[]),
        };
        let mut out = Vec::with_capacity(16 + key.len() + val.len());
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&(key.len() as u64).to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(val);
        out
    }
}

/// A decoded intent payload (recovery's redo view of one staged op).
pub(crate) enum RedoOp<'a> {
    Put { key: &'a [u8], val: &'a [u8] },
    Delete { key: &'a [u8] },
}

/// Decodes an intent payload written by [`BatchOp::encode`]. `None` on a
/// malformed payload — unreachable for entries that passed the log's
/// checksum, but recovery treats it as a skip rather than a panic.
pub(crate) fn decode_intent(payload: &[u8]) -> Option<RedoOp<'_>> {
    if payload.len() < 16 {
        return None;
    }
    let kind = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let key_len = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")) as usize;
    let rest = &payload[16..];
    if key_len > rest.len() {
        return None;
    }
    let (key, val) = rest.split_at(key_len);
    match kind {
        KIND_PUT => Some(RedoOp::Put { key, val }),
        KIND_DELETE if val.is_empty() => Some(RedoOp::Delete { key }),
        _ => None,
    }
}

/// A staged batch of puts/deletes that commits atomically across shards
/// — **all** of it survives a crash, or **none** of it does, even when
/// the staged keys route to shards on different checkpoint cadences.
///
/// Obtain via [`Session::batch`]; stage with [`WriteBatch::put`] /
/// [`WriteBatch::delete`]; make it happen with [`WriteBatch::commit`].
/// Dropping an uncommitted batch discards it without touching the store.
/// See the module docs for the commit protocol and crash semantics.
pub struct WriteBatch<'s> {
    sess: &'s Session,
    ops: Vec<BatchOp>,
}

impl<'s> WriteBatch<'s> {
    pub(crate) fn new(sess: &'s Session) -> Self {
        WriteBatch {
            sess,
            ops: Vec::new(),
        }
    }

    /// Stages an insert-or-update of `key`. Nothing is written until
    /// [`WriteBatch::commit`]; within one batch, later ops on the same
    /// key win (ops apply in staging order).
    ///
    /// # Errors
    ///
    /// [`Error::ValueTooLarge`] beyond [`MAX_VALUE_BYTES`];
    /// [`Error::BatchTooLarge`] beyond [`MAX_BATCH_OPS`] staged ops.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), Error> {
        if value.len() > MAX_VALUE_BYTES {
            return Err(Error::ValueTooLarge {
                size: value.len(),
                max: MAX_VALUE_BYTES,
            });
        }
        self.check_capacity()?;
        self.ops.push(BatchOp::Put {
            key: key.to_vec(),
            val: value.to_vec(),
        });
        Ok(())
    }

    /// Stages a removal of `key` (a no-op at apply time if absent).
    ///
    /// # Errors
    ///
    /// [`Error::BatchTooLarge`] beyond [`MAX_BATCH_OPS`] staged ops.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), Error> {
        self.check_capacity()?;
        self.ops.push(BatchOp::Delete { key: key.to_vec() });
        Ok(())
    }

    fn check_capacity(&self) -> Result<(), Error> {
        if self.ops.len() >= MAX_BATCH_OPS {
            return Err(Error::BatchTooLarge {
                ops: self.ops.len() + 1,
                max: MAX_BATCH_OPS,
            });
        }
        Ok(())
    }

    /// Staged operation count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits the batch: after this returns, either every staged op is
    /// applied (and will be *redone* by recovery if a crash intervenes
    /// before the touched shards checkpoint), or — for a crash striking
    /// mid-commit, before the commit record — none will survive.
    ///
    /// Returns the durable batch id, or `0` for the single-shard fast
    /// path (every staged key on one shard: ops apply under a single
    /// epoch pin with no batch id, intents, or commit record — exactly
    /// the pre-batch scoped-flush behavior). An empty batch is a no-op
    /// returning `0`.
    ///
    /// # Errors
    ///
    /// Arena exhaustion ([`Error::Pmem`]) — commit **pre-reserves every
    /// value buffer before staging anything**, so a shard without room
    /// fails the whole batch cleanly: no intent reaches any shard's log,
    /// no batch id is consumed, no commit record is written, and every
    /// other shard's contents are untouched (live and across a crash).
    /// The rare residual case is *structural* exhaustion mid-apply (a
    /// node split with a completely empty pool) after the commit record:
    /// the batch is then *logically* committed — the next recovery
    /// completes it from its intents — and such errors should be treated
    /// as fatal for the process.
    pub fn commit(self) -> Result<u64, Error> {
        self.run(true, false)
    }

    /// [`WriteBatch::commit`] with a **durability-on-return** guarantee:
    /// when this returns, every staged op survives any later crash, even
    /// if no shard ever reaches another checkpoint boundary.
    ///
    /// The plain [`WriteBatch::commit`] already gives cross-shard batches
    /// this property for free (their intents + commit record are redo
    /// state), but routes single-shard batches over the intent-free fast
    /// path, where the ops stay rollback-exposed until that shard's next
    /// boundary. `commit_durable` forces the full protocol for every
    /// mask: intents into the owning shards' logs, one drain per shard
    /// (so a nonzero [`crate::Options::persistence_granularity`] pays one
    /// `clwb_range`+`sfence` per shard for the *whole* batch), then the
    /// single durable commit record. This is the group-commit hook the
    /// network server amortizes small puts through: N requests coalesced
    /// into one `commit_durable` cost a handful of fences instead of N
    /// checkpoint barriers.
    ///
    /// Always returns a real batch id (≥ 1) except for the empty-batch
    /// no-op (`0`).
    ///
    /// # Errors
    ///
    /// Same as [`WriteBatch::commit`].
    pub fn commit_durable(self) -> Result<u64, Error> {
        self.run(true, true)
    }

    /// Crash-test seam: assigns the batch id and stages every intent
    /// entry durably, then stops — no commit record, no apply. A crash
    /// here is the "mid-batch" matrix point; recovery must drop the
    /// batch on every shard. Single-shard batches stage nothing and
    /// return `0` (their fast path has no intent phase at all).
    #[doc(hidden)]
    pub fn stage_without_commit(self) -> Result<u64, Error> {
        self.run(false, false)
    }

    fn run(self, commit: bool, durable: bool) -> Result<u64, Error> {
        if self.ops.is_empty() {
            return Ok(0);
        }
        let store = self.sess.store();
        let mut mask = 0u64;
        for op in &self.ops {
            mask |= 1u64 << store.shard_of(op.key());
        }

        // A durable commit skips the fast path even on one shard: the
        // intent + commit-record protocol below is exactly what makes the
        // batch redo-able before any boundary completes.
        if mask.count_ones() <= 1 && !durable {
            if !commit {
                return Ok(0);
            }
            // Fast path: one mutating pin holds the shard's epoch open
            // across every op, so the whole batch lands in a single epoch
            // of its single shard — crash-atomic with no media additions.
            let shard = mask.trailing_zeros() as usize;
            let pin = self.sess.ctx().pin_shard_mut(shard);
            // Reserve every value buffer first: a full shard fails the
            // whole batch here, before any tree state moves.
            let bufs = self.prepare_bufs(store, |_| pin.epoch())?;
            // The inner facade paths seal their own undo entries before
            // each modification (write-ahead), so nothing is left staged
            // when the pin releases the shard for advances.
            self.apply(store, bufs)?;
            return Ok(0);
        }

        let inner = &store.shard_tree(0).inner;
        // The table lock is the global commit lock: one cross-shard
        // commit at a time (the slot protocol and the durable id bump
        // stay race-free; per-key throughput is unaffected).
        let mut table = inner.batches.lock();
        let slot = table.acquire(inner);
        // Pin every touched shard (ascending, one consistent order) so
        // intents are stamped with — and the apply below lands in — one
        // epoch per shard.
        let guards = self.sess.ctx().pin_shards_mut(mask);
        let pinned: Vec<usize> = (0..64).filter(|d| mask & (1u64 << d) != 0).collect();
        let tid = self.sess.tid();
        // Reserve every value buffer before anything is staged or named
        // durably: a shard without room fails the whole batch *cleanly* —
        // no intent in any surviving shard's log, no id consumed, no
        // commit record — instead of erroring mid-apply after the commit
        // record made the batch logically committed.
        let bufs = self.prepare_bufs(store, |s| {
            guards[pinned.iter().position(|&d| d == s).expect("shard pinned")].epoch()
        })?;
        let id = superblock::next_batch_id(&inner.arena);
        for op in &self.ops {
            let s = store.shard_of(op.key());
            let g = pinned
                .iter()
                .position(|&d| d == s)
                .expect("op shard pinned");
            inner
                .log
                .log_intent_in(tid, s, guards[g].epoch(), id, &op.encode());
        }
        // Under a nonzero persistence granularity the intents above are
        // merely staged: drain each covered shard's run now, so every
        // intent is durable — and reachable through replay's
        // valid-prefix scan — before anything durable can name the
        // batch id. This is the batched-append payoff: one
        // `clwb_range`+`sfence` per shard covers the whole group
        // instead of one fence per intent.
        for &d in &pinned {
            inner.log.drain(tid, d);
        }
        if !commit {
            // Intents durable, commit record absent: the in-doubt state
            // the crash matrix probes. The id was consumed (monotonicity
            // is unconditional) but no slot names it.
            return Ok(id);
        }
        // The atomicity point: one durable slot write.
        superblock::set_batch_slot(&inner.arena, slot, id, mask);
        table.slots[slot] = (id, mask);
        // The applies seal their own undo entries before each
        // modification (write-ahead), so nothing is left staged when the
        // pins release the shards for advances.
        self.apply(store, bufs)?;
        Ok(id)
    }

    /// Reserves one filled value buffer per staged put, under the pins
    /// the caller already holds (`epoch_of(shard)` is the pinned epoch
    /// the later apply runs in). On exhaustion every buffer reserved so
    /// far goes back to its shard's pending list and the typed error
    /// surfaces — the batch has touched nothing durable yet.
    fn prepare_bufs(
        &self,
        store: &Store,
        epoch_of: impl Fn(usize) -> u64,
    ) -> Result<Vec<Option<u64>>, Error> {
        let ctx = self.sess.ctx();
        let mut bufs: Vec<Option<u64>> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let buf = match op {
                BatchOp::Put { key, val } => {
                    let s = store.shard_of(key);
                    match store.shard_tree(s).prepare_value_buf(ctx, epoch_of(s), val) {
                        Ok(b) => Some(b),
                        Err(e) => {
                            for (prev, b) in self.ops.iter().zip(&bufs) {
                                if let (BatchOp::Put { key, .. }, Some(b)) = (prev, b) {
                                    let ps = store.shard_of(key);
                                    store
                                        .shard_tree(ps)
                                        .release_value_buf(ctx, epoch_of(ps), *b);
                                }
                            }
                            return Err(e);
                        }
                    }
                }
                BatchOp::Delete { .. } => None,
            };
            bufs.push(buf);
        }
        Ok(bufs)
    }

    /// Applies the staged ops through the ordinary facade paths (the
    /// caller holds whatever pins the path requires; nested pins on an
    /// already-pinned shard share its epoch), consuming the value buffers
    /// [`WriteBatch::prepare_bufs`] reserved.
    fn apply(&self, store: &Store, bufs: Vec<Option<u64>>) -> Result<(), Error> {
        for (op, buf) in self.ops.iter().zip(bufs) {
            match op {
                BatchOp::Put { key, val } => {
                    store.put_with_buf(self.sess, key, val, buf)?;
                }
                BatchOp::Delete { key } => {
                    store.remove(self.sess, key);
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for WriteBatch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteBatch")
            .field("ops", &self.ops.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Options, Store};
    use incll_pmem::PArena;

    fn open(shards: usize) -> (PArena, Store) {
        let arena = PArena::builder()
            .capacity_bytes(64 << 20)
            .build()
            .expect("arena");
        let opts = Options::new()
            .threads(2)
            .log_bytes_per_thread(1 << 20)
            .shards(shards);
        let (store, _) = Store::open(&arena, opts).expect("open");
        (arena, store)
    }

    #[test]
    fn intent_payload_roundtrips() {
        let put = BatchOp::Put {
            key: b"k1".to_vec(),
            val: b"value bytes".to_vec(),
        };
        match decode_intent(&put.encode()) {
            Some(RedoOp::Put { key, val }) => {
                assert_eq!(key, b"k1");
                assert_eq!(val, b"value bytes");
            }
            _ => panic!("put payload decoded wrong"),
        }
        let del = BatchOp::Delete {
            key: b"gone".to_vec(),
        };
        match decode_intent(&del.encode()) {
            Some(RedoOp::Delete { key }) => assert_eq!(key, b"gone"),
            _ => panic!("delete payload decoded wrong"),
        }
        assert!(decode_intent(b"short").is_none());
        // key_len past the end must not panic.
        let mut bad = 0u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&1000u64.to_le_bytes());
        assert!(decode_intent(&bad).is_none());
    }

    #[test]
    fn single_shard_batch_touches_no_batch_media() {
        let (arena, store) = open(1);
        let sess = store.session().expect("session");
        let mut b = sess.batch();
        b.put(b"a", b"1").unwrap();
        b.put(b"b", b"2").unwrap();
        b.delete(b"a").unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.commit().expect("commit"), 0, "fast path assigns no id");
        assert_eq!(store.get(&sess, b"a"), None);
        assert_eq!(store.get(&sess, b"b").as_deref(), Some(&b"2"[..]));
        // No commit record, no id consumed: the batch table is untouched
        // and the next cross-shard id is still the first.
        for i in 0..superblock::BATCH_SLOTS {
            assert_eq!(superblock::batch_slot(&arena, i), (0, 0));
        }
        assert_eq!(arena.pread_u64(superblock::SB_BATCH_NEXT_ID), 1);
    }

    #[test]
    fn cross_shard_commit_writes_one_slot_then_boundaries_drain_it() {
        let (arena, store) = open(4);
        let sess = store.session().expect("session");
        // Find keys on two distinct shards.
        let k0 = b"key-000".to_vec();
        let mut k1 = Vec::new();
        for i in 0..1000u32 {
            let k = format!("key-{i:03}").into_bytes();
            if store.shard_of(&k) != store.shard_of(&k0) {
                k1 = k;
                break;
            }
        }
        assert!(!k1.is_empty(), "found a second shard");
        let mut b = sess.batch();
        b.put(&k0, b"v0").unwrap();
        b.put(&k1, b"v1").unwrap();
        let id = b.commit().expect("commit");
        assert!(id >= 1);
        assert!(superblock::batch_is_committed(&arena, id));
        assert_eq!(store.get(&sess, &k0).as_deref(), Some(&b"v0"[..]));
        assert_eq!(store.get(&sess, &k1).as_deref(), Some(&b"v1"[..]));
        // Both shards' boundaries retire their mask bits; the slot drains.
        store.checkpoint();
        let drained =
            (0..superblock::BATCH_SLOTS).all(|i| superblock::batch_slot(&arena, i).1 == 0);
        assert!(drained, "checkpoint barrier must drain every mask");
        // Ids stay monotonic across commits.
        let mut b = sess.batch();
        b.put(&k0, b"v2").unwrap();
        b.put(&k1, b"v3").unwrap();
        let id2 = b.commit().expect("commit");
        assert!(id2 > id);
    }

    #[test]
    fn slot_eviction_forces_boundaries_instead_of_overflowing() {
        let (_arena, store) = open(4);
        let sess = store.session().expect("session");
        let k0 = b"key-000".to_vec();
        let mut k1 = Vec::new();
        for i in 0..1000u32 {
            let k = format!("key-{i:03}").into_bytes();
            if store.shard_of(&k) != store.shard_of(&k0) {
                k1 = k;
                break;
            }
        }
        // More cross-shard commits than table slots, with no checkpoint
        // in between: acquire() must evict (forcing boundaries) rather
        // than panic or corrupt earlier records.
        for round in 0..(2 * superblock::BATCH_SLOTS as u32) {
            let mut b = sess.batch();
            b.put(&k0, format!("a{round}").as_bytes()).unwrap();
            b.put(&k1, format!("b{round}").as_bytes()).unwrap();
            b.commit().expect("commit");
        }
        assert_eq!(store.get(&sess, &k0).as_deref(), Some(&b"a15"[..]));
        assert_eq!(store.get(&sess, &k1).as_deref(), Some(&b"b15"[..]));
    }

    #[test]
    fn batch_cap_is_enforced() {
        let (_arena, store) = open(1);
        let sess = store.session().expect("session");
        let mut b = sess.batch();
        for i in 0..MAX_BATCH_OPS {
            b.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        assert!(matches!(
            b.put(b"one-too-many", b"v"),
            Err(Error::BatchTooLarge { .. })
        ));
        assert!(matches!(
            b.delete(b"one-too-many"),
            Err(Error::BatchTooLarge { .. })
        ));
    }

    #[test]
    fn durable_commit_forces_the_record_on_a_single_shard() {
        let (arena, store) = open(1);
        let sess = store.session().expect("session");
        let mut b = sess.batch();
        b.put(b"k1", b"v1").unwrap();
        b.put(b"k2", b"v2").unwrap();
        let id = b.commit_durable().expect("durable commit");
        assert!(id >= 1, "durable commits always take a real id");
        assert!(superblock::batch_is_committed(&arena, id));
        assert_eq!(store.get(&sess, b"k1").as_deref(), Some(&b"v1"[..]));
        // The shard's boundary retires the record like any cross-shard one.
        store.checkpoint();
        let drained =
            (0..superblock::BATCH_SLOTS).all(|i| superblock::batch_slot(&arena, i).1 == 0);
        assert!(drained);
    }

    #[test]
    fn durable_commit_survives_a_crash_with_no_boundary() {
        for shards in [1usize, 4] {
            let arena = PArena::builder()
                .capacity_bytes(64 << 20)
                .tracked(true)
                .build()
                .expect("arena");
            let opts = Options::new()
                .threads(2)
                .log_bytes_per_thread(1 << 20)
                .shards(shards)
                // The server's group-commit configuration: staged intent
                // appends, drained once per shard at commit.
                .persistence_granularity(4096);
            let (store, _) = Store::open(&arena, opts.clone()).expect("open");
            {
                let sess = store.session().expect("session");
                let mut b = sess.batch();
                for i in 0..16u32 {
                    b.put(format!("grp-{i:02}").as_bytes(), &i.to_le_bytes())
                        .unwrap();
                }
                assert!(b.commit_durable().expect("durable commit") >= 1);
                // A plain put after the durable group: rollback-exposed,
                // must vanish (no boundary ever completes here).
                store.put(&sess, b"exposed", b"gone").expect("put");
            }
            drop(store);
            arena.crash_seeded(7 + shards as u64);
            let (store, report) = Store::open(&arena, opts).expect("recover");
            assert!(!report.created);
            let sess = store.session().expect("session");
            for i in 0..16u32 {
                assert_eq!(
                    store
                        .get(&sess, format!("grp-{i:02}").as_bytes())
                        .as_deref(),
                    Some(&i.to_le_bytes()[..]),
                    "shards={shards} key {i}: a durable group must be redone"
                );
            }
            assert_eq!(
                store.get(&sess, b"exposed"),
                None,
                "shards={shards}: an unbatched put must roll back"
            );
        }
    }

    #[test]
    fn dropped_batch_is_a_no_op() {
        let (_arena, store) = open(2);
        let sess = store.session().expect("session");
        let mut b = sess.batch();
        b.put(b"ghost", b"never").unwrap();
        drop(b);
        assert_eq!(store.get(&sess, b"ghost"), None);
        let empty = sess.batch();
        assert!(empty.is_empty());
        assert_eq!(empty.commit().expect("empty commit"), 0);
    }
}
