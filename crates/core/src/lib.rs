//! # incll — Fine-Grain Checkpointing with In-Cache-Line Logging
//!
//! A durable, crash-recoverable Masstree for (simulated) non-volatile
//! memory, reproducing Cohen, Aksun, Avni & Larus, *Fine-Grain
//! Checkpointing with In-Cache-Line Logging* (ASPLOS 2019).
//!
//! Three mechanisms cooperate:
//!
//! * **Fine-grain checkpointing** — execution is divided into short epochs
//!   ([`incll_epoch`]); each boundary flushes the whole cache, making NVM a
//!   complete checkpoint of the structure. A crash rolls the tree back to
//!   the last boundary.
//! * **In-cache-line logging (InCLL)** — each 14-entry leaf embeds three
//!   undo-log words *inside* its own cache lines (`InCLLp` for the
//!   permutation, `ValInCLL1/2` for values, [`layout`]); PCSO same-line
//!   ordering makes the logs durable-before-mutation with **zero** flushes
//!   or fences on the operation path.
//! * **External logging** ([`incll_extlog`]) for the rare complex cases:
//!   splits, interior nodes, layer conversions, InCLL overflow.
//!
//! The durable allocator ([`incll_palloc`]) applies the same recipe to its
//! free lists, so a `put` (buffer allocation + tree update) runs without a
//! single synchronous NVM write.
//!
//! # Quick start
//!
//! The supported front door is the [`Store`] facade: one call opens (or
//! formats + creates, or recovers) a store; RAII [`Session`]s replace raw
//! thread ids; values are byte slices backed by size-classed durable
//! buffers; [`Options::shards`] hash partitions the keyspace over N
//! independent trees, **each with its own epoch domain** — its own
//! checkpoint cadence, its own crash boundary.
//!
//! ```
//! use incll_pmem::PArena;
//! use incll::{Options, Store};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An arena stands in for an NVM device mapping.
//! let arena = PArena::builder().capacity_bytes(16 << 20).build()?;
//!
//! // Blank arena -> format + create; existing store -> recover. The
//! // shard count is fixed here, at format time: 4 independent InCLL
//! // trees, each its own epoch domain (shards(1), the default, is the
//! // paper's single-tree system).
//! let opts = Options::new()
//!     .threads(1)
//!     .log_bytes_per_thread(1 << 20)
//!     .shards(4);
//! let (store, report) = Store::open(&arena, opts)?;
//! assert!(report.created);
//! assert_eq!(store.shard_count(), 4);
//!
//! let sess = store.session()?; // slot released when `sess` drops
//! store.put(&sess, b"durable-key", b"any bytes at all")?; // routed by key hash
//! assert_eq!(
//!     store.get(&sess, b"durable-key").as_deref(),
//!     Some(&b"any bytes at all"[..]),
//! );
//! store.put_u64(&sess, b"counter", 7); // the paper's 8-byte payloads
//!
//! // Allocation-free reads: reuse one buffer across lookups.
//! let mut buf = Vec::new();
//! assert!(store.get_into(&sess, b"durable-key", &mut buf));
//!
//! // Zero-copy reads: borrow the value bytes in place. The view holds a
//! // read pin on the key's shard until dropped (see "Read semantics").
//! let v = store.get_ref(&sess, b"durable-key").expect("present");
//! assert_eq!(&*v, b"any bytes at all");
//! drop(v);
//!
//! // Scoped checkpoint: only `durable-key`'s shard flushes, and only
//! // sessions pinned in that shard stall — cold shards never notice.
//! store.checkpoint_shard(store.shard_of(b"durable-key"));
//!
//! // Barrier checkpoint: every shard at once (one cross-shard
//! // point-in-time).
//! store.checkpoint();
//!
//! // Ordered iteration: a lazy k-way merge over the shard trees yields
//! // global key order (also: `store.scan` for the callback form).
//! for (key, value) in store.range(&sess, &b"a"[..]..&b"d"[..]) {
//!     assert_eq!(key, b"counter");
//!     assert_eq!(u64::from_le_bytes(value[..8].try_into()?), 7);
//! }
//!
//! // ... a crash here (see `PArena::crash_seeded` in tracked mode) rolls
//! // each shard back to ITS OWN last completed boundary; `Store::open`
//! // on the same arena recovers them all (per-shard epochs and replay
//! // counts in `report.per_shard`). Reopen with the same `shards(4)` —
//! // a mismatch is a typed error.
//! # Ok(())
//! # }
//! ```
//!
//! # Crash semantics under independent cadences
//!
//! With more than one shard, checkpoints are **per shard**: shard `s`
//! advances its own epoch domain (on [`Store::checkpoint_shard`] or a
//! per-domain driver cadence), flushing only its own dirty lines, and a
//! crash rolls each shard back to *that shard's* last completed boundary.
//! Concretely:
//!
//! * **Per-key durability is unchanged.** A key lives on exactly one
//!   shard forever (hash routing is part of the on-media contract), so
//!   "my write survives once its shard checkpoints" is the same guarantee
//!   the global epoch gave — reachable sooner, because a hot shard can
//!   run a tight cadence without paying for cold ones.
//! * **Cross-shard points-in-time are independent.** After a crash, shard
//!   `a` may recover newer state than shard `b`. A multi-key invariant
//!   spanning shards is only crash-atomic if it is made durable by the
//!   all-domains barrier [`Store::checkpoint`] (which advances every
//!   domain, yielding one common boundary) — or kept within one shard.
//! * **Recovery names each boundary.** [`RecoveryReport::per_shard`]
//!   carries every shard's failed and recovered epochs; shard 0's pair
//!   doubles as the legacy top-level fields.
//! * **Recovery is parallel — and deterministic.** [`Store::open`]
//!   spreads the per-shard recovery steps (failed-epoch resolution, log
//!   replay, parent re-derivation, epoch restart, allocator repair) over
//!   up to [`Options::recovery_threads`] workers, one strided shard
//!   subset each. Every durable object is owned by exactly one shard for
//!   life — log buffers are per-(thread × shard), allocator lists and
//!   carve regions are per-shard, epoch and watermark cells sit on
//!   per-shard cache lines — so the workers write disjoint state and the
//!   recovered arena is **byte-identical at every worker count**,
//!   including 1. The knob changes restart latency only, never the
//!   outcome ([`RecoveryReport::parallel_workers`] and per-shard
//!   [`ShardReplay::replay_time`] report what ran); the crash-matrix
//!   suite asserts the equivalence cell by cell.
//! * **Allocation is per-shard too — and grows online.** Each shard owns
//!   a **chain of extents** claimed from a shared pool (superblock v6):
//!   the carvable arena is split into fixed-size power-of-two extents
//!   with a durable owner byte per extent on dedicated superblock lines.
//!   A shard carves from its active extent with its own InCLL-logged
//!   watermark — the carve path stays flush-free — and when the extent
//!   is exhausted it claims the lowest-index free extent (owner-byte CAS
//!   then `clwb`+`sfence`, the one deliberate flush on the allocation
//!   path), so a hot shard grows across the pool instead of failing with
//!   `OutOfMemory` while siblings sit on free space. `OutOfMemory` now
//!   means the *pool* is empty — the whole arena really is spent — not
//!   that one shard hit a static share.
//! * **Extent claims are crash-atomic and never torn.** The owner byte
//!   is published by a flushed single-byte CAS, so a crash mid-claim
//!   shows either a free extent or a fully owned one. A claim whose
//!   first carve belonged to a failed epoch survives the crash (claims
//!   are never released); the shard's watermark reverts out of the
//!   extent on its own timeline and recovery re-queues the extent as
//!   that shard's *reserve*, consumed before any fresh claim — a
//!   read-only rebuild from the owner table, byte-identical at every
//!   [`Options::recovery_threads`] count. Slabs carved in a doomed epoch
//!   still un-carve within their owning extent instead of leaking.
//!
//! `shards(1)` has a single domain and reproduces the paper's semantics
//! (and media behavior) exactly: one barrier, one whole-cache flush, one
//! boundary, one carve frontier.
//!
//! # Cadence tuning and persistence granularity
//!
//! Two orthogonal knobs trade write-path cost against recovery cost:
//! *when* each shard checkpoints ([`Options::cadence`]) and *how often*
//! the external log pays an ordering fence ([`Options::persistence_granularity`]).
//!
//! **Checkpoint cadence.** [`Options::cadence`] picks the background
//! driver's per-shard policy:
//!
//! * `Cadence::lazy(interval)` — fixed interval, but a tick whose shard
//!   logged no bytes since its last boundary is *skipped* (counted in
//!   [`ShardStats::advances_skipped`], not paid for). Good default for
//!   read-mostly shards.
//! * `Cadence::eager(interval)` — fixed interval, always advances.
//!   Reproduces the paper's unconditional epoch clock.
//! * `Cadence::adaptive(AdaptiveCadence { min, max, target_dirty_bytes,
//!   hysteresis })` — each shard picks its own interval inside
//!   `[min, max]`, aiming to accumulate about `target_dirty_bytes` of
//!   logged bytes per checkpoint window. The controller starts every
//!   shard at the geometric midpoint of the clamp, samples the shard's
//!   write-rate counters every `min` (the observation tick is decoupled
//!   from the advances themselves), and predicts the bytes the *current*
//!   interval would accumulate. Predictions inside the dead band
//!   `[target/2, target]` leave the interval alone; a prediction outside
//!   it only moves the interval after `hysteresis` consecutive
//!   same-direction observations, and the move re-targets directly to
//!   `target_dirty_bytes / observed rate` (clamped to move only in the
//!   agreed direction, and always inside `[min, max]`). Tightening also
//!   pulls the shard's next advance deadline forward so a burst is
//!   bounded promptly. Adaptive shards always skip clean ticks, and a
//!   dirty shard never waits longer than `max` — the starvation bound.
//!
//! The static policies are degenerate adaptive configs (`min == max`
//! pins the interval), so one code path serves all three. Live per-shard
//! telemetry — current interval, bytes since boundary, advances fired
//! and skipped — is one [`Store::shard_stats`] call away, and
//! [`Store::halt_cadence`] freezes the driver (no further advances)
//! without consuming the store, for controlled-teardown experiments.
//!
//! **Persistence granularity.** With the default
//! `persistence_granularity(0)`, every external-log append is flushed
//! and fenced individually — byte-for-byte the legacy write path. A
//! non-zero granularity batches the appends that can tolerate it.
//! Which ones can is dictated by the write-ahead invariant: an undo
//! pre-image guards an in-place node modification performed the moment
//! the append returns, and a crash may persist *any* dirty line — the
//! modified node included — so the pre-image must be durable before the
//! modification is issued. Undo entries therefore **always seal before
//! return**, at every granularity (a non-zero granularity only changes
//! the seal from a per-entry `clwb` to one `clwb` range + `sfence` over
//! the slot's staged run). What a non-zero granularity defers is batch
//! *intent* entries, which guard nothing until their batch's commit
//! record lands: a [`Session::batch`] stages one intent per op and pays
//! one `clwb` range + `sfence` per shard — issued before the commit
//! record — instead of one fence per intent, which is where the fence
//! cost of small-value batched puts actually concentrates. Crash
//! semantics are unchanged: a staged intent lost in a crash belongs to
//! a batch with no commit record, which recovery drops either way, and
//! the epoch boundary drains every buffer while writers are quiesced,
//! so a completed checkpoint never leaves staged bytes behind.
//!
//! # Batch atomicity and crash semantics
//!
//! [`Session::batch`] returns a [`WriteBatch`]: a staged set of puts and
//! deletes that commits **atomically across shards** without the
//! all-domains [`Store::checkpoint`] barrier. The contract:
//!
//! * **All or nothing, across cadences.** After any crash, recovery
//!   surfaces either every operation of a committed batch or none of an
//!   uncommitted one — even though each touched shard rolls back to its
//!   own boundary. The atomicity point is one durable `(batch id, shard
//!   mask)` record in the superblock batch table (layout v5): commit
//!   first stages a checksummed *intent* entry per op in the owning
//!   shard's external log, then flushes the commit record, then applies
//!   the ops under per-shard epoch pins.
//! * **Recovery resolves in-doubt batches deterministically.** Each
//!   shard's replay surfaces its intents; a batch whose id is in the
//!   durable table is *redone* through the ordinary put/remove paths
//!   (idempotently — a re-crash replays the same intents again), any
//!   other batch is *dropped*. Resolution is shard-owned work, so the
//!   recovered bytes are identical at every [`Options::recovery_threads`]
//!   count; [`ShardReplay::batches_redone`] /
//!   [`ShardReplay::batches_dropped`] report what happened.
//! * **Single-shard batches keep the fast path.** When every staged key
//!   routes to one shard (always, with `shards(1)`), commit holds one
//!   epoch pin across the ops — same-epoch atomicity with no batch id,
//!   no intents, no commit record, and unchanged `shards(1)` media.
//! * **Durability still arrives at the shard's boundary.** Commit makes
//!   the batch *crash-atomic* immediately, not durable: each shard's
//!   half persists when that shard next checkpoints (until then a crash
//!   redoes it from the intents). The boundary also retires the shard's
//!   bit from the batch table, draining slots for reuse.
//! * **Scans stay torn-free.** A batch committing between two
//!   [`Store::range`] refills is observed all-or-nothing by every
//!   subsequent refill (see [`RangeScan`]).
//!
//! ```
//! # use incll_pmem::PArena;
//! # use incll::{Options, Store};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let arena = PArena::builder().capacity_bytes(16 << 20).build()?;
//! # let (store, _) = Store::open(&arena, Options::new().threads(1)
//! #     .log_bytes_per_thread(1 << 20).shards(4))?;
//! # let sess = store.session()?;
//! let mut batch = sess.batch();
//! batch.put(b"orders/42", b"placed")?;
//! batch.put(b"inventory/widget", b"99")?;
//! batch.delete(b"carts/alice")?;
//! batch.commit()?; // crash-atomic across all three keys' shards
//! # Ok(())
//! # }
//! ```
//!
//! # Read semantics
//!
//! The read path is decoupled from the persistence path: reads take a
//! cheap **read pin** on their shard's epoch domain (one transient slot
//! store — no log-buffer write, no arena write, and never a "dirty"
//! stamp, so pure-read traffic leaves lazily cadenced checkpoint timers
//! idle).
//!
//! **What a [`ValueRef`] may observe.** [`Store::get_ref`] returns the
//! key's value validated under the leaf's version check at lookup time,
//! borrowed in place from the durable buffer. While the view lives, its
//! shard cannot pass an epoch boundary, and the allocator only recycles
//! freed buffers *at* a boundary — so the viewed bytes cannot be reused.
//! A concurrent overwrite or remove of the key swaps the tree's pointer
//! to a fresh buffer and frees the old one, but the free path rewrites
//! only the 16-byte allocator header in front of the payload, never the
//! payload itself: a held `ValueRef` therefore always reads an intact,
//! complete value — possibly superseded, never torn.
//! [`ValueRef::is_stale`] reports supersession by re-checking the header
//! words against a lookup-time snapshot (exact across epoch boundaries,
//! best-effort within one epoch). Across an *advance* the view simply
//! keeps reading the same bytes — advances flush caches, they do not
//! move live data — but note the pin itself is what delays that shard's
//! advance, so long-held views should be dropped (or copied with
//! [`ValueRef::to_vec`]) before blocking.
//!
//! **Why snapshot scans can't block advances.** [`Store::range`] /
//! [`Store::iter`] / [`Store::scan`] hold **no** pin between items: each
//! per-shard cursor pins its shard only while refilling one bounded
//! batch (copying the batch out under the pin), then re-finds its
//! position by a fresh key-based descent on the next refill. A scan held
//! open for minutes therefore never delays any shard's
//! `advance_domain`; the stream is a sequence of per-batch epoch
//! snapshots, globally key-ordered, equivalent to the matching sequence
//! of bounded `scan` calls.
//!
//! # Serving traffic
//!
//! The `incll-server` crate puts this store behind a TCP front-end
//! (`incll-server` binary, `incll_server` library), and
//! `incll_ycsb::net` drives it: a load helper plus closed-loop and
//! open-loop (fixed-QPS, coordinated-omission-safe) benchmark clients.
//! The wire format is length-prefixed binary — every frame is a 4-byte
//! little-endian payload length (capped at 1 MiB) followed by the
//! payload, whose first byte is an opcode (requests) or status
//! (responses). Keys carry a `u16` length prefix and embedded values a
//! `u32` prefix; a response whose payload is one trailing blob
//! (`VALUE`, `ERROR`, `STATS`) carries it raw — the frame length
//! already delimits it.
//!
//! | request | payload after opcode | response |
//! |---------|----------------------|----------|
//! | `GET` (0x01) | key | `VALUE` (0x03) or `NOT_FOUND` (0x01) |
//! | `PUT` (0x02) | key, value | `OK` (0x00) or `ERROR` (0x02) |
//! | `DEL` (0x03) | key | `OK` — idempotent; `NOT_FOUND` is a `GET` miss only |
//! | `BATCH` (0x04) | op count, then per op: kind byte (0 put / 1 del), key\[, value\] | `COMMITTED` (0x04) with the `u64` batch id |
//! | `SCAN` (0x05) | start key, `u32` limit | `ENTRIES` (0x05): count, then key/value pairs in key order |
//! | `STATS` (0x06) | — | `STATS` (0x06): a flat JSON object of server counters |
//!
//! **Pipelining.** A client may write any number of requests before
//! reading responses; the server answers every connection strictly in
//! request order even though execution is concurrent (each connection
//! is pinned to one of N worker threads, and grouped commits complete
//! on a separate committer thread). A per-connection reorder buffer
//! holds completed responses until their in-order prefix is ready, and
//! a per-connection writer thread drains that prefix to the socket —
//! workers and the committer never block on a slow client. A
//! malformed-but-framed request gets a typed `ERROR` in its slot and
//! the stream continues; only an unframeable stream (oversized length
//! prefix) hangs up, after answering with the error.
//!
//! **Write ordering.** Writes issued on one connection are applied —
//! and become durable — in request order in every commit mode: the
//! pinned worker executes the connection's requests serially, and in
//! group mode its `PUT`s/`DEL`s *and* `BATCH`es all enter the single
//! committer's queue in that order (a `BATCH` rides the queue as its
//! own atomic commit). Pipelined same-key writes therefore resolve to
//! the last one issued. No order is defined between writes on
//! *different* connections that race.
//!
//! **Backpressure.** The server reads at most a configured pipeline
//! depth (default 256 requests) ahead of the responses it has written
//! back on each connection; past the bound the connection's reader
//! pauses until responses drain. With the 1 MiB frame cap this bounds
//! the memory any one connection can pin, however fast it pipelines.
//!
//! **Group commit.** The server's write durability is a configuration,
//! not a wire flag — the same client bytes get three different
//! guarantees depending on the server's commit mode:
//!
//! * **Per-request** — each `PUT`/`DEL` becomes a one-op
//!   [`WriteBatch::commit_durable`]: durable when the `OK` arrives, at
//!   the price of one fence pair per request.
//! * **Group** *(default)* — small writes from *all* connections are
//!   coalesced: the first write opens a window (default 200 µs,
//!   closed early by an op or byte budget), and the whole group
//!   commits as one durable batch — one commit record, one fence
//!   pair, shared by every write in the group. Acks are withheld
//!   until the group's commit record is durable, so `OK` still means
//!   exactly what it means per-request; the reorder buffer keeps
//!   later reads from overtaking the withheld ack.
//! * **Async** — plain [`Store::put`]/[`Store::remove`]: `OK` means
//!   *applied*, durable only at the shard's next checkpoint. A crash
//!   before one erases acknowledged writes.
//!
//! `BATCH` is always durable-on-ack regardless of mode (it is a
//! [`WriteBatch::commit_durable`] verbatim; under group commit it is
//! sequenced through the committer's queue — still its own atomic
//! commit — so it cannot overtake the connection's earlier grouped
//! writes). Reads (`GET`/`SCAN`)
//! observe every *applied* write, durable or not — but under group
//! commit a write is applied when its group commits, so a read
//! pipelined behind a not-yet-acknowledged write may execute first
//! and miss it. The ack is the visibility point: read-your-writes
//! holds once the write's `OK` has arrived.
//!
//! # Migrating from the pre-`Store` API
//!
//! Earlier revisions exposed the plumbing directly; the mapping is
//! one-to-one:
//!
//! | before | now |
//! |--------|-----|
//! | `superblock::format` + `DurableMasstree::create` / `open` | [`Store::open`] (format-if-empty, create-or-recover) |
//! | `DurableConfig { .. }` | [`Options`] builder |
//! | one tree behind `SB_TREE_ROOT` | [`Options::shards`]`(n)` — n root holders + n epoch-domain cells, fixed at format; `shards(1)` keeps the legacy cell positions |
//! | `tree.thread_ctx(tid).unwrap()` (unchecked `tid`) | [`Store::session`] (bounded RAII pool) |
//! | `tree.put(&ctx, k, u64)` | [`Store::put`] (`&[u8]`) or [`Store::put_u64`] (both shard-routed) |
//! | `tree.get(&ctx, k)` + per-get allocation | [`Store::get`], [`Store::get_into`] reusing a caller buffer, or zero-copy [`Store::get_ref`] (all routed through the borrowed read path) |
//! | `tree.scan(&ctx, ..)` (one tree) | [`Store::scan`] / [`Store::range`] (globally ordered k-way merge) |
//! | scans pinned their shard's epoch for the scan's whole lifetime | `range`/`iter`/`scan` pin per **batch refill** only — a long scan never blocks any shard's checkpoint |
//! | `tree.epoch_manager().advance()` | [`Store::checkpoint`] (all-domains barrier) or [`Store::checkpoint_shard`] (one shard's scoped boundary) |
//! | one global epoch for all shards (layout v2) | one epoch **domain per shard** (layout v3): independent cadences, per-shard failed-epoch sets, per-shard recovery — see the crash-semantics section above |
//! | one shared carve frontier, sequential replay (layout v3) | **per-shard allocator arenas** (layout v4): one carve region + InCLL watermark line per shard (doomed slabs un-carve; the multi-domain eager watermark flush is gone), and [`Options::recovery_threads`] replays shards in parallel (`INCLL_RECOVERY_THREADS` env default) |
//! | cross-shard multi-key writes only via the `checkpoint()` barrier (layout v4) | **atomic write batches** (layout v5): [`Session::batch`] stages puts/deletes, commits via log intents + one durable batch-table record, and recovery redoes-or-drops in-doubt batches per shard — see "Batch atomicity and crash semantics" |
//! | one static carve region per shard, `OutOfMemory` at its boundary (layout v5) | **chunked extent pool** (layout v6): the carvable arena is fixed-size power-of-two extents with a durable owner byte each; a shard that exhausts its active extent claims the next free one online (flushed owner-byte CAS — never torn), so hot shards grow until the *pool* is empty and recovery rebuilds each shard's extent chain from the table — see the crash-semantics section above |
//! | leaked `incll_palloc::Error` | crate-wide [`Error`] (incl. [`Error::ShardMismatch`], [`Error::UnsupportedLayout`]) |
//!
//! On-media layouts are version-screened: v6 (this build) refuses v1–v5
//! media with a typed [`Error::UnsupportedLayout`] — never a reformat.
//!
//! [`DurableMasstree`] remains public as the mid-level API, but it speaks
//! to **one shard's** tree ([`Store::masstree`] and [`Session::ctx`] are
//! unstable escape hatches; [`DurableMasstree::shard`] reaches the rest).

mod batch;
mod error;
pub mod layout;
pub mod pversion;
mod recovery;
mod store;
mod tree;

pub use batch::{WriteBatch, MAX_BATCH_OPS};
pub use error::{Error, MAX_VALUE_BYTES};
pub use recovery::{RecoveryReport, ShardReplay};
pub use store::{ExtentStats, Options, RangeScan, Session, ShardStats, Store};
pub use tree::{DCtx, DurableConfig, DurableMasstree, ReadGuard, ValueRef, VALUE_BUF_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use incll_pmem::{superblock, PArena};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn small_config() -> DurableConfig {
        DurableConfig {
            threads: 2,
            log_bytes_per_thread: 256 << 10,
            incll_enabled: true,
            shards: 1,
            recovery_threads: 1,
            persistence_granularity: 0,
        }
    }

    fn fresh(tracked: bool) -> (PArena, DurableMasstree) {
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(tracked)
            .build()
            .unwrap();
        superblock::format(&arena);
        let tree = DurableMasstree::create(&arena, small_config()).unwrap();
        (arena, tree)
    }

    fn collect(tree: &DurableMasstree, ctx: &DCtx) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        tree.scan(ctx, b"", usize::MAX, &mut |k, v| out.push((k.to_vec(), v)));
        out
    }

    // ---------------- functional (no crash) ----------------

    #[test]
    fn store_cadence_and_granularity_options_wire_through() {
        use std::time::Duration;
        let arena = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
        let cfg = incll_epoch::AdaptiveCadence {
            min: Duration::from_millis(2),
            max: Duration::from_millis(200),
            target_dirty_bytes: 64 << 10,
            hysteresis: 2,
        };
        let opts = Options::new()
            .threads(2)
            .log_bytes_per_thread(1 << 20)
            .shards(2)
            .cadence(cfg)
            .persistence_granularity(4096);
        let (store, _) = Store::open(&arena, opts).unwrap();
        let sess = store.session().unwrap();
        for i in 0..500u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.shard_stats(0).advances_skipped == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for i in 0..store.shard_count() {
            let s = store.shard_stats(i);
            assert!(s.bytes_logged > 0, "shard {i} saw logged bytes");
            assert_eq!(s.bytes_since_boundary, 0, "checkpoint snapshots bytes");
            assert!(s.advances_fired >= 1);
            let iv = s.current_interval.expect("cadence option spawns a driver");
            assert!(iv >= cfg.min && iv <= cfg.max);
            assert!(s.epoch >= 2);
        }
        assert!(
            store.shard_stats(0).advances_skipped > 0,
            "idle shards must be skipped by the adaptive driver"
        );
        // Dropping every clone stops the driver with it.
        let epoch_at_drop = store.shard_stats(0).epoch;
        drop(sess);
        drop(store);
        // No driver thread is left advancing the (still mapped) arena.
        let (store2, _) = Store::open(
            &arena,
            Options::new()
                .threads(2)
                .log_bytes_per_thread(1 << 20)
                .shards(2),
        )
        .unwrap();
        assert!(store2.shard_stats(0).current_interval.is_none());
        assert!(store2.shard_stats(0).epoch >= epoch_at_drop);
    }

    #[test]
    fn put_get_update_remove() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        assert_eq!(t.put(&ctx, b"alpha", 1), None);
        assert_eq!(t.get(&ctx, b"alpha"), Some(1));
        assert_eq!(t.put(&ctx, b"alpha", 2), Some(1));
        assert_eq!(t.get(&ctx, b"alpha"), Some(2));
        assert!(t.remove(&ctx, b"alpha"));
        assert_eq!(t.get(&ctx, b"alpha"), None);
    }

    #[test]
    fn no_flushes_on_op_path() {
        let (a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        // Warm up: slab carves + first-touch logging out of the way, then
        // start a fresh epoch so first modifications take the InCLL path
        // (fresh nodes are born "logged" and need no logging at all).
        for i in 0..64u64 {
            t.put(&ctx, &i.to_be_bytes(), i);
        }
        t.epoch_manager().advance();
        let before = a.stats().snapshot();
        for i in 0..32u64 {
            t.put(&ctx, &(1000 + i).to_be_bytes(), i); // inserts, no splits
            t.put(&ctx, &i.to_be_bytes(), i + 1); // updates
            t.get(&ctx, &i.to_be_bytes());
        }
        let d = a.stats().snapshot().delta(&before);
        // Splits may flush (external log); plain inserts/updates must not.
        assert_eq!(
            d.sfence, d.ext_nodes_logged,
            "every fence must come from an external-log seal"
        );
        assert!(d.incll_perm_logs > 0, "InCLLp should be absorbing inserts");
    }

    #[test]
    fn splits_and_scan_order() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        for i in 0..3000u64 {
            t.put(&ctx, &i.to_be_bytes(), i * 3);
        }
        for i in 0..3000u64 {
            assert_eq!(t.get(&ctx, &i.to_be_bytes()), Some(i * 3), "key {i}");
        }
        let all = collect(&t, &ctx);
        assert_eq!(all.len(), 3000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn long_keys_and_layers() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        t.put(&ctx, b"abcdefgh", 1);
        t.put(&ctx, b"abcdefgh-beyond-one-slice", 2);
        t.put(&ctx, b"abcdefgh-beyond", 3);
        t.put(&ctx, b"ab", 4);
        assert_eq!(t.get(&ctx, b"abcdefgh"), Some(1));
        assert_eq!(t.get(&ctx, b"abcdefgh-beyond-one-slice"), Some(2));
        assert_eq!(t.get(&ctx, b"abcdefgh-beyond"), Some(3));
        assert_eq!(t.get(&ctx, b"ab"), Some(4));
        assert!(t.remove(&ctx, b"abcdefgh-beyond"));
        assert_eq!(t.get(&ctx, b"abcdefgh-beyond"), None);
        assert_eq!(t.get(&ctx, b"abcdefgh-beyond-one-slice"), Some(2));
    }

    #[test]
    fn model_equivalence_across_epochs() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..20_000 {
            let key: Vec<u8> = (0..rng.gen_range(1..16))
                .map(|_| rng.gen_range(b'a'..=b'e'))
                .collect();
            match rng.gen_range(0..10) {
                0..=5 => {
                    let v = rng.gen();
                    assert_eq!(t.put(&ctx, &key, v), model.insert(key.clone(), v), "{step}");
                }
                6..=7 => {
                    assert_eq!(t.remove(&ctx, &key), model.remove(&key).is_some(), "{step}");
                }
                _ => {
                    assert_eq!(t.get(&ctx, &key), model.get(&key).copied(), "{step}");
                }
            }
            if step % 2500 == 0 {
                t.epoch_manager().advance();
            }
        }
        let expect: Vec<_> = model.into_iter().collect();
        assert_eq!(collect(&t, &ctx), expect);
    }

    #[test]
    fn concurrent_writers_disjoint_keys() {
        let (_a, t) = fresh(false);
        std::thread::scope(|s| {
            for tid in 0..2usize {
                let t = t.clone();
                s.spawn(move || {
                    let ctx = t.thread_ctx(tid).unwrap();
                    for i in 0..1500u64 {
                        t.put(&ctx, &(i * 2 + tid as u64).to_be_bytes(), i);
                    }
                });
            }
        });
        let ctx = t.thread_ctx(0).unwrap();
        for tid in 0..2u64 {
            for i in 0..1500u64 {
                assert_eq!(t.get(&ctx, &(i * 2 + tid).to_be_bytes()), Some(i));
            }
        }
    }

    // ---------------- crash + recovery ----------------

    /// Runs `mutate` in a fresh epoch, crashes with `seed`, reopens, and
    /// checks the tree matches `expect` (the state at the epoch boundary).
    fn crash_roundtrip(
        seed: u64,
        setup: impl Fn(&DurableMasstree, &DCtx) -> BTreeMap<Vec<u8>, u64>,
        mutate: impl Fn(&DurableMasstree, &DCtx),
    ) {
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        let expect = setup(&tree, &ctx);
        tree.epoch_manager().advance(); // checkpoint the setup state
        mutate(&tree, &ctx); // doomed epoch
        drop(ctx);
        drop(tree);
        arena.crash_seeded(seed);

        let (tree2, report) = DurableMasstree::open(&arena, small_config()).unwrap();
        assert!(report.failed_epoch >= 2);
        let ctx2 = tree2.thread_ctx(0).unwrap();
        let got = collect(&tree2, &ctx2);
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(got, want, "seed {seed}: must match the checkpoint");
    }

    #[test]
    fn crash_with_staged_intents_recovers_to_the_last_boundary() {
        // A crash landing while a batch's intent entries still sit in a
        // DRAM staging buffer (appended, never drained) must behave as if
        // they were never staged: replay's valid-prefix scan stops at the
        // last sealed entry, the batch has no commit record, and the tree
        // recovers to its last completed boundary.
        let (arena, tree) = fresh(true);
        tree.inner.log.set_persistence_granularity(1 << 20);
        let ctx = tree.thread_ctx(0).unwrap();
        let mut expect = BTreeMap::new();
        for i in 0..50u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
            expect.insert(i.to_be_bytes().to_vec(), i);
        }
        tree.epoch_manager().advance(); // the boundary to recover to

        // Doomed-epoch work through the ordinary wrappers (each seals
        // its own undo entries before the guarded modification)...
        for i in 50..60u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }

        // ...then raw intents staged mid-"commit": appended to the
        // buffer, never drained — exactly the state a crash between a
        // batch's intent phase and its drain leaves behind.
        let epoch = tree.epoch_manager().current_epoch_of(0);
        tree.inner.log.log_intent_in(0, 0, epoch, 999, b"staged-op");
        assert!(
            tree.inner.log.staged_bytes(0, 0) > 0,
            "the raw intent must still be staged"
        );

        drop(ctx);
        drop(tree);
        // A power failure persisting nothing still in flight: the staged
        // intent vanishes with the rest of the cache.
        arena.crash_with(|_, _| 0);

        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        let got = collect(&tree2, &ctx2);
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(got, want, "must recover exactly to the boundary");
    }

    #[test]
    fn crash_persisting_nodes_but_dropping_log_lines_recovers_to_the_boundary() {
        // The write-ahead-undo invariant, probed adversarially: the
        // chooser persists EVERY in-flight store except those landing in
        // the external-log region, which it drops wholesale. If any undo
        // entry were merely staged (unsealed) when its guarded node
        // modification happened, this crash would persist the modified
        // node while erasing its pre-image, and recovery could not roll
        // the node back to the boundary. Runs the LOGGING ablation (InCLL
        // off) so every node's first modification per epoch takes the
        // external-log path, swept over eager and buffered granularities.
        for gran in [0usize, 256, 4096] {
            let arena = PArena::builder()
                .capacity_bytes(32 << 20)
                .tracked(true)
                .build()
                .unwrap();
            superblock::format(&arena);
            let mut cfg = small_config();
            cfg.incll_enabled = false;
            cfg.persistence_granularity = gran;
            let tree = DurableMasstree::create(&arena, cfg.clone()).unwrap();
            let ctx = tree.thread_ctx(0).unwrap();
            let mut expect = BTreeMap::new();
            for i in 0..80u64 {
                tree.put(&ctx, &i.to_be_bytes(), i);
                expect.insert(i.to_be_bytes().to_vec(), i);
            }
            tree.epoch_manager().advance(); // the boundary to recover to

            // Doomed epoch: in-place updates and fresh inserts, every
            // one externally logged (InCLL is off).
            for i in 0..100u64 {
                tree.put(&ctx, &i.to_be_bytes(), i + 1000);
            }
            drop(ctx);
            drop(tree);

            // The log region, straight from the superblock descriptor.
            let lo = arena.pread_u64(superblock::SB_EXTLOG_OFF);
            let threads = arena.pread_u64(superblock::SB_EXTLOG_THREADS);
            let per_slot = arena.pread_u64(superblock::SB_EXTLOG_PER_THREAD);
            let domains = arena.pread_u64(superblock::SB_EXTLOG_DOMAINS).max(1);
            let hi = lo + per_slot * threads * domains;
            assert!(lo != 0 && hi > lo, "log descriptor must be present");
            // Sealed entries live in the durable base and are untouched
            // by the chooser; only unsealed (staged) log bytes can be
            // dropped — exactly the eviction pattern that breaks a
            // protocol which defers undo durability past the mutation.
            arena.crash_with(|line, n| {
                let off = line * 64;
                if off >= lo && off < hi {
                    0
                } else {
                    n
                }
            });

            let (tree2, _) = DurableMasstree::open(&arena, cfg).unwrap();
            let ctx2 = tree2.thread_ctx(0).unwrap();
            let got = collect(&tree2, &ctx2);
            let want: Vec<_> = expect.into_iter().collect();
            assert_eq!(
                got, want,
                "gran={gran}: adversarial eviction must still recover \
                 exactly to the boundary"
            );
        }
    }

    #[test]
    fn crash_reverts_inserts() {
        for seed in 0..10 {
            crash_roundtrip(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..20u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                        m.insert(i.to_be_bytes().to_vec(), i);
                    }
                    m
                },
                |t, ctx| {
                    for i in 20..40u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_updates() {
        for seed in 0..10 {
            crash_roundtrip(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..20u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                        m.insert(i.to_be_bytes().to_vec(), i);
                    }
                    m
                },
                |t, ctx| {
                    for i in 0..20u64 {
                        t.put(ctx, &i.to_be_bytes(), i + 1000);
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_removes() {
        for seed in 0..10 {
            crash_roundtrip(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..20u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                        m.insert(i.to_be_bytes().to_vec(), i);
                    }
                    m
                },
                |t, ctx| {
                    for i in 0..10u64 {
                        t.remove(ctx, &i.to_be_bytes());
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_remove_then_insert_same_epoch() {
        // The InCLLp hazard case: forces the external-log fallback.
        for seed in 0..10 {
            crash_roundtrip(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..14u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                        m.insert(i.to_be_bytes().to_vec(), i);
                    }
                    m
                },
                |t, ctx| {
                    for i in 0..7u64 {
                        t.remove(ctx, &i.to_be_bytes());
                    }
                    for i in 100..107u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_splits() {
        for seed in 0..10 {
            crash_roundtrip(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..10u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                        m.insert(i.to_be_bytes().to_vec(), i);
                    }
                    m
                },
                |t, ctx| {
                    // Far beyond one leaf: leaf + interior splits.
                    for i in 10..400u64 {
                        t.put(ctx, &i.to_be_bytes(), i);
                    }
                },
            );
        }
    }

    #[test]
    fn crash_preserves_completed_epoch_work() {
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        for i in 0..500u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
        tree.epoch_manager().advance();
        // Mixed mutations in the doomed epoch.
        for i in 0..100u64 {
            tree.put(&ctx, &i.to_be_bytes(), 9999);
            tree.remove(&ctx, &(i + 200).to_be_bytes());
        }
        drop(ctx);
        drop(tree);
        arena.crash_seeded(99);
        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        for i in 0..500u64 {
            assert_eq!(tree2.get(&ctx2, &i.to_be_bytes()), Some(i), "key {i}");
        }
    }

    #[test]
    fn random_ops_random_crash_matches_boundary_state() {
        for seed in 0..15u64 {
            let (arena, tree) = fresh(true);
            let ctx = tree.thread_ctx(0).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            let mut checkpoint = model.clone();
            for _ in 0..3 {
                // one epoch of random churn
                for _ in 0..rng.gen_range(10..200) {
                    let key = rng.gen_range(0..60u64).to_be_bytes().to_vec();
                    match rng.gen_range(0..3) {
                        0 => {
                            let v = rng.gen();
                            tree.put(&ctx, &key, v);
                            model.insert(key, v);
                        }
                        1 => {
                            tree.remove(&ctx, &key);
                            model.remove(&key);
                        }
                        _ => {
                            assert_eq!(tree.get(&ctx, &key), model.get(&key).copied());
                        }
                    }
                }
                tree.epoch_manager().advance();
                checkpoint = model.clone();
            }
            // Doomed epoch.
            for _ in 0..rng.gen_range(10..200) {
                let key = rng.gen_range(0..60u64).to_be_bytes().to_vec();
                if rng.gen_bool(0.6) {
                    tree.put(&ctx, &key, rng.gen());
                } else {
                    tree.remove(&ctx, &key);
                }
            }
            drop(ctx);
            drop(tree);
            arena.crash_seeded(seed.wrapping_mul(31) + 7);
            let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
            let ctx2 = tree2.thread_ctx(0).unwrap();
            let want: Vec<_> = checkpoint.into_iter().collect();
            assert_eq!(collect(&tree2, &ctx2), want, "seed {seed}");
        }
    }

    #[test]
    fn double_crash_recovers_to_same_boundary() {
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        let mut expect = BTreeMap::new();
        for i in 0..50u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
            expect.insert(i.to_be_bytes().to_vec(), i);
        }
        tree.epoch_manager().advance();
        for i in 50..80u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
        drop(ctx);
        drop(tree);
        arena.crash_seeded(1);
        // First recovery, then more doomed work, then a second crash.
        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        for i in 80..110u64 {
            tree2.put(&ctx2, &i.to_be_bytes(), i);
        }
        drop(ctx2);
        drop(tree2);
        arena.crash_seeded(2);
        let (tree3, report) = DurableMasstree::open(&arena, small_config()).unwrap();
        assert!(report.failed_epochs.len() >= 2);
        let ctx3 = tree3.thread_ctx(0).unwrap();
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(collect(&tree3, &ctx3), want);
    }

    #[test]
    fn work_after_recovery_persists() {
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        tree.put(&ctx, b"before", 1);
        tree.epoch_manager().advance();
        tree.put(&ctx, b"doomed", 2);
        drop(ctx);
        drop(tree);
        arena.crash_seeded(5);
        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        assert_eq!(tree2.get(&ctx2, b"before"), Some(1));
        assert_eq!(tree2.get(&ctx2, b"doomed"), None);
        tree2.put(&ctx2, b"after", 3);
        tree2.epoch_manager().advance(); // checkpoint the new work
        drop(ctx2);
        drop(tree2);
        arena.crash_seeded(6);
        let (tree3, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx3 = tree3.thread_ctx(0).unwrap();
        assert_eq!(tree3.get(&ctx3, b"before"), Some(1));
        assert_eq!(tree3.get(&ctx3, b"after"), Some(3));
    }

    #[test]
    fn logging_only_mode_is_crash_consistent() {
        // The paper's LOGGING ablation must be *correct*, just slower.
        let config = DurableConfig {
            incll_enabled: false,
            ..small_config()
        };
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let tree = DurableMasstree::create(&arena, config.clone()).unwrap();
        let ctx = tree.thread_ctx(0).unwrap();
        let mut expect = BTreeMap::new();
        for i in 0..40u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
            expect.insert(i.to_be_bytes().to_vec(), i);
        }
        tree.epoch_manager().advance();
        for i in 0..40u64 {
            tree.put(&ctx, &i.to_be_bytes(), 7777);
        }
        assert!(arena.stats().ext_nodes_logged() > 0);
        drop(ctx);
        drop(tree);
        arena.crash_seeded(3);
        let (tree2, _) = DurableMasstree::open(&arena, config).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(collect(&tree2, &ctx2), want);
    }

    #[test]
    fn skewed_updates_share_incll_slot() {
        // Repeated updates of one key in an epoch need only one InCLL log.
        let (a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        t.put(&ctx, b"hot", 0);
        t.epoch_manager().advance();
        let before = a.stats().snapshot();
        for i in 0..100u64 {
            t.put(&ctx, b"hot", i);
        }
        let d = a.stats().snapshot().delta(&before);
        assert_eq!(d.incll_val_logs, 1, "same-slot updates reuse the log");
        assert_eq!(d.ext_nodes_logged, 0);
    }

    #[test]
    fn epoch_window_wrap_falls_back_to_external_log() {
        // ValInCLLs store only 16 epoch bits; when the high window
        // changes (~once an hour at 64 ms epochs) the node must be
        // external-logged instead (§4.1.3).
        let (a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        t.put(&ctx, b"wrapkey", 1);
        t.epoch_manager().advance(); // nodeEpoch ∈ window 0

        // Jump the epoch across the 2^16 window boundary.
        t.epoch_manager().restart_at(1 << 16);
        let before = a.stats().snapshot();
        t.put(&ctx, b"wrapkey", 2); // first touch in the new window
        let d = a.stats().snapshot().delta(&before);
        assert!(
            d.ext_nodes_logged >= 1,
            "window wrap must trigger the external-log fallback"
        );
        assert_eq!(t.get(&ctx, b"wrapkey"), Some(2));
        // Subsequent same-epoch updates are free again.
        let before = a.stats().snapshot();
        t.put(&ctx, b"wrapkey", 3);
        let d = a.stats().snapshot().delta(&before);
        assert_eq!(d.ext_nodes_logged, 0);
    }

    #[test]
    fn wrap_crash_is_recoverable() {
        // Crash in the first epoch of a new 2^16 window: the logged nodes
        // replay correctly even though their InCLL windows mismatch.
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let tree = DurableMasstree::create(&arena, small_config()).unwrap();
        let mut expect = BTreeMap::new();
        {
            let ctx = tree.thread_ctx(0).unwrap();
            for i in 0..30u64 {
                tree.put(&ctx, &i.to_be_bytes(), i);
                expect.insert(i.to_be_bytes().to_vec(), i);
            }
            tree.epoch_manager().advance();
            tree.epoch_manager().restart_at(1 << 16); // window jump

            // exec_epoch moved: lazy recovery will run; that's the uniform
            // open-equals-recover behavior.
            for i in 0..30u64 {
                tree.put(&ctx, &i.to_be_bytes(), 9999); // doomed
            }
        }
        drop(tree);
        arena.crash_seeded(4);
        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(collect(&tree2, &ctx2), want);
    }

    // ---------------- sharding (mid-level) ----------------

    #[test]
    fn shard_handles_are_independent_trees() {
        let arena = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
        superblock::format(&arena);
        let cfg = DurableConfig {
            shards: 4,
            ..small_config()
        };
        let t0 = DurableMasstree::create(&arena, cfg).unwrap();
        assert_eq!(t0.shard_count(), 4);
        let ctx = t0.thread_ctx(0).unwrap();
        let t2 = t0.shard(2);
        // The same key placed in two shards lives twice — placement is the
        // caller's job at this level.
        t0.put(&ctx, b"k", 10);
        t2.put(&ctx, b"k", 20);
        assert_eq!(t0.get(&ctx, b"k"), Some(10));
        assert_eq!(t2.get(&ctx, b"k"), Some(20));
        assert!(t0.remove(&ctx, b"k"));
        assert_eq!(t0.get(&ctx, b"k"), None);
        assert_eq!(t2.get(&ctx, b"k"), Some(20), "shard 2 must be untouched");
        assert_eq!(t2.shard_id(), 2);
        assert_eq!(t0.shard_id(), 0);
    }

    #[test]
    fn shards_crash_and_recover_at_one_shared_boundary() {
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let cfg = DurableConfig {
            shards: 2,
            ..small_config()
        };
        let tree = DurableMasstree::create(&arena, cfg.clone()).unwrap();
        {
            let ctx = tree.thread_ctx(0).unwrap();
            let t1 = tree.shard(1);
            for i in 0..50u64 {
                tree.put(&ctx, &i.to_be_bytes(), i);
                t1.put(&ctx, &i.to_be_bytes(), i + 1000);
            }
            tree.epoch_manager().advance(); // one boundary covers both
            for i in 0..50u64 {
                tree.put(&ctx, &i.to_be_bytes(), 9999); // doomed, shard 0
                t1.put(&ctx, &(i + 50).to_be_bytes(), 9999); // doomed, shard 1
            }
        }
        drop(tree);
        arena.crash_seeded(17);
        let (tree2, report) = DurableMasstree::open(&arena, cfg).unwrap();
        assert_eq!(report.per_shard.len(), 2);
        assert_eq!(
            report
                .per_shard
                .iter()
                .map(|s| s.replayed_entries)
                .sum::<u64>(),
            report.replayed_entries
        );
        let ctx = tree2.thread_ctx(0).unwrap();
        let t1 = tree2.shard(1);
        for i in 0..50u64 {
            assert_eq!(tree2.get(&ctx, &i.to_be_bytes()), Some(i));
            assert_eq!(t1.get(&ctx, &i.to_be_bytes()), Some(i + 1000));
            assert_eq!(t1.get(&ctx, &(i + 50).to_be_bytes()), None);
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let arena = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
        superblock::format(&arena);
        let cfg = DurableConfig {
            shards: 8,
            ..small_config()
        };
        let tree = DurableMasstree::create(&arena, cfg).unwrap();
        let mut hit = [false; 8];
        for i in 0..512u64 {
            let s = tree.shard_for(&i.to_be_bytes());
            assert!(s < 8);
            assert_eq!(s, tree.shard_for(&i.to_be_bytes()), "stable");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "512 keys must touch all 8 shards");
    }

    #[test]
    fn dropping_the_tree_releases_it() {
        // Regression: the epoch-boundary hook must hold the tree weakly;
        // a strong capture cycles through the manager and leaks the
        // arena (found the hard way: a 13 GB OOM in the figure harness).
        let (_a, t) = fresh(false);
        let weak = std::sync::Arc::downgrade(&t.inner);
        let mgr = t.epoch_manager().clone();
        drop(t);
        assert!(
            weak.upgrade().is_none(),
            "tree inner state must be freed once all handles drop"
        );
        // The surviving manager's hook degrades to a no-op.
        mgr.advance();
    }

    #[test]
    fn clean_reopen_preserves_everything() {
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        let mut expect = BTreeMap::new();
        for i in 0..300u64 {
            tree.put(&ctx, &i.to_be_bytes(), i * 2);
            expect.insert(i.to_be_bytes().to_vec(), i * 2);
        }
        tree.epoch_manager().advance(); // clean shutdown = checkpoint
        drop(ctx);
        drop(tree);
        // No crash: reopen (uniform with recovery).
        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(collect(&tree2, &ctx2), want);
    }

    // ---------------- byte-slice values ----------------

    /// Deterministic variable-length value: spans empty through the 320+
    /// byte classes so crash tests cross size-class boundaries.
    fn bval(i: u64) -> Vec<u8> {
        let len = ((i * 37) % 347) as usize;
        (0..len).map(|j| (i as u8).wrapping_add(j as u8)).collect()
    }

    fn collect_bytes(tree: &DurableMasstree, ctx: &DCtx) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        tree.scan_bytes(ctx, b"", usize::MAX, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()))
        });
        out
    }

    #[test]
    fn byte_put_get_update_remove() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        assert_eq!(t.put_bytes(&ctx, b"alpha", b"one").unwrap(), None);
        assert_eq!(t.get_bytes(&ctx, b"alpha").as_deref(), Some(&b"one"[..]));
        assert_eq!(
            t.put_bytes(&ctx, b"alpha", &[7u8; 300]).unwrap().as_deref(),
            Some(&b"one"[..]),
            "class-crossing update returns the old value"
        );
        assert_eq!(
            t.get_bytes(&ctx, b"alpha").as_deref(),
            Some(&[7u8; 300][..])
        );
        assert_eq!(
            t.put_bytes(&ctx, b"alpha", b"").unwrap().as_deref(),
            Some(&[7u8; 300][..])
        );
        assert_eq!(t.get_bytes(&ctx, b"alpha").as_deref(), Some(&b""[..]));
        assert!(t.remove(&ctx, b"alpha"));
        assert_eq!(t.get_bytes(&ctx, b"alpha"), None);
    }

    #[test]
    fn byte_and_u64_forms_interoperate() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        t.put(&ctx, b"k", 0xAB54_A98C_EB1F_0AD2);
        assert_eq!(
            t.get_bytes(&ctx, b"k").as_deref(),
            Some(&0xAB54_A98C_EB1F_0AD2u64.to_le_bytes()[..]),
            "u64 payloads are little-endian 8-byte values"
        );
        t.put_bytes(&ctx, b"k", &7u64.to_le_bytes()).unwrap();
        assert_eq!(t.get(&ctx, b"k"), Some(7));
    }

    #[test]
    fn oversized_value_is_rejected_without_mutation() {
        let (_a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        t.put_bytes(&ctx, b"k", b"keep").unwrap();
        let big = vec![0u8; MAX_VALUE_BYTES + 1];
        assert!(matches!(
            t.put_bytes(&ctx, b"k", &big),
            Err(Error::ValueTooLarge { .. })
        ));
        assert_eq!(t.get_bytes(&ctx, b"k").as_deref(), Some(&b"keep"[..]));
        // The boundary itself is accepted.
        t.put_bytes(&ctx, b"k", &big[..MAX_VALUE_BYTES]).unwrap();
        assert_eq!(
            t.get_bytes(&ctx, b"k").map(|v| v.len()),
            Some(MAX_VALUE_BYTES)
        );
    }

    #[test]
    fn thread_ctx_is_bounds_checked() {
        let (_a, t) = fresh(false);
        assert!(t.thread_ctx(0).is_ok());
        assert!(t.thread_ctx(1).is_ok());
        assert!(matches!(
            t.thread_ctx(2),
            Err(Error::TooManyThreads { limit: 2 })
        ));
        assert!(matches!(
            t.thread_ctx(usize::MAX),
            Err(Error::TooManyThreads { .. })
        ));
    }

    #[test]
    fn no_flushes_on_byte_value_op_path() {
        // The acceptance bar for the byte-value redesign: puts that hit
        // existing size-class buffers keep the InCLL path — zero fences
        // beyond external-log seals.
        let (a, t) = fresh(false);
        let ctx = t.thread_ctx(0).unwrap();
        // Warm up both the 32-byte and the 128-byte classes, then start a
        // fresh epoch.
        for i in 0..64u64 {
            t.put_bytes(&ctx, &i.to_be_bytes(), &[i as u8; 16]).unwrap();
            t.put_bytes(&ctx, &(500 + i).to_be_bytes(), &[i as u8; 100])
                .unwrap();
        }
        t.epoch_manager().advance();
        let before = a.stats().snapshot();
        for i in 0..32u64 {
            t.put_bytes(&ctx, &(1000 + i).to_be_bytes(), &[1u8; 16])
                .unwrap();
            t.put_bytes(&ctx, &i.to_be_bytes(), &[2u8; 20]).unwrap(); // updates, same class
            t.put_bytes(&ctx, &(500 + i).to_be_bytes(), &[3u8; 90])
                .unwrap();
            t.get_bytes(&ctx, &i.to_be_bytes());
        }
        let d = a.stats().snapshot().delta(&before);
        assert_eq!(
            d.sfence, d.ext_nodes_logged,
            "every fence must come from an external-log seal"
        );
        assert!(d.incll_perm_logs > 0, "InCLLp should be absorbing inserts");
        assert!(d.incll_val_logs > 0, "ValInCLL should be absorbing updates");
    }

    /// Byte-value twin of `crash_roundtrip`.
    fn crash_roundtrip_bytes(
        seed: u64,
        setup: impl Fn(&DurableMasstree, &DCtx) -> BTreeMap<Vec<u8>, Vec<u8>>,
        mutate: impl Fn(&DurableMasstree, &DCtx),
    ) {
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        let expect = setup(&tree, &ctx);
        tree.epoch_manager().advance(); // checkpoint the setup state
        mutate(&tree, &ctx); // doomed epoch
        drop(ctx);
        drop(tree);
        arena.crash_seeded(seed);

        let (tree2, report) = DurableMasstree::open(&arena, small_config()).unwrap();
        assert!(report.failed_epoch >= 2);
        let ctx2 = tree2.thread_ctx(0).unwrap();
        let got = collect_bytes(&tree2, &ctx2);
        let want: Vec<_> = expect.into_iter().collect();
        assert_eq!(got, want, "seed {seed}: must match the checkpoint");
    }

    #[test]
    fn crash_reverts_inserts_bytes() {
        for seed in 0..10 {
            crash_roundtrip_bytes(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..20u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                        m.insert(i.to_be_bytes().to_vec(), bval(i));
                    }
                    m
                },
                |t, ctx| {
                    for i in 20..40u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_updates_bytes() {
        for seed in 0..10 {
            crash_roundtrip_bytes(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..20u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                        m.insert(i.to_be_bytes().to_vec(), bval(i));
                    }
                    m
                },
                |t, ctx| {
                    for i in 0..20u64 {
                        // Doomed updates cross size classes both ways.
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i + 1000)).unwrap();
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_removes_bytes() {
        for seed in 0..10 {
            crash_roundtrip_bytes(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..20u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                        m.insert(i.to_be_bytes().to_vec(), bval(i));
                    }
                    m
                },
                |t, ctx| {
                    for i in 0..10u64 {
                        t.remove(ctx, &i.to_be_bytes());
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_remove_then_insert_same_epoch_bytes() {
        // The InCLLp hazard case: forces the external-log fallback.
        for seed in 0..10 {
            crash_roundtrip_bytes(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..14u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                        m.insert(i.to_be_bytes().to_vec(), bval(i));
                    }
                    m
                },
                |t, ctx| {
                    for i in 0..7u64 {
                        t.remove(ctx, &i.to_be_bytes());
                    }
                    for i in 100..107u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                    }
                },
            );
        }
    }

    #[test]
    fn crash_reverts_splits_bytes() {
        for seed in 0..10 {
            crash_roundtrip_bytes(
                seed,
                |t, ctx| {
                    let mut m = BTreeMap::new();
                    for i in 0..10u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                        m.insert(i.to_be_bytes().to_vec(), bval(i));
                    }
                    m
                },
                |t, ctx| {
                    // Far beyond one leaf: leaf + interior splits.
                    for i in 10..400u64 {
                        t.put_bytes(ctx, &i.to_be_bytes(), &bval(i)).unwrap();
                    }
                },
            );
        }
    }

    #[test]
    fn byte_value_buffers_revert_with_contents_intact() {
        // §5 EBR for the generalized buffers: reverted pointers across all
        // size classes see intact contents after heavy doomed churn.
        let (arena, tree) = fresh(true);
        let ctx = tree.thread_ctx(0).unwrap();
        for i in 0..150u64 {
            tree.put_bytes(&ctx, &i.to_be_bytes(), &bval(i)).unwrap();
        }
        tree.epoch_manager().advance();
        for round in 0..3u64 {
            for i in 0..150u64 {
                tree.put_bytes(&ctx, &i.to_be_bytes(), &bval(i + round * 500 + 1))
                    .unwrap();
            }
        }
        drop(ctx);
        drop(tree);
        arena.crash_seeded(404);
        let (tree2, _) = DurableMasstree::open(&arena, small_config()).unwrap();
        let ctx2 = tree2.thread_ctx(0).unwrap();
        for i in 0..150u64 {
            assert_eq!(
                tree2.get_bytes(&ctx2, &i.to_be_bytes()),
                Some(bval(i)),
                "key {i}"
            );
        }
    }
}
