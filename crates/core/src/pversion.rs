//! Version-word operations over persistent-memory node offsets.
//!
//! Durable nodes keep their version word in NVM at offset 0, but its
//! *semantics* are transient: after a crash it may hold any torn value, and
//! lazy recovery reinitialises it (`basenode::initlock()`, Listing 4). The
//! bit layout and protocol are shared with the transient tree
//! ([`incll_masstree::version`]).

use incll_masstree::version::{self, unlock_word, INSERTING, SPLITTING};
use incll_pmem::PArena;

use crate::layout::OFF_VERSION;

/// Spins until the node's version is not dirty; returns the snapshot.
#[inline]
pub fn stable(arena: &PArena, node: u64) -> u64 {
    let mut spins = 0u32;
    loop {
        let v = arena.pread_u64_acquire(node + OFF_VERSION);
        if !version::is_dirty(v) {
            return v;
        }
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Raw acquire load of the version word.
#[inline]
pub fn load(arena: &PArena, node: u64) -> u64 {
    arena.pread_u64_acquire(node + OFF_VERSION)
}

/// Acquires the node's writer lock (spinning).
pub fn lock(arena: &PArena, node: u64) -> u64 {
    let mut spins = 0u32;
    loop {
        let v = arena.pread_u64(node + OFF_VERSION);
        if !version::is_locked(v)
            && arena
                .pcompare_exchange_u64(
                    node + OFF_VERSION,
                    v,
                    v | version::LOCK,
                    std::sync::atomic::Ordering::Acquire,
                    std::sync::atomic::Ordering::Relaxed,
                )
                .is_ok()
        {
            return v | version::LOCK;
        }
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Sets a dirty bit while holding the lock.
#[inline]
pub fn mark_dirty(arena: &PArena, node: u64, bit: u64) {
    let v = arena.pread_u64(node + OFF_VERSION);
    debug_assert!(version::is_locked(v));
    arena.pwrite_u64_release(node + OFF_VERSION, v | bit);
}

/// Releases the lock, bumping counters for the work performed.
#[inline]
pub fn unlock(arena: &PArena, node: u64, did_insert: bool, did_split: bool) {
    let v = arena.pread_u64(node + OFF_VERSION);
    debug_assert!(version::is_locked(v));
    arena.pwrite_u64_release(node + OFF_VERSION, unlock_word(v, did_insert, did_split));
}

/// Sets or clears a flag bit while holding the lock.
pub fn set_flag(arena: &PArena, node: u64, bit: u64, on: bool) {
    let v = arena.pread_u64(node + OFF_VERSION);
    debug_assert!(version::is_locked(v));
    let w = if on { v | bit } else { v & !bit };
    arena.pwrite_u64_release(node + OFF_VERSION, w);
}

/// Reinitialises a (possibly garbage) version word to a clean unlocked
/// state with the given flags — recovery's `initlock()`.
#[inline]
pub fn reinit(arena: &PArena, node: u64, flags: u64) {
    arena.pwrite_u64_release(node + OFF_VERSION, flags);
}

/// Re-exported dirtiness bits for callers.
pub use incll_masstree::version::{changed, DELETED, IS_LEAF, IS_ROOT, LOCK};

/// The insert dirty bit.
pub const DIRTY_INSERT: u64 = INSERTING;
/// The split dirty bit.
pub const DIRTY_SPLIT: u64 = SPLITTING;

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_node() -> (PArena, u64) {
        let a = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let n = a.carve(320, 64).unwrap();
        (a, n)
    }

    #[test]
    fn lock_unlock_roundtrip() {
        let (a, n) = arena_node();
        reinit(&a, n, IS_LEAF);
        let before = stable(&a, n);
        lock(&a, n);
        mark_dirty(&a, n, DIRTY_INSERT);
        unlock(&a, n, true, false);
        let after = stable(&a, n);
        assert!(changed(before, after));
        assert!(!version::is_locked(after));
    }

    #[test]
    fn reinit_clears_garbage() {
        let (a, n) = arena_node();
        a.pwrite_u64(n + OFF_VERSION, u64::MAX); // torn garbage
        reinit(&a, n, IS_LEAF | IS_ROOT);
        let v = stable(&a, n);
        assert_eq!(v, IS_LEAF | IS_ROOT);
    }

    #[test]
    fn contended_lock_is_exclusive() {
        let (a, n) = arena_node();
        reinit(&a, n, 0);
        let counter = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        lock(&a, n);
                        let x = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(x + 1, std::sync::atomic::Ordering::Relaxed);
                        unlock(&a, n, false, false);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2000);
    }
}
