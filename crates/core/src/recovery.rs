//! Post-crash recovery orchestration (§4.3), per epoch domain.
//!
//! Opening a durable tree after a failure (or a clean shutdown — the
//! procedure is uniform) runs the paper's recovery once **per shard**,
//! each against that shard's own epoch timeline:
//!
//! 1. Each shard's durable epoch counter names *its* failed epoch; it
//!    joins the shard's durable failed-epoch set (idempotent across
//!    repeated crashes).
//! 2. The shard's external-log buffers replay every sealed entry of the
//!    *contiguous run* of that shard's failed epochs ending at the crash —
//!    older failed-epoch debris is inert (completed epochs separated them
//!    from the crash; see `incll-extlog`). Entries are independent, so
//!    replay order is free.
//! 3. The shard's epoch counters restart durably past its failed epoch.
//!    This is the only flush recovery performs: new work is tagged with
//!    the new epoch, so the new epoch number must be durable before work
//!    begins.
//! 4. The allocator repairs its head cells (per domain) and watermark.
//! 5. Everything else — permutation and value rollbacks, lock-word
//!    reinitialisation — happens **lazily** on first access to each node
//!    (Listing 4), so restart latency is the log-replay time, not a tree
//!    walk.
//!
//! Because every shard checkpoints on its own cadence, the recovered
//! shards do **not** share a point in time: shard `a` restarts at its own
//! last completed boundary, shard `b` at its (possibly much newer) one.
//! Per-key durability is unchanged — a key's shard checkpointed it or it
//! rolls back — but cross-shard invariants must be enforced above this
//! layer (or by [`crate::Store::checkpoint`], the all-domains barrier).
//!
//! Re-crashing during recovery is safe: nothing above is destructive
//! before its effect is re-derivable, and each failed-epoch set keeps
//! growing until one of that shard's checkpoints completes (which also
//! compacts it; see `incll-pmem`'s `prune_failed_epochs`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use incll_epoch::{EpochManager, EpochOptions};
use incll_extlog::ExtLog;
use incll_palloc::PAlloc;
use incll_pmem::{superblock, PArena};

use crate::error::Error;
use crate::tree::{DurableConfig, DurableMasstree, Inner};

/// Replay work attributed to one keyspace shard (log entries carry the
/// owning shard's tag; see `incll_extlog`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardReplay {
    /// The shard index.
    pub shard: usize,
    /// External-log entries replayed into this shard's tree.
    pub replayed_entries: u64,
    /// Bytes copied back into this shard's tree.
    pub replayed_bytes: u64,
    /// The epoch of **this shard** the crash interrupted (shards
    /// checkpoint independently, so these differ across shards).
    pub failed_epoch: u64,
    /// The epoch this shard's new execution starts at (its recovered
    /// boundary + 1).
    pub recovered_epoch: u64,
}

/// What recovery did; the §6.3 experiment reports these numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when [`crate::Store::open`] found no existing store and
    /// created a fresh one (nothing below applies in that case).
    pub created: bool,
    /// The epoch the crash interrupted in **shard 0** (the whole store's
    /// failed epoch on an unsharded store; per-shard epochs are in
    /// [`RecoveryReport::per_shard`]).
    pub failed_epoch: u64,
    /// Shard 0's durable failed epochs after recording this crash.
    pub failed_epochs: Vec<u64>,
    /// External-log entries replayed, across all shards.
    pub replayed_entries: u64,
    /// Bytes copied back by replay, across all shards.
    pub replayed_bytes: u64,
    /// Wall-clock time of the eager phase (log replay, all shards).
    pub replay_time: Duration,
    /// Replay work and recovered boundary per shard (one entry per shard,
    /// indexed by shard id; empty when the store was freshly created).
    /// Each shard recovers to **its own** last completed epoch; the
    /// entries' counts sum to [`RecoveryReport::replayed_entries`].
    pub per_shard: Vec<ShardReplay>,
}

impl DurableMasstree {
    /// Recovers a durable tree from a crashed (or cleanly closed) arena,
    /// rolling **each shard back to its own** last completed epoch
    /// boundary.
    ///
    /// Most callers want [`crate::Store::open`], which formats/creates on
    /// first use and recovers otherwise.
    ///
    /// # Errors
    ///
    /// Fails if a shard's failed-epoch set is full
    /// ([`incll_pmem::Error::FailedEpochSetFull`] — only possible after
    /// many crashes with **no** completed checkpoint in between, since
    /// checkpoints compact the sets), or with [`Error::ShardMismatch`]
    /// when `config.shards` differs from the count fixed at create.
    ///
    /// # Panics
    ///
    /// Panics if the arena was never [`DurableMasstree::create`]d.
    pub fn open(arena: &PArena, config: DurableConfig) -> Result<(Self, RecoveryReport), Error> {
        assert!(
            superblock::is_formatted(arena) && arena.pread_u64(superblock::SB_TREE_META) == 1,
            "arena holds no durable tree; call create first"
        );
        // 0. The shard count is a format-time property: every root holder,
        //    every epoch-domain cell, and every key's routing depends on it.
        crate::tree::validate_shard_count(config.shards)?;
        let on_media = (arena.pread_u64(superblock::SB_SHARD_COUNT) as usize).max(1);
        if config.shards != on_media {
            return Err(Error::ShardMismatch {
                requested: config.shards,
                on_media,
            });
        }

        let log = ExtLog::open(arena);
        let t0 = Instant::now();
        let mut per_shard = Vec::with_capacity(on_media);
        let mut failed_sets = Vec::with_capacity(on_media);
        let mut exec_epochs = Vec::with_capacity(on_media);
        let mut applied: Vec<(u64, u64)> = Vec::new();
        let mut total_entries = 0u64;
        let mut total_bytes = 0u64;
        for d in 0..on_media {
            // 1. Record this shard's failed epoch.
            let failed_epoch = arena.pread_u64(superblock::domain_cur_epoch_off(d)).max(1);
            superblock::record_failed_epoch_for(arena, d, failed_epoch)?;
            let failed = superblock::failed_epochs_for(arena, d);

            // 2. Replay the shard's contiguous failed run ending at the
            //    crash, from its own log buffers, filtered by its tag.
            let mut min = failed_epoch;
            while min > 1 && failed.contains(&(min - 1)) {
                min -= 1;
            }
            let replay = log.replay_domain(d, min, failed_epoch);
            total_entries += replay.entries_applied;
            total_bytes += replay.bytes_applied;
            applied.extend(replay.applied);
            per_shard.push(ShardReplay {
                shard: d,
                replayed_entries: replay.entries_applied,
                replayed_bytes: replay.bytes_applied,
                failed_epoch,
                recovered_epoch: failed_epoch + 1,
            });
            failed_sets.push(failed);
            exec_epochs.push(failed_epoch + 1);
        }
        // Structural post-pass: parent pointers are not individually
        // logged (see `tree.rs::split_interior`); the restored interior
        // images are the ground truth for child membership, so re-derive
        // every child's parent word from them. Idempotent, unordered.
        for &(target, len) in &applied {
            if len == crate::layout::NODE_BYTES as u64 {
                let m = arena.pread_u64(target + crate::layout::OFF_META);
                if m & crate::layout::meta::IS_LEAF == 0 {
                    let n = (arena.pread_u64(target + crate::layout::OFF_INT_NKEYS) as usize)
                        .min(crate::layout::INT_WIDTH);
                    for i in 0..=n {
                        let child = arena.pread_u64(target + crate::layout::off_int_child(i));
                        if child != 0 {
                            arena.pwrite_u64(child + crate::layout::OFF_PARENT, target);
                        }
                    }
                }
            }
        }
        let replay_time = t0.elapsed();

        // 3. Restart each shard's epochs durably past its own failure.
        let mgr = EpochManager::with_domains(arena.clone(), EpochOptions::durable(), on_media);
        for (d, &exec) in exec_epochs.iter().enumerate() {
            mgr.restart_domain_at(d, exec);
        }

        // 4. Allocator repair, per domain.
        let alloc = PAlloc::open_sharded(arena, &exec_epochs);

        let report = RecoveryReport {
            created: false,
            failed_epoch: per_shard[0].failed_epoch,
            failed_epochs: failed_sets[0].clone(),
            replayed_entries: total_entries,
            replayed_bytes: total_bytes,
            replay_time,
            per_shard,
        };
        let tree = DurableMasstree::from_inner(Arc::new(Inner {
            arena: arena.clone(),
            mgr,
            alloc,
            log,
            failed: failed_sets,
            exec_epochs,
            rec_locks: (0..crate::tree::REC_LOCKS)
                .map(|_| Mutex::new(()))
                .collect(),
            incll_enabled: config.incll_enabled,
            shard_count: on_media,
        }));
        tree.attach_hooks();
        Ok((tree, report))
    }
}
