//! Post-crash recovery orchestration (§4.3).
//!
//! Opening a durable tree after a failure (or a clean shutdown — the
//! procedure is uniform):
//!
//! 1. The durable epoch counter names the failed epoch; it joins the
//!    durable failed-epoch set (idempotent across repeated crashes).
//! 2. The external log replays every sealed entry of the *contiguous run*
//!    of failed epochs ending at the crash — older failed-epoch debris is
//!    inert (completed epochs separated them from the crash; see
//!    `incll-extlog`). Entries are independent, so replay order is free.
//! 3. The epoch counters restart durably past the failed epoch. This is
//!    the only flush recovery performs: new work is tagged with the new
//!    epoch, so the new epoch number must be durable before work begins.
//! 4. The allocator repairs its head cells and watermark.
//! 5. Everything else — permutation and value rollbacks, lock-word
//!    reinitialisation — happens **lazily** on first access to each node
//!    (Listing 4), so restart latency is the log-replay time, not a tree
//!    walk.
//!
//! Re-crashing during recovery is safe: nothing above is destructive
//! before its effect is re-derivable, and the failed-epoch set keeps
//! growing until a checkpoint completes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use incll_epoch::{EpochManager, EpochOptions};
use incll_extlog::ExtLog;
use incll_palloc::PAlloc;
use incll_pmem::{superblock, PArena};

use crate::error::Error;
use crate::tree::{DurableConfig, DurableMasstree, Inner};

/// Replay work attributed to one keyspace shard (log entries carry the
/// owning shard's tag; see `incll_extlog`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardReplay {
    /// The shard index.
    pub shard: usize,
    /// External-log entries replayed into this shard's tree.
    pub replayed_entries: u64,
    /// Bytes copied back into this shard's tree.
    pub replayed_bytes: u64,
}

/// What recovery did; the §6.3 experiment reports these numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when [`crate::Store::open`] found no existing store and
    /// created a fresh one (nothing below applies in that case).
    pub created: bool,
    /// The epoch the crash interrupted.
    pub failed_epoch: u64,
    /// All durable failed epochs after recording this crash.
    pub failed_epochs: Vec<u64>,
    /// External-log entries replayed.
    pub replayed_entries: u64,
    /// Bytes copied back by replay.
    pub replayed_bytes: u64,
    /// Wall-clock time of the eager phase (log replay).
    pub replay_time: Duration,
    /// Replay work per shard (one entry per shard, indexed by shard id;
    /// empty when the store was freshly created). All shards recover under
    /// the one shared epoch, so their entries sum to
    /// [`RecoveryReport::replayed_entries`].
    pub per_shard: Vec<ShardReplay>,
}

impl DurableMasstree {
    /// Recovers a durable tree from a crashed (or cleanly closed) arena.
    ///
    /// Most callers want [`crate::Store::open`], which formats/creates on
    /// first use and recovers otherwise.
    ///
    /// # Errors
    ///
    /// Fails if the failed-epoch set is full
    /// ([`incll_pmem::Error::FailedEpochSetFull`]), or with
    /// [`Error::ShardMismatch`] when `config.shards` differs from the
    /// count fixed at create.
    ///
    /// # Panics
    ///
    /// Panics if the arena was never [`DurableMasstree::create`]d.
    pub fn open(arena: &PArena, config: DurableConfig) -> Result<(Self, RecoveryReport), Error> {
        assert!(
            superblock::is_formatted(arena) && arena.pread_u64(superblock::SB_TREE_META) == 1,
            "arena holds no durable tree; call create first"
        );
        // 0. The shard count is a format-time property: every root holder,
        //    and every key's routing, depends on it.
        crate::tree::validate_shard_count(config.shards)?;
        let on_media = (arena.pread_u64(superblock::SB_SHARD_COUNT) as usize).max(1);
        if config.shards != on_media {
            return Err(Error::ShardMismatch {
                requested: config.shards,
                on_media,
            });
        }
        // 1. Record the failed epoch.
        let failed_epoch = arena.pread_u64(superblock::SB_CUR_EPOCH).max(1);
        superblock::record_failed_epoch(arena, failed_epoch)?;
        let failed = superblock::failed_epochs(arena);

        // 2. Replay the contiguous failed run ending at the crash.
        let mut min = failed_epoch;
        while min > 1 && failed.contains(&(min - 1)) {
            min -= 1;
        }
        let log = ExtLog::open(arena);
        let t0 = Instant::now();
        let replay = log.replay(min, failed_epoch);
        // Structural post-pass: parent pointers are not individually
        // logged (see `tree.rs::split_interior`); the restored interior
        // images are the ground truth for child membership, so re-derive
        // every child's parent word from them. Idempotent, unordered.
        for &(target, len) in &replay.applied {
            if len == crate::layout::NODE_BYTES as u64 {
                let m = arena.pread_u64(target + crate::layout::OFF_META);
                if m & crate::layout::meta::IS_LEAF == 0 {
                    let n = (arena.pread_u64(target + crate::layout::OFF_INT_NKEYS) as usize)
                        .min(crate::layout::INT_WIDTH);
                    for i in 0..=n {
                        let child = arena.pread_u64(target + crate::layout::off_int_child(i));
                        if child != 0 {
                            arena.pwrite_u64(child + crate::layout::OFF_PARENT, target);
                        }
                    }
                }
            }
        }
        let replay_time = t0.elapsed();

        // 3. Restart the epochs durably past the failure.
        let exec = failed_epoch + 1;
        let mgr = EpochManager::new(arena.clone(), EpochOptions::durable());
        mgr.restart_at(exec);

        // 4. Allocator repair.
        let alloc = PAlloc::open(arena, exec);

        // Attribute replay work per shard from the entry tags. Every shard
        // rolled back to the same boundary — the failed-epoch set and the
        // epoch restart above are global — so shards with no entries still
        // get a (zeroed) row.
        let per_shard: Vec<ShardReplay> = (0..on_media)
            .map(|s| {
                let counts = replay
                    .per_tag
                    .iter()
                    .find(|t| t.tag as usize == s)
                    .copied()
                    .unwrap_or_default();
                ShardReplay {
                    shard: s,
                    replayed_entries: counts.entries,
                    replayed_bytes: counts.bytes,
                }
            })
            .collect();

        let tree = DurableMasstree::from_inner(Arc::new(Inner {
            arena: arena.clone(),
            mgr,
            alloc,
            log,
            failed: failed.clone(),
            exec_epoch: exec,
            rec_locks: (0..crate::tree::REC_LOCKS)
                .map(|_| Mutex::new(()))
                .collect(),
            incll_enabled: config.incll_enabled,
            shard_count: on_media,
        }));
        tree.attach_hooks();
        let report = RecoveryReport {
            created: false,
            failed_epoch,
            failed_epochs: failed,
            replayed_entries: replay.entries_applied,
            replayed_bytes: replay.bytes_applied,
            replay_time,
            per_shard,
        };
        Ok((tree, report))
    }
}
