//! Post-crash recovery orchestration (§4.3), per epoch domain — in
//! parallel across shards.
//!
//! Opening a durable tree after a failure (or a clean shutdown — the
//! procedure is uniform) runs the paper's recovery once **per shard**,
//! each against that shard's own epoch timeline:
//!
//! 1. Each shard's durable epoch counter names *its* failed epoch; it
//!    joins the shard's durable failed-epoch set (idempotent across
//!    repeated crashes).
//! 2. The shard's external-log buffers replay every sealed entry of the
//!    *contiguous run* of that shard's failed epochs ending at the crash —
//!    older failed-epoch debris is inert (completed epochs separated them
//!    from the crash; see `incll-extlog`). Entries are independent, so
//!    replay order is free.
//! 3. The shard's epoch counters restart durably past its failed epoch.
//!    This is the only flush recovery performs: new work is tagged with
//!    the new epoch, so the new epoch number must be durable before work
//!    begins.
//! 4. The allocator repairs the shard's head cells and reverts the
//!    shard's carve watermark (un-carving doomed slabs).
//! 5. The shard's in-doubt **write batches** are resolved (see
//!    `crate::batch`): the replay scan surfaced the shard's intent
//!    entries, and each batch with a durable commit record in the
//!    superblock batch table is *redone* through the ordinary put /
//!    remove paths, while a batch with no commit record is *dropped* —
//!    so a cross-shard batch survives a crash everywhere or nowhere.
//!    Redo is idempotent (a re-crash replays the same intents again) and
//!    per-shard on shard-owned state, hence byte-identical at every
//!    worker count. Counts land in [`ShardReplay::batches_redone`] /
//!    [`ShardReplay::batches_dropped`].
//! 6. Everything else — permutation and value rollbacks, lock-word
//!    reinitialisation — happens **lazily** on first access to each node
//!    (Listing 4), so restart latency is the log-replay time, not a tree
//!    walk.
//!
//! # Recovery parallelism
//!
//! Since the log buffers are per-(thread × shard) and every durable
//! object — node, holder cell, value buffer, allocator list, watermark
//! line, epoch cell — is owned by exactly one shard for life, the
//! per-shard recovery steps touch **disjoint** state. [`DurableMasstree::open`]
//! therefore spreads them over up to [`DurableConfig::recovery_threads`]
//! workers, each owning a strided subset of the shards; steps 1–4 run
//! start-to-finish per shard inside one worker, mirroring how *Adaptive
//! Logging* exploits partitioned logs for parallel replay. The recovered
//! state is **byte-identical at every worker count** (including 1): no
//! two shards share a cache line of recovered state, so interleaving
//! cannot change any outcome — only the restart wall-clock. The
//! [`RecoveryReport`] carries the worker count actually used and each
//! shard's replay wall time.
//!
//! Because every shard checkpoints on its own cadence, the recovered
//! shards do **not** share a point in time: shard `a` restarts at its own
//! last completed boundary, shard `b` at its (possibly much newer) one.
//! Per-key durability is unchanged — a key's shard checkpointed it or it
//! rolls back — but cross-shard invariants must be enforced above this
//! layer (or by [`crate::Store::checkpoint`], the all-domains barrier).
//!
//! Re-crashing during recovery is safe: nothing above is destructive
//! before its effect is re-derivable, and each failed-epoch set keeps
//! growing until one of that shard's checkpoints completes (which also
//! compacts it; see `incll-pmem`'s `prune_failed_epochs`).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use incll_epoch::{EpochManager, EpochOptions};
use incll_extlog::{ExtLog, IntentEntry};
use incll_palloc::PAlloc;
use incll_pmem::{superblock, PArena};

use crate::batch::RedoOp;
use crate::error::Error;
use crate::tree::{DurableConfig, DurableMasstree, Inner};

/// Replay work attributed to one keyspace shard (log entries carry the
/// owning shard's tag; see `incll_extlog`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardReplay {
    /// The shard index.
    pub shard: usize,
    /// External-log entries replayed into this shard's tree.
    pub replayed_entries: u64,
    /// Bytes copied back into this shard's tree.
    pub replayed_bytes: u64,
    /// The epoch of **this shard** the crash interrupted (shards
    /// checkpoint independently, so these differ across shards).
    pub failed_epoch: u64,
    /// The epoch this shard's new execution starts at (its recovered
    /// boundary + 1).
    pub recovered_epoch: u64,
    /// Wall-clock time of this shard's eager recovery (log replay, parent
    /// re-derivation, epoch restart, allocator repair) inside its worker.
    /// With parallel recovery these overlap; they sum to more than
    /// [`RecoveryReport::replay_time`] when the workers actually ran
    /// concurrently.
    pub replay_time: Duration,
    /// In-doubt write batches whose commit record was durable: their
    /// intent entries on this shard were redone (see `crate::batch`).
    pub batches_redone: u64,
    /// In-doubt write batches with no durable commit record: their intent
    /// entries on this shard were dropped.
    pub batches_dropped: u64,
}

/// What recovery did; the §6.3 experiment reports these numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when [`crate::Store::open`] found no existing store and
    /// created a fresh one (nothing below applies in that case).
    pub created: bool,
    /// The epoch the crash interrupted in **shard 0** (the whole store's
    /// failed epoch on an unsharded store; per-shard epochs are in
    /// [`RecoveryReport::per_shard`]).
    pub failed_epoch: u64,
    /// Shard 0's durable failed epochs after recording this crash.
    pub failed_epochs: Vec<u64>,
    /// External-log entries replayed, across all shards.
    pub replayed_entries: u64,
    /// Bytes copied back by replay, across all shards.
    pub replayed_bytes: u64,
    /// Wall-clock time of the eager phase (log replay, all shards).
    pub replay_time: Duration,
    /// Recovery workers used: `min(recovery_threads, shards)`; 1 means
    /// the shards were replayed sequentially, 0 that the store was
    /// freshly created and nothing was recovered. The recovered *state*
    /// is identical at every worker count (see the module docs) — only
    /// the wall-clock changes.
    pub parallel_workers: usize,
    /// Replay work and recovered boundary per shard (one entry per shard,
    /// indexed by shard id; empty when the store was freshly created).
    /// Each shard recovers to **its own** last completed epoch; the
    /// entries' counts sum to [`RecoveryReport::replayed_entries`].
    pub per_shard: Vec<ShardReplay>,
}

/// Runs `f(shard)` for every shard, spread over `workers` threads (worker
/// `w` owns the strided subset `w, w+workers, ...`), and returns the
/// results indexed by shard. `workers == 1` runs inline. The closure is
/// called exactly once per shard; cross-shard ordering is unspecified —
/// callers must only do shard-owned work inside.
fn run_per_shard<T, F>(workers: usize, shards: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || shards <= 1 {
        return (0..shards).map(f).collect();
    }
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(shards).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                s.spawn(move || {
                    (w..shards)
                        .step_by(workers)
                        .map(|d| (d, f(d)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (d, v) in h.join().expect("recovery worker panicked") {
                out[d] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every shard visited exactly once"))
        .collect()
}

/// Per-shard result of the failed-epoch resolution phase.
struct Resolved {
    /// The shard's interrupted epoch.
    failed_epoch: u64,
    /// The shard's durable failed-epoch set after recording it.
    failed: Vec<u64>,
    /// Start of the contiguous failed run ending at the crash.
    run_min: u64,
}

impl DurableMasstree {
    /// Recovers a durable tree from a crashed (or cleanly closed) arena,
    /// rolling **each shard back to its own** last completed epoch
    /// boundary — with up to [`DurableConfig::recovery_threads`] shards
    /// recovering concurrently (see the module docs).
    ///
    /// Most callers want [`crate::Store::open`], which formats/creates on
    /// first use and recovers otherwise.
    ///
    /// # Errors
    ///
    /// Fails if a shard's failed-epoch set is full
    /// ([`incll_pmem::Error::FailedEpochSetFull`] — only possible after
    /// many crashes with **no** completed checkpoint in between, since
    /// checkpoints compact the sets), or with [`Error::ShardMismatch`]
    /// when `config.shards` differs from the count fixed at create.
    ///
    /// # Panics
    ///
    /// Panics if the arena was never [`DurableMasstree::create`]d.
    pub fn open(arena: &PArena, config: DurableConfig) -> Result<(Self, RecoveryReport), Error> {
        assert!(
            superblock::is_formatted(arena) && arena.pread_u64(superblock::SB_TREE_META) == 1,
            "arena holds no durable tree; call create first"
        );
        // 0. The shard count is a format-time property: every root holder,
        //    every epoch-domain cell, and every key's routing depends on it.
        crate::tree::validate_shard_count(config.shards)?;
        let on_media = (arena.pread_u64(superblock::SB_SHARD_COUNT) as usize).max(1);
        if config.shards != on_media {
            return Err(Error::ShardMismatch {
                requested: config.shards,
                on_media,
            });
        }
        let workers = config.recovery_threads.max(1).min(on_media);

        let log = ExtLog::open(arena);
        // A runtime knob, not an on-media property: any granularity opens
        // any media (replay reads the same entry format either way).
        log.set_persistence_granularity(config.persistence_granularity as u64);
        let t0 = Instant::now();

        // Phase 1 (parallel over shards): record each shard's failed epoch
        // and compute its contiguous failed run. Each shard writes only
        // its own superblock cells.
        let resolved = run_per_shard(workers, on_media, |d| -> Result<Resolved, Error> {
            let failed_epoch = arena.pread_u64(superblock::domain_cur_epoch_off(d)).max(1);
            superblock::record_failed_epoch_for(arena, d, failed_epoch)?;
            let failed = superblock::failed_epochs_for(arena, d);
            let mut run_min = failed_epoch;
            while run_min > 1 && failed.contains(&(run_min - 1)) {
                run_min -= 1;
            }
            Ok(Resolved {
                failed_epoch,
                failed,
                run_min,
            })
        });
        // Surface errors deterministically: lowest shard index first.
        let mut failed_sets = Vec::with_capacity(on_media);
        let mut exec_epochs = Vec::with_capacity(on_media);
        let mut runs = Vec::with_capacity(on_media);
        for r in resolved {
            let r = r?;
            failed_sets.push(r.failed);
            exec_epochs.push(r.failed_epoch + 1);
            runs.push((r.run_min, r.failed_epoch));
        }

        // Shared handles the per-shard workers repair through. Built
        // between the phases: the epoch manager snapshots the (not yet
        // restarted) durable counters, and the allocator snapshots the
        // (now complete) failed-epoch sets.
        let mgr = EpochManager::with_domains(arena.clone(), EpochOptions::durable(), on_media);
        let alloc = PAlloc::open_staged(arena, on_media);

        // Phase 2 (parallel over shards): replay the shard's own log
        // buffers, re-derive parent pointers from its restored interiors,
        // restart its epoch domain, and repair its allocator state — all
        // shard-owned, so workers never touch a common cache line. The
        // replay scan also surfaces the shard's batch intent entries,
        // carried forward to the resolution phase below.
        let replayed: Vec<(ShardReplay, Vec<IntentEntry>)> =
            run_per_shard(workers, on_media, |d| {
                let ts = Instant::now();
                let (run_min, failed_epoch) = runs[d];

                // 2a. Replay the shard's contiguous failed run ending at the
                //     crash, from its own buffers, filtered by its tag.
                let replay = log.replay_domain(d, run_min, failed_epoch);

                // 2b. Structural post-pass: parent pointers are not
                //     individually logged (see `tree.rs::split_interior`); the
                //     restored interior images are the ground truth for child
                //     membership, so re-derive every child's parent word from
                //     them. Idempotent, unordered; children belong to the same
                //     shard as their interior.
                for &(target, len) in &replay.applied {
                    if len == crate::layout::NODE_BYTES as u64 {
                        let m = arena.pread_u64(target + crate::layout::OFF_META);
                        if m & crate::layout::meta::IS_LEAF == 0 {
                            let n = (arena.pread_u64(target + crate::layout::OFF_INT_NKEYS)
                                as usize)
                                .min(crate::layout::INT_WIDTH);
                            for i in 0..=n {
                                let child =
                                    arena.pread_u64(target + crate::layout::off_int_child(i));
                                if child != 0 {
                                    arena.pwrite_u64(child + crate::layout::OFF_PARENT, target);
                                }
                            }
                        }
                    }
                }

                // 2c. Restart the shard's epochs durably past its own failure.
                mgr.restart_domain_at(d, failed_epoch + 1);

                // 2d. Allocator repair: head cells, watermark revert
                //     (un-carving doomed slabs), pending-list splice.
                alloc.recover_domain(d, failed_epoch + 1);

                let shard_replay = ShardReplay {
                    shard: d,
                    replayed_entries: replay.entries_applied,
                    replayed_bytes: replay.bytes_applied,
                    failed_epoch,
                    recovered_epoch: failed_epoch + 1,
                    replay_time: ts.elapsed(),
                    batches_redone: 0,
                    batches_dropped: 0,
                };
                (shard_replay, replay.intents)
            });
        let (mut per_shard, intents): (Vec<ShardReplay>, Vec<Vec<IntentEntry>>) =
            replayed.into_iter().unzip();

        let tree = DurableMasstree::from_inner(Arc::new(Inner {
            arena: arena.clone(),
            mgr,
            alloc,
            log,
            failed: failed_sets.clone(),
            exec_epochs,
            rec_locks: (0..crate::tree::REC_LOCKS)
                .map(|_| Mutex::new(()))
                .collect(),
            incll_enabled: config.incll_enabled,
            shard_count: on_media,
            batches: Mutex::new(crate::batch::BatchSlots::load(arena)),
        }));
        tree.attach_hooks();

        // Phase 3 (parallel over shards): resolve the shard's in-doubt
        // batches against the durable batch table — redo committed
        // intents through the ordinary put/remove paths at the restarted
        // epoch, drop the rest. Still shard-owned work: thread slot 0's
        // allocator lists and log buffers are per-(thread × shard), so
        // two workers redoing different shards never share state, and
        // the recovered bytes stay identical at every worker count.
        let resolved = run_per_shard(workers, on_media, |d| {
            resolve_in_doubt_batches(&tree, arena, d, &intents[d])
        });
        for (d, (redone, dropped)) in resolved.into_iter().enumerate() {
            per_shard[d].batches_redone = redone;
            per_shard[d].batches_dropped = dropped;
        }
        let replay_time = t0.elapsed();

        let report = RecoveryReport {
            created: false,
            failed_epoch: per_shard[0].failed_epoch,
            failed_epochs: failed_sets[0].clone(),
            replayed_entries: per_shard.iter().map(|s| s.replayed_entries).sum(),
            replayed_bytes: per_shard.iter().map(|s| s.replayed_bytes).sum(),
            replay_time,
            parallel_workers: workers,
            per_shard,
        };
        Ok((tree, report))
    }
}

/// Resolves one shard's in-doubt batches (phase 3): groups the shard's
/// surfaced intents by batch id (ascending — a deterministic order), then
/// redoes every batch with a durable commit record and drops the rest.
/// Returns `(batches_redone, batches_dropped)`.
///
/// Redo runs through the ordinary put/remove paths on thread slot 0 —
/// puts are last-write-wins and deletes are no-ops when absent, so a
/// re-crash that replays the same intents again converges to the same
/// bytes (the second recovery's undo replay first restores this pass's
/// own pre-images).
fn resolve_in_doubt_batches(
    tree: &DurableMasstree,
    arena: &PArena,
    d: usize,
    intents: &[IntentEntry],
) -> (u64, u64) {
    if intents.is_empty() {
        return (0, 0);
    }
    let mut by_batch: BTreeMap<u64, Vec<&IntentEntry>> = BTreeMap::new();
    for e in intents {
        by_batch.entry(e.batch_id).or_default().push(e);
    }
    let shard = tree.shard(d);
    let ctx = shard.thread_ctx(0).expect("thread slot 0 always exists");
    let (mut redone, mut dropped) = (0u64, 0u64);
    for (id, entries) in &by_batch {
        if !superblock::batch_is_committed(arena, *id) {
            dropped += 1;
            continue;
        }
        for e in entries {
            match crate::batch::decode_intent(&e.payload) {
                Some(RedoOp::Put { key, val }) => {
                    shard
                        .put_bytes(&ctx, key, val)
                        .expect("arena must fit a committed batch's redo");
                }
                Some(RedoOp::Delete { key }) => {
                    shard.remove(&ctx, key);
                }
                // Unreachable for checksummed intents; never panic
                // recovery over one undecodable payload.
                None => {}
            }
        }
        redone += 1;
    }
    (redone, dropped)
}
