//! Figure 2 bench: throughput of MT, MT+ and INCLL on the YCSB mixes.
//!
//! Prints the paper-style series at quick scale, then measures one
//! representative workload (YCSB_A uniform) per system under Criterion.
//! Full-scale regeneration: `cargo run --release -p incll-bench --bin
//! figures -- fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, build_mt, build_mtplus, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn quick_cfg(p: &ExpParams) -> (SystemConfig, RunConfig) {
    let mut cfg = SystemConfig::new(p.keys, p.threads);
    cfg.wbinvd_ns = 0;
    let rc = RunConfig {
        threads: p.threads,
        ops_per_thread: p.ops_per_thread,
        nkeys: p.keys,
        mix: Mix::A,
        dist: Dist::Uniform,
        seed: p.seed,
    };
    (cfg, rc)
}

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::fig2(&p);

    let (cfg, rc) = quick_cfg(&p);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);

    let mt = build_mt(&cfg);
    load(&mt.tree, p.keys, p.threads);
    g.bench_function("ycsb_a_uniform_MT", |b| b.iter(|| run(&mt.tree, &rc)));
    drop(mt);

    let mtp = build_mtplus(&cfg);
    load(&mtp.tree, p.keys, p.threads);
    g.bench_function("ycsb_a_uniform_MT+", |b| b.iter(|| run(&mtp.tree, &rc)));
    drop(mtp);

    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, p.threads);
    g.bench_function("ycsb_a_uniform_INCLL", |b| b.iter(|| run(&inc.tree, &rc)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
