//! Figure 4 bench: thread scaling of MT+ vs INCLL.
//!
//! Full-scale: `figures fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::fig4(&p, &[1, 2, 4]);

    let mut cfg = SystemConfig::new(p.keys, 4);
    cfg.wbinvd_ns = 0;
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, 2);
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        let rc = RunConfig {
            threads,
            ops_per_thread: p.ops_per_thread / threads as u64,
            nkeys: p.keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: p.seed,
        };
        g.bench_function(format!("ycsb_a_incll_{threads}t"), |b| {
            b.iter(|| run(&inc.tree, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
