//! §6.1 bench: interior-node logging share (why leaf-only InCLL is the
//! right design — the paper tried interior InCLLs and rejected them).
//!
//! Full-scale: `figures ablation`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::ablation_internal(&p);

    // Criterion angle: insert-heavy growth (max split/interior traffic).
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    let mut cfg = SystemConfig::new(p.keys * 4, 1);
    cfg.wbinvd_ns = 0;
    let sys = build_incll(&cfg);
    load(&sys.tree, p.keys, 1);
    let rc = RunConfig {
        threads: 1,
        ops_per_thread: p.ops_per_thread,
        nkeys: p.keys,
        mix: Mix::A,
        dist: Dist::Uniform,
        seed: p.seed,
    };
    g.bench_function("ycsb_a_with_interior_logging", |b| {
        b.iter(|| run(&sys.tree, &rc))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
