//! Figure 3 bench: INCLL sensitivity to emulated NVM latency.
//!
//! Full-scale: `figures fig3`. The Criterion measurement contrasts the
//! 0 ns and 1000 ns endpoints of the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::fig3(&p);

    let mut cfg = SystemConfig::new(p.keys, p.threads);
    cfg.wbinvd_ns = 0;
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, p.threads);
    let rc = RunConfig {
        threads: p.threads,
        ops_per_thread: p.ops_per_thread,
        nkeys: p.keys,
        mix: Mix::A,
        dist: Dist::Uniform,
        seed: p.seed,
    };
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for ns in [0u64, 1000] {
        inc.arena.latency().set_sfence_ns(ns);
        g.bench_function(format!("ycsb_a_incll_{ns}ns"), |b| {
            b.iter(|| run(&inc.tree, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
