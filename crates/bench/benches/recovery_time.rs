//! §6.3 bench: recovery time after a crash at the end of a write-heavy
//! epoch (the paper's worst case: ~84 K logged nodes replayed in ~15 ms).
//!
//! The eager phase of recovery *is* external-log replay, and replay is
//! idempotent — so Criterion measures `ExtLog::replay` directly over a log
//! populated with one doomed epoch's node images. (A full crash+open cycle
//! cannot be a Criterion iteration: each recovery durably consumes one of
//! the arena's bounded failed-epoch slots, §DESIGN.)
//!
//! Full-scale end-to-end numbers: `figures recovery`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::recovery_time(&p);

    // Build one doomed epoch worth of log entries.
    let mut cfg = SystemConfig::new(p.keys, 1);
    cfg.wbinvd_ns = 0;
    cfg.epoch_interval = None;
    let sys = build_incll(&cfg);
    load(&sys.tree, p.keys, 1);
    let crashed_epoch = sys.tree.epoch_manager().advance();
    run(
        &sys.tree,
        &RunConfig {
            threads: 1,
            ops_per_thread: p.ops_per_thread,
            nkeys: p.keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: p.seed,
        },
    );
    let entries = sys.arena.stats().ext_nodes_logged();
    let log = incll_extlog::ExtLog::open(&sys.arena);

    let mut g = c.benchmark_group("recovery");
    g.sample_size(20);
    g.bench_function(format!("replay_{entries}_entries"), |b| {
        b.iter(|| {
            let report = log.replay(crashed_epoch, crashed_epoch);
            assert!(report.entries_applied > 0);
            report.entries_applied
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
