//! Figure 8 bench: LOGGING vs INCLL under emulated NVM latency — the
//! paper's headline robustness comparison.
//!
//! Full-scale: `figures fig8`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::fig8(&p);

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for incll in [true, false] {
        let mut cfg = SystemConfig::new(p.keys, p.threads);
        cfg.wbinvd_ns = 0;
        cfg.incll = incll;
        let sys = build_incll(&cfg);
        load(&sys.tree, p.keys, p.threads);
        sys.arena.latency().set_sfence_ns(1000);
        let rc = RunConfig {
            threads: p.threads,
            ops_per_thread: p.ops_per_thread,
            nkeys: p.keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: p.seed,
        };
        let label = if incll { "incll" } else { "logging" };
        g.bench_function(format!("ycsb_a_{label}_1000ns"), |b| {
            b.iter(|| run(&sys.tree, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
