//! Figure 5 bench: throughput across tree sizes (MT+ vs INCLL).
//!
//! Full-scale: `figures fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::figs5_6(&p, &[2_000, 10_000, 50_000]);

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for keys in [2_000u64, 20_000] {
        let mut cfg = SystemConfig::new(keys, p.threads);
        cfg.wbinvd_ns = 0;
        let inc = build_incll(&cfg);
        load(&inc.tree, keys, p.threads);
        let rc = RunConfig {
            threads: p.threads,
            ops_per_thread: p.ops_per_thread,
            nkeys: keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: p.seed,
        };
        g.bench_function(format!("ycsb_a_incll_{keys}keys"), |b| {
            b.iter(|| run(&inc.tree, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
