//! §6.2 bench: the per-epoch checkpoint (whole-cache flush) cost.
//!
//! The paper measures 1.38–1.39 ms per `wbinvd`, 2.2 % of a 64 ms epoch.
//! Criterion measures `advance()` with the emulated flush stall.
//!
//! Full-scale: `figures flushcost`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig, PAPER_WBINVD_NS};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::flush_cost(&p);

    let mut g = c.benchmark_group("flush_cost");
    g.sample_size(20);
    for (label, ns) in [("free_flush", 0u64), ("paper_wbinvd", PAPER_WBINVD_NS)] {
        let mut cfg = SystemConfig::new(p.keys, 1);
        cfg.wbinvd_ns = ns;
        cfg.epoch_interval = None;
        let sys = build_incll(&cfg);
        let ctx = sys.tree.thread_ctx(0).expect("slot 0 exists");
        let mut i = 0u64;
        g.bench_function(format!("advance_{label}"), |b| {
            b.iter(|| {
                // A little dirty state per epoch, then the checkpoint.
                for _ in 0..16 {
                    sys.tree.put(&ctx, &incll_ycsb::storage_key(i % p.keys), i);
                    i += 1;
                }
                sys.tree.epoch_manager().advance()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
