//! Figure 6 bench: the INCLL-over-MT+ overhead parabola across tree sizes.
//!
//! Derived from the Figure 5 data; this bench prints the overhead table at
//! quick scale and measures the MT+/INCLL pair at one mid-curve size so
//! regressions in relative overhead show up in Criterion history.
//!
//! Full-scale: `figures fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, build_mtplus, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    let (_t5, t6) = experiments::figs5_6(&p, &[2_000, 10_000, 50_000]);
    drop(t6);

    let keys = 20_000u64;
    let mut cfg = SystemConfig::new(keys, p.threads);
    cfg.wbinvd_ns = 0;
    let rc = RunConfig {
        threads: p.threads,
        ops_per_thread: p.ops_per_thread,
        nkeys: keys,
        mix: Mix::A,
        dist: Dist::Uniform,
        seed: p.seed,
    };
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let mtp = build_mtplus(&cfg);
    load(&mtp.tree, keys, p.threads);
    g.bench_function("midsize_mtplus", |b| b.iter(|| run(&mtp.tree, &rc)));
    drop(mtp);
    let inc = build_incll(&cfg);
    load(&inc.tree, keys, p.threads);
    g.bench_function("midsize_incll", |b| b.iter(|| run(&inc.tree, &rc)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
