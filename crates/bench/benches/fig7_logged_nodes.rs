//! Figure 7 bench: externally logged nodes, LOGGING vs INCLL.
//!
//! Full-scale: `figures fig7`. The Criterion measurement times the
//! LOGGING-mode workload (whose cost is dominated by log traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::experiments::{self, ExpParams};
use incll_bench::systems::{build_incll, SystemConfig};
use incll_ycsb::{load, run, Dist, Mix, RunConfig};

fn bench(c: &mut Criterion) {
    let p = ExpParams::quick();
    experiments::fig7(&p, &[2_000, 10_000, 50_000]);

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for incll in [true, false] {
        let mut cfg = SystemConfig::new(p.keys, p.threads);
        cfg.wbinvd_ns = 0;
        cfg.incll = incll;
        let sys = build_incll(&cfg);
        load(&sys.tree, p.keys, p.threads);
        let rc = RunConfig {
            threads: p.threads,
            ops_per_thread: p.ops_per_thread,
            nkeys: p.keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: p.seed,
        };
        let label = if incll { "incll" } else { "logging" };
        g.bench_function(format!("ycsb_a_{label}"), |b| {
            b.iter(|| run(&sys.tree, &rc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
