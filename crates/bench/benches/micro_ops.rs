//! Micro-benchmarks of the individual operations each system performs,
//! isolating the InCLL mechanism's per-op cost (the "5.9–15.4 % runtime
//! overhead" the abstract quotes is the macro view of these numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use incll_bench::systems::{build_incll, build_mtplus, SystemConfig};
use incll_ycsb::storage_key;

fn bench(c: &mut Criterion) {
    let keys = 50_000u64;
    let mut cfg = SystemConfig::new(keys, 1);
    cfg.wbinvd_ns = 0;
    cfg.epoch_interval = Some(std::time::Duration::from_millis(64));

    let mtp = build_mtplus(&cfg);
    let inc = build_incll(&cfg);
    let mctx = mtp.tree.thread_ctx(0);
    let ictx = inc.tree.thread_ctx(0).expect("slot 0 exists");
    for i in 0..keys {
        mtp.tree.put(&mctx, &storage_key(i), i);
        inc.tree.put(&ictx, &storage_key(i), i);
    }

    let mut g = c.benchmark_group("micro");
    let mut i = 0u64;
    g.bench_function("get_mtplus", |b| {
        b.iter(|| {
            i += 1;
            mtp.tree.get(&mctx, &storage_key(i % keys))
        })
    });
    g.bench_function("get_incll", |b| {
        b.iter(|| {
            i += 1;
            inc.tree.get(&ictx, &storage_key(i % keys))
        })
    });
    g.bench_function("update_mtplus", |b| {
        b.iter(|| {
            i += 1;
            mtp.tree.put(&mctx, &storage_key(i % keys), i)
        })
    });
    g.bench_function("update_incll", |b| {
        b.iter(|| {
            i += 1;
            inc.tree.put(&ictx, &storage_key(i % keys), i)
        })
    });
    g.bench_function("scan10_mtplus", |b| {
        b.iter(|| {
            i += 1;
            mtp.tree
                .scan(&mctx, &storage_key(i % keys), 10, &mut |_, _| {})
        })
    });
    g.bench_function("scan10_incll", |b| {
        b.iter(|| {
            i += 1;
            inc.tree
                .scan(&ictx, &storage_key(i % keys), 10, &mut |_, _| {})
        })
    });
    // Insert/remove cycle exercising InCLLp + the remove-insert fallback.
    g.bench_function("insert_remove_incll", |b| {
        b.iter(|| {
            i += 1;
            let k = (keys + i % 1000).to_be_bytes();
            inc.tree.put(&ictx, &k, i);
            inc.tree.remove(&ictx, &k)
        })
    });
    // The byte-value facade path: 100-byte values through `Store`. The
    // session pool and `thread_ctx` hand out the same per-thread slots
    // without coordinating, so the raw ctx must be gone before a session
    // (with 1 configured thread, both would be slot 0).
    drop(ictx);
    let sess = inc.store.session().expect("session pool is untouched");
    let payload = [7u8; 100];
    g.bench_function("put100b_store_incll", |b| {
        b.iter(|| {
            i += 1;
            inc.store
                .put(&sess, &storage_key(i % keys), &payload)
                .expect("fits size class")
        })
    });
    g.bench_function("get100b_store_incll", |b| {
        b.iter(|| {
            i += 1;
            inc.store.get(&sess, &storage_key(i % keys))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
