//! Builders for the three systems the paper compares (§6):
//!
//! * **MT** — unmodified transient Masstree: global allocator.
//! * **MT+** — optimized transient Masstree: pool allocation + the
//!   per-epoch global barrier (the two enhancements named in §6).
//! * **INCLL** — the durable Masstree (this paper's system), with the
//!   epoch driver flushing every 64 ms and an emulated `wbinvd` cost of
//!   1.38 ms (§6.2) unless overridden.

use std::time::Duration;

use incll::{DurableMasstree, Options, Store};
use incll_epoch::{AdvanceDriver, Cadence, EpochManager, EpochOptions, DEFAULT_EPOCH_INTERVAL};
use incll_masstree::{AllocMode, Masstree, TransientAlloc};
use incll_pmem::PArena;

/// The measured `wbinvd` cost on the paper's hardware (§6.2), injected at
/// every checkpoint flush by default.
pub const PAPER_WBINVD_NS: u64 = 1_380_000;

/// Shared sizing/latency knobs.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Key-space size the tree will hold.
    pub keys: u64,
    /// Worker threads (allocator slots, log slots).
    pub threads: usize,
    /// Emulated post-`sfence` NVM latency (Figs. 3, 8).
    pub sfence_ns: u64,
    /// Emulated whole-cache-flush cost (§6.2).
    pub wbinvd_ns: u64,
    /// `false` = the paper's LOGGING ablation (external log only).
    pub incll: bool,
    /// External-log capacity per thread.
    pub log_bytes_per_thread: usize,
    /// Epoch length for the background driver; `None` = no driver (tests
    /// advance manually).
    pub epoch_interval: Option<Duration>,
    /// Keyspace shards for the durable system (power of two; 1 = the
    /// paper's single-tree configuration). Each shard is its own epoch
    /// domain with an independent checkpoint cadence.
    pub shards: usize,
    /// Emulated cost of one **scoped** (per-domain) flush, used by
    /// sharded systems' per-shard advances. `None` models a dirty-line
    /// write-back walk over one shard's working set: `wbinvd_ns /
    /// shards`.
    pub scoped_flush_ns: Option<u64>,
    /// Per-shard checkpoint cadence for the durable system's own driver
    /// (every shard gets a copy). When set, it takes precedence over
    /// `epoch_interval` and the store spawns (and owns) the driver.
    pub cadence: Option<Cadence>,
    /// External-log staging threshold in bytes (0 = eager per-entry
    /// flushes, the legacy path).
    pub persistence_granularity: usize,
    /// Emulated NVM streaming-read cost replay pays per KB of valid log
    /// prefix at recovery (0 = free).
    pub replay_read_ns_per_kb: u64,
}

impl SystemConfig {
    /// Defaults for a given scale: paper latencies, 64 ms epochs.
    pub fn new(keys: u64, threads: usize) -> Self {
        SystemConfig {
            keys,
            threads,
            sfence_ns: 0,
            wbinvd_ns: PAPER_WBINVD_NS,
            incll: true,
            log_bytes_per_thread: 32 << 20,
            epoch_interval: Some(DEFAULT_EPOCH_INTERVAL),
            shards: 1,
            scoped_flush_ns: None,
            cadence: None,
            persistence_granularity: 0,
            replay_read_ns_per_kb: 0,
        }
    }

    /// Arena bytes for the durable system: nodes (384-byte strides at
    /// ~14 entries/leaf), value buffers (48-byte objects), log region,
    /// plus headroom for epoch churn.
    fn durable_capacity(&self) -> usize {
        let keys = self.keys as usize;
        let nodes = keys / 7 * 384 * 2;
        let buffers = keys * 48 * 2;
        let log = self.threads * self.log_bytes_per_thread;
        (nodes + buffers + log + (96 << 20)).next_power_of_two()
    }

    /// Pool bytes for MT+ (320-byte nodes, 32-byte buffers).
    fn pool_capacity(&self) -> usize {
        let keys = self.keys as usize;
        let nodes = keys / 7 * 320 * 2;
        let buffers = keys * 32 * 3;
        (nodes + buffers + (96 << 20)).next_power_of_two()
    }
}

/// A built transient system: the tree plus its epoch driver.
///
/// Field order matters: the driver stops (joins) before the tree drops.
pub struct TransientSystem {
    driver: Option<AdvanceDriver>,
    /// The tree under test.
    pub tree: Masstree,
}

impl TransientSystem {
    /// Stops the epoch driver (e.g. before precise measurements).
    pub fn stop_driver(&mut self) {
        if let Some(d) = self.driver.take() {
            d.stop();
        }
    }
}

/// A built durable system: store facade, mid-level tree, arena, driver.
pub struct DurableSystem {
    driver: Option<AdvanceDriver>,
    /// The public facade (sessions, byte values, shard routing).
    pub store: Store,
    /// The tree under test (mid-level API; the store's shard-0 tree —
    /// shard-aware experiments drive `store` instead).
    pub tree: DurableMasstree,
    /// The arena (latency knobs, stats).
    pub arena: PArena,
}

impl DurableSystem {
    /// Stops the epoch driver.
    pub fn stop_driver(&mut self) {
        if let Some(d) = self.driver.take() {
            d.stop();
        }
    }
}

/// Builds the MT baseline (global allocator).
pub fn build_mt(cfg: &SystemConfig) -> TransientSystem {
    let tiny = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
    let mgr = EpochManager::new(tiny, EpochOptions::transient());
    let alloc = TransientAlloc::new(AllocMode::Global, cfg.threads, None);
    let tree = Masstree::new(mgr.clone(), alloc);
    let driver = cfg.epoch_interval.map(|iv| AdvanceDriver::spawn(mgr, iv));
    TransientSystem { driver, tree }
}

/// Builds the MT+ baseline (pool allocator + epoch barrier).
pub fn build_mtplus(cfg: &SystemConfig) -> TransientSystem {
    let pool = PArena::builder()
        .capacity_bytes(cfg.pool_capacity())
        .build()
        .unwrap();
    let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
    let alloc = TransientAlloc::new(AllocMode::Pool, cfg.threads, Some(pool));
    let tree = Masstree::new(mgr.clone(), alloc);
    let driver = cfg.epoch_interval.map(|iv| AdvanceDriver::spawn(mgr, iv));
    TransientSystem { driver, tree }
}

/// Builds the durable INCLL system (or its LOGGING ablation) behind the
/// [`Store`] facade.
pub fn build_incll(cfg: &SystemConfig) -> DurableSystem {
    let arena = PArena::builder()
        .capacity_bytes(cfg.durable_capacity())
        .wbinvd_latency_ns(cfg.wbinvd_ns)
        .sfence_latency_ns(cfg.sfence_ns)
        .build()
        .unwrap();
    // Sharded advances issue scoped flushes; emulate one shard's share of
    // the whole-cache cost unless overridden.
    arena.latency().set_scoped_flush_ns(
        cfg.scoped_flush_ns
            .unwrap_or(cfg.wbinvd_ns / cfg.shards.max(1) as u64),
    );
    arena
        .latency()
        .set_replay_read_ns_per_kb(cfg.replay_read_ns_per_kb);
    let mut options = Options::new()
        .threads(cfg.threads)
        .log_bytes_per_thread(cfg.log_bytes_per_thread)
        .incll(cfg.incll)
        .shards(cfg.shards)
        .persistence_granularity(cfg.persistence_granularity);
    if let Some(c) = cfg.cadence {
        options = options.cadence(c);
    }
    let (store, _report) = Store::open(&arena, options).expect("arena sized for the key count");
    let tree = store.masstree().clone();
    // When the store owns a per-shard cadence driver, don't also spawn
    // the legacy global one.
    let driver = match cfg.cadence {
        Some(_) => None,
        None => cfg
            .epoch_interval
            .map(|iv| AdvanceDriver::spawn(store.epoch_manager().clone(), iv)),
    };
    DurableSystem {
        driver,
        store,
        tree,
        arena,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incll_ycsb::{load, run, Dist, Mix, RunConfig};

    fn tiny_cfg() -> SystemConfig {
        let mut c = SystemConfig::new(2_000, 2);
        c.wbinvd_ns = 0;
        c.epoch_interval = Some(Duration::from_millis(8));
        c.log_bytes_per_thread = 1 << 20;
        c
    }

    #[test]
    fn all_three_systems_run_the_same_workload() {
        let cfg = tiny_cfg();
        let rc = RunConfig {
            threads: 2,
            ops_per_thread: 2_000,
            nkeys: cfg.keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: 3,
        };
        let mt = build_mt(&cfg);
        load(&mt.tree, cfg.keys, cfg.threads);
        assert_eq!(run(&mt.tree, &rc).ops, 4_000);

        let mtp = build_mtplus(&cfg);
        load(&mtp.tree, cfg.keys, cfg.threads);
        assert_eq!(run(&mtp.tree, &rc).ops, 4_000);

        let inc = build_incll(&cfg);
        load(&inc.tree, cfg.keys, cfg.threads);
        assert_eq!(run(&inc.tree, &rc).ops, 4_000);
    }

    #[test]
    fn sharded_durable_system_serves_the_workload() {
        let mut cfg = tiny_cfg();
        cfg.shards = 4;
        let sys = build_incll(&cfg);
        assert_eq!(sys.store.shard_count(), 4);
        load(&sys.store, cfg.keys, cfg.threads);
        let rc = RunConfig {
            threads: 2,
            ops_per_thread: 2_000,
            nkeys: cfg.keys,
            mix: Mix::E, // scans exercise the k-way merge
            dist: Dist::Uniform,
            seed: 11,
        };
        assert_eq!(run(&sys.store, &rc).ops, 4_000);
    }

    #[test]
    fn logging_ablation_logs_more_nodes() {
        // Deterministic: no driver; one manual boundary so the run's first
        // modifications happen in a fresh epoch.
        let mut cfg = tiny_cfg();
        cfg.epoch_interval = None;
        let rc = RunConfig {
            threads: 1,
            ops_per_thread: 3_000,
            nkeys: cfg.keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            seed: 5,
        };
        let mut counts = [0u64; 2];
        for (i, incll) in [true, false].into_iter().enumerate() {
            cfg.incll = incll;
            let sys = build_incll(&cfg);
            load(&sys.tree, cfg.keys, 1);
            sys.tree.epoch_manager().advance();
            let before = sys.arena.stats().snapshot();
            run(&sys.tree, &rc);
            counts[i] = sys.arena.stats().snapshot().delta(&before).ext_nodes_logged;
        }
        assert!(
            counts[1] > counts[0],
            "LOGGING ({}) must log more than INCLL ({})",
            counts[1],
            counts[0]
        );
    }
}
