//! Regenerates every figure and in-text table of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p incll-bench --bin figures -- <experiment> [options]
//! cargo run --release -p incll-bench --bin figures -- --compare old.json new.json [--regressions-only]
//! cargo run --release -p incll-bench --bin figures -- --plot [results/BENCH_results.json] [--out DIR]
//!
//! experiments:
//!   fig2 fig3 fig4 fig5 fig6 fig7 fig8 flushcost recovery ablation
//!   shard_scaling epoch_domains recovery_latency read_path txn_batches
//!   extent_growth adaptive_cadence server_scaling all
//!
//! options:
//!   --paper            paper-scale parameters (20M keys, 8x1M ops)
//!   --scale F          multiply keys and ops by F (default 1.0)
//!   --keys N           key-space size override
//!   --ops N            ops per thread override
//!   --threads N        driver threads override
//!   --out DIR          also write tables to DIR (default: results)
//!
//! `--compare A B` runs no experiments: it parses two `BENCH_results.json`
//! files and prints per-experiment deltas (rows matched by label, numeric
//! cells diffed as percentages). With `--regressions-only` it exits
//! nonzero when any numeric cell regressed beyond the threshold **or**
//! when an experiment has no baseline in the old file (a missing baseline
//! is reported as `new`, never silently treated as "no change").
//!
//! `--plot [FILE]` also runs no experiments: it renders every table of a
//! recorded `BENCH_results.json` (default `results/BENCH_results.json`)
//! into standalone SVG bar charts under `<out>/plots/` — hand-rolled,
//! since the workspace builds without plotting dependencies.
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use incll_bench::compare;
use incll_bench::experiments::{self, json_string, ExpParams, Table};

struct Args {
    experiment: String,
    params: ExpParams,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().unwrap_or_else(|| usage("missing experiment"));
    if experiment == "--compare" {
        let old = args
            .next()
            .unwrap_or_else(|| usage("--compare needs OLD.json NEW.json"));
        let new = args
            .next()
            .unwrap_or_else(|| usage("--compare needs OLD.json NEW.json"));
        let regressions_only = match args.next().as_deref() {
            None => false,
            Some("--regressions-only") => true,
            Some(other) => usage(&format!("unknown --compare flag {other}")),
        };
        run_compare(&old, &new, regressions_only);
    }
    if experiment == "--plot" {
        let mut file = String::from("results/BENCH_results.json");
        let mut out = PathBuf::from("results");
        let mut rest = args.peekable();
        while let Some(a) = rest.next() {
            match a.as_str() {
                "--out" => {
                    out = PathBuf::from(rest.next().unwrap_or_else(|| usage("--out needs a value")))
                }
                other if !other.starts_with("--") => file = other.to_string(),
                other => usage(&format!("unknown --plot flag {other}")),
            }
        }
        run_plot(&file, &out);
    }
    let mut params = ExpParams::default_scale();
    let mut scale = 1.0f64;
    let mut out = PathBuf::from("results");
    while let Some(flag) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--paper" => params = ExpParams::paper(),
            "--scale" => scale = val().parse().unwrap_or_else(|_| usage("bad --scale")),
            "--keys" => params.keys = val().parse().unwrap_or_else(|_| usage("bad --keys")),
            "--ops" => params.ops_per_thread = val().parse().unwrap_or_else(|_| usage("bad --ops")),
            "--threads" => {
                params.threads = val().parse().unwrap_or_else(|_| usage("bad --threads"))
            }
            "--out" => out = PathBuf::from(val()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    params = params.scaled(scale);
    Args {
        experiment,
        params,
        out,
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: figures <fig2|fig3|fig4|fig5|fig6|fig7|fig8|flushcost|recovery|ablation\
         |shard_scaling|epoch_domains|recovery_latency|read_path|txn_batches\
         |extent_growth|adaptive_cadence|server_scaling|all> \
         [--paper] [--scale F] [--keys N] [--ops N] [--threads N] [--out DIR]\n\
         \x20      figures --compare OLD.json NEW.json [--regressions-only]\n\
         \x20      figures --plot [RESULTS.json] [--out DIR]"
    );
    std::process::exit(2);
}

/// `--compare OLD NEW [--regressions-only]`: print per-experiment deltas
/// and exit. In regressions-only mode the exit code gates: 1 when any
/// cell regressed beyond the threshold or any experiment had no baseline
/// (reported as `new` — never silently "no change"), 0 otherwise.
fn run_compare(old_path: &str, new_path: &str, regressions_only: bool) -> ! {
    let load = |path: &str| -> compare::Json {
        let text = fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        compare::parse_json(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid BENCH_results.json: {e}");
            std::process::exit(2);
        })
    };
    let (old, new) = (load(old_path), load(new_path));
    match compare::compare_runs(&old, &new) {
        Ok((report, summary)) => {
            print!("{report}");
            if !regressions_only {
                std::process::exit(0);
            }
            for r in &summary.regressions {
                eprintln!("regression: {r}");
            }
            for n in &summary.new_experiments {
                eprintln!("no baseline (new): {n}");
            }
            if summary.should_fail() {
                eprintln!(
                    "--regressions-only: failing ({} regression(s), {} unbaselined)",
                    summary.regressions.len(),
                    summary.new_experiments.len()
                );
                std::process::exit(1);
            }
            println!("--regressions-only: clean");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// `--plot [FILE] [--out DIR]`: render every recorded table as an SVG
/// bar chart under `DIR/plots/`, then exit.
fn run_plot(file: &str, out: &Path) -> ! {
    let text = fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("error: cannot read {file}: {e}");
        std::process::exit(2);
    });
    let doc = compare::parse_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {file} is not valid BENCH_results.json: {e}");
        std::process::exit(2);
    });
    let plots = incll_bench::plot::plot_results(&doc).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if plots.is_empty() {
        eprintln!("error: {file} contains no plottable tables");
        std::process::exit(1);
    }
    let dir = out.join("plots");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    for (stem, svg) in &plots {
        let path = dir.join(format!("{stem}.svg"));
        if let Err(e) = fs::write(&path, svg) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {}", path.display());
    }
    std::process::exit(0);
}

fn size_sweep(p: &ExpParams) -> Vec<u64> {
    // The paper sweeps 10K..100M; cap the ladder at the configured size.
    let ladder = [
        10_000u64,
        30_000,
        100_000,
        300_000,
        1_000_000,
        3_000_000,
        10_000_000,
        100_000_000,
    ];
    ladder
        .into_iter()
        .filter(|&s| s <= p.keys.max(100_000))
        .collect()
}

fn thread_sweep(p: &ExpParams) -> Vec<usize> {
    let mut v = vec![1usize, 2, 4, 8, 16];
    v.retain(|&t| t <= p.threads.max(8) * 2);
    v
}

fn save(out: &PathBuf, name: &str, tables: &[Table]) {
    let _ = fs::create_dir_all(out);
    let body: String = tables.iter().map(|t| t.render() + "\n").collect();
    let path = out.join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(saved to {})", path.display());
    }
}

/// Serialises every experiment's tables into `BENCH_results.json` so runs
/// are comparable across revisions (experiment name -> result tables,
/// whose rows carry throughput, op-mix and flush counters).
///
/// Experiments already recorded in the file but *not* re-run this
/// invocation are carried forward, so a targeted `figures <one-exp>` run
/// refreshes one entry instead of silently discarding the rest.
fn save_json(out: &PathBuf, params: &ExpParams, results: &[(String, Vec<Table>)]) {
    let _ = fs::create_dir_all(out);
    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let fresh: std::collections::HashSet<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
    let carried: Vec<String> = fs::read_to_string(out.join("BENCH_results.json"))
        .ok()
        .and_then(|text| compare::parse_json(&text).ok())
        .and_then(|doc| match doc {
            compare::Json::Obj(mut m) => m.remove("experiments"),
            _ => None,
        })
        .map(|exps| match exps {
            compare::Json::Obj(m) => m
                .into_iter()
                .filter(|(name, _)| !fresh.contains(name.as_str()))
                .map(|(name, tables)| format!("{}:{}", json_string(&name), tables.render()))
                .collect(),
            _ => Vec::new(),
        })
        .unwrap_or_default();
    let experiments: Vec<String> = carried
        .into_iter()
        .chain(results.iter().map(|(name, tables)| {
            let tjson: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
            format!("{}:[{}]", json_string(name), tjson.join(","))
        }))
        .collect();
    let body = format!(
        "{{\"generated_unix\":{stamp},\
         \"params\":{{\"keys\":{},\"ops_per_thread\":{},\"threads\":{},\"seed\":{}}},\
         \"experiments\":{{{}}}}}\n",
        params.keys,
        params.ops_per_thread,
        params.threads,
        params.seed,
        experiments.join(",")
    );
    let path = out.join("BENCH_results.json");
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(results recorded in {})", path.display());
    }
}

fn main() {
    let args = parse_args();
    let p = &args.params;
    println!(
        "== experiment {} | keys={} ops/thread={} threads={} ==\n",
        args.experiment, p.keys, p.ops_per_thread, p.threads
    );
    let run_one = |name: &str| -> (String, Vec<Table>) {
        let (file, tables) = match name {
            "fig2" => ("fig2", vec![experiments::fig2(p)]),
            "fig3" => ("fig3", vec![experiments::fig3(p)]),
            "fig4" => ("fig4", vec![experiments::fig4(p, &thread_sweep(p))]),
            "fig5" | "fig6" => {
                let (t5, t6) = experiments::figs5_6(p, &size_sweep(p));
                ("fig5_fig6", vec![t5, t6])
            }
            "fig7" => ("fig7", vec![experiments::fig7(p, &size_sweep(p))]),
            "fig8" => ("fig8", vec![experiments::fig8(p)]),
            "flushcost" => ("flushcost", vec![experiments::flush_cost(p)]),
            "recovery" => ("recovery", vec![experiments::recovery_time(p)]),
            "ablation" => ("ablation", vec![experiments::ablation_internal(p)]),
            "shard_scaling" => ("shard_scaling", vec![experiments::shard_scaling(p)]),
            "epoch_domains" => ("epoch_domains", vec![experiments::epoch_domains(p)]),
            "recovery_latency" => ("recovery_latency", vec![experiments::recovery_latency(p)]),
            "read_path" => {
                let (t1, t2) = experiments::read_path(p);
                ("read_path", vec![t1, t2])
            }
            "txn_batches" => ("txn_batches", vec![experiments::txn_batches(p)]),
            "extent_growth" => ("extent_growth", vec![experiments::extent_growth(p)]),
            "server_scaling" => {
                let (t1, t2) = experiments::server_scaling(p);
                ("server_scaling", vec![t1, t2])
            }
            "adaptive_cadence" => (
                "adaptive_cadence",
                vec![
                    experiments::adaptive_cadence(p),
                    experiments::persistence_granularity(p),
                ],
            ),
            other => usage(&format!("unknown experiment {other}")),
        };
        save(&args.out, file, &tables);
        (file.to_string(), tables)
    };
    let mut results = Vec::new();
    if args.experiment == "all" {
        for name in [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "flushcost",
            "recovery",
            "ablation",
            "shard_scaling",
            "epoch_domains",
            "recovery_latency",
            "read_path",
            "txn_batches",
            "extent_growth",
            "adaptive_cadence",
            "server_scaling",
        ] {
            println!("---- {name} ----");
            results.push(run_one(name));
        }
    } else {
        results.push(run_one(&args.experiment));
    }
    save_json(&args.out, p, &results);
}
