//! Cross-run comparison of `BENCH_results.json` files.
//!
//! `figures --compare old.json new.json` diffs two result files written by
//! [`crate::experiments::Table::to_json`]'s envelope: experiments present
//! in both runs are matched by name, their tables by title, their rows by
//! first cell, and every numeric cell gets a delta. The parser below is a
//! minimal hand-rolled JSON reader — the workspace builds without
//! crates.io, so there is no serde — that accepts exactly (a superset of)
//! what the writer emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (only the shapes the results file uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the file only holds integers and
    /// fixed-point decimals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion order not preserved (keys are unique).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialises back to JSON text (object keys in `BTreeMap` order).
    /// Round-trips everything [`parse_json`] accepts, so callers can
    /// merge result files without a second writer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Integers (the common case) must not grow a ".0" the
                // hand-rolled parser's writers never produce.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => out.push_str(&crate::experiments::json_string(s)),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&crate::experiments::json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multibyte UTF-8 passes through byte by byte; the
                        // input is a valid &str so reassembly is safe.
                        let start = *pos;
                        let mut end = *pos + 1;
                        if c >= 0x80 {
                            while end < b.len() && b[end] & 0xC0 == 0x80 {
                                end += 1;
                            }
                        }
                        out.push_str(
                            std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?,
                        );
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {s:?} at byte {start}"))
        }
    }
}

/// A cell is "numeric" for diffing when it parses as a number after
/// stripping a leading `+` and trailing `%`/`x` decoration (throughput,
/// percentages, reduction factors).
fn numeric(cell: &str) -> Option<f64> {
    let trimmed = cell
        .trim()
        .trim_start_matches('+')
        .trim_end_matches('%')
        .trim_end_matches('x');
    if trimmed.is_empty() {
        return None;
    }
    trimmed.parse::<f64>().ok()
}

/// Numeric cells that shrink by more than this (or grow, for
/// lower-is-better columns) count as regressions in
/// [`ComparisonSummary::regressions`]. Generous on purpose: these are
/// wall-clock benchmarks, not unit tests.
pub const REGRESSION_THRESHOLD_PCT: f64 = 10.0;

/// Machine-readable outcome of a comparison, for exit-code decisions
/// (`figures --compare --regressions-only`).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ComparisonSummary {
    /// Experiments present only in the **new** file. A missing baseline is
    /// *not* "no change": regression-gating modes must fail on these,
    /// because nothing was compared.
    pub new_experiments: Vec<String>,
    /// Experiments present only in the **old** file (dropped from the new
    /// run).
    pub missing_experiments: Vec<String>,
    /// Human-readable `experiment/table/row/column` descriptions of every
    /// numeric cell that moved in the bad direction by more than
    /// [`REGRESSION_THRESHOLD_PCT`].
    pub regressions: Vec<String>,
}

impl ComparisonSummary {
    /// Whether a regression-gating caller should fail: an actual
    /// regression, or an experiment with no baseline to compare against.
    pub fn should_fail(&self) -> bool {
        !self.regressions.is_empty() || !self.new_experiments.is_empty()
    }
}

/// Which way a numeric column is allowed to move before the gate calls it
/// a regression. `None` means the column is direction-neutral (volumes,
/// configuration echoes like replayed-entry counts or key counts): it is
/// still diffed in the report, but never gates.
fn gated_direction(col: &str) -> Option<Direction> {
    let c = col.to_ascii_lowercase();
    let has = |pats: &[&str]| pats.iter().any(|p| c.contains(p));
    if has(&[
        "entries", "bytes", "keys", "nodes", "count", "advances", "workers", "shards", "threads",
    ]) {
        None
    } else if has(&["_ms", "_us", "_ns", "time", "stall", "latency"]) {
        Some(Direction::LowerIsBetter)
    } else {
        Some(Direction::HigherIsBetter)
    }
}

/// See [`gated_direction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// Renders the per-experiment deltas between two parsed result files.
///
/// # Errors
///
/// Returns a message if either file is missing the expected envelope.
pub fn render_comparison(old: &Json, new: &Json) -> Result<String, String> {
    compare_runs(old, new).map(|(report, _)| report)
}

/// [`render_comparison`] plus the [`ComparisonSummary`] gating callers
/// need: which experiments had no baseline, which were dropped, and which
/// numeric cells regressed beyond [`REGRESSION_THRESHOLD_PCT`].
///
/// # Errors
///
/// As for [`render_comparison`].
pub fn compare_runs(old: &Json, new: &Json) -> Result<(String, ComparisonSummary), String> {
    let old_exp = old
        .get("experiments")
        .ok_or("old file has no \"experiments\" object")?;
    let new_exp = new
        .get("experiments")
        .ok_or("new file has no \"experiments\" object")?;
    let (Json::Obj(old_map), Json::Obj(new_map)) = (old_exp, new_exp) else {
        return Err("\"experiments\" is not an object".into());
    };

    let mut out = String::new();
    let mut summary = ComparisonSummary::default();
    // Per-experiment (goodness, rendered delta) pairs over every *gated*
    // numeric cell, for the one-line summary table at the end. Goodness
    // is direction-adjusted: positive always means "moved the good way".
    let mut deltas: BTreeMap<String, Vec<(f64, String)>> = BTreeMap::new();
    for (stamp, file) in [(old, "old"), (new, "new")] {
        let when = match stamp.get("generated_unix") {
            Some(Json::Num(n)) => *n as u64,
            _ => 0,
        };
        let _ = writeln!(out, "{file}: generated_unix={when}");
    }
    out.push('\n');

    for (name, new_tables) in new_map {
        let Some(old_tables) = old_map.get(name) else {
            let _ = writeln!(
                out,
                "# {name}: new (no baseline in old run — not compared)\n"
            );
            summary.new_experiments.push(name.clone());
            continue;
        };
        let _ = writeln!(out, "# {name}");
        let empty = Vec::new();
        let old_tables = old_tables.as_arr().unwrap_or(&empty);
        let new_tables = new_tables.as_arr().unwrap_or(&empty);
        for nt in new_tables {
            let title = nt.get("title").and_then(Json::as_str).unwrap_or("?");
            let Some(ot) = old_tables
                .iter()
                .find(|t| t.get("title").and_then(Json::as_str) == Some(title))
            else {
                let _ = writeln!(out, "  table {title:?}: new (no baseline)");
                summary.new_experiments.push(format!("{name}/{title}"));
                continue;
            };
            let _ = writeln!(out, "  {title}");
            diff_table(
                &mut out,
                ot,
                nt,
                name,
                &mut summary,
                deltas.entry(name.clone()).or_default(),
            );
        }
        out.push('\n');
    }
    for name in old_map.keys() {
        if !new_map.contains_key(name) {
            let _ = writeln!(out, "# {name}: only in old run (dropped?)\n");
            summary.missing_experiments.push(name.clone());
        }
    }
    out.push_str(&summary_table(&deltas));
    Ok((out, summary))
}

/// One line per compared experiment: the best and worst direction-adjusted
/// move over its gated numeric cells. A quick scan answers "which
/// experiment moved, and which way" without reading the per-row diff.
fn summary_table(deltas: &BTreeMap<String, Vec<(f64, String)>>) -> String {
    if deltas.is_empty() {
        return String::new();
    }
    let mut rows = vec![(
        "experiment".to_string(),
        "best".to_string(),
        "worst".to_string(),
    )];
    for (name, cells) in deltas {
        let best = cells
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| "n/a".into());
        let worst = cells
            .iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| "n/a".into());
        rows.push((name.clone(), best, worst));
    }
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::from("== summary (best/worst gated delta per experiment) ==\n");
    for (name, best, worst) in rows {
        let _ = writeln!(out, "{name:w0$}  {best:w1$}  {worst}");
    }
    out
}

fn diff_table(
    out: &mut String,
    old: &Json,
    new: &Json,
    experiment: &str,
    summary: &mut ComparisonSummary,
    deltas: &mut Vec<(f64, String)>,
) {
    let empty = Vec::new();
    let header: Vec<&str> = new
        .get("header")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let rows = |t: &Json| -> Vec<Vec<String>> {
        t.get("rows")
            .and_then(Json::as_arr)
            .unwrap_or(&empty)
            .iter()
            .map(|r| {
                r.as_arr()
                    .unwrap_or(&empty)
                    .iter()
                    .map(|c| c.as_str().unwrap_or("").to_string())
                    .collect()
            })
            .collect()
    };
    let old_rows = rows(old);
    let new_rows = rows(new);
    // Rows are matched by their label columns: every leading cell that is
    // non-numeric in the new row (experiments key rows by 1–2 label
    // cells: "shards", "mode", "workload" + "dist", ...). When a table
    // keys rows by *numeric* columns with duplicates (recovery_latency:
    // shards × workers), the one-cell prefix is ambiguous — widen the key
    // until it selects at most one baseline row, so every row is diffed
    // against its true counterpart, never a sibling cell's.
    let label_width = |row: &[String]| {
        row.iter()
            .take_while(|c| numeric(c).is_none())
            .count()
            .max(1)
    };
    for nrow in &new_rows {
        let mut w = label_width(nrow);
        let matching = |w: usize| {
            old_rows
                .iter()
                .filter(|r| r.len() >= w && r[..w] == nrow[..w])
                .collect::<Vec<_>>()
        };
        let mut matches = matching(w);
        while matches.len() > 1 && w < nrow.len() {
            w += 1;
            matches = matching(w);
        }
        let Some(orow) = matches.first() else {
            let _ = writeln!(out, "    {}: new row", nrow[..w].join(" "));
            continue;
        };
        let mut cells = Vec::new();
        for (i, ncell) in nrow.iter().enumerate().skip(w) {
            let col = header.get(i).copied().unwrap_or("?");
            match (orow.get(i).and_then(|c| numeric(c)), numeric(ncell)) {
                (Some(a), Some(b)) => {
                    let delta = if a.abs() > f64::EPSILON {
                        let pct = (b - a) / a * 100.0;
                        let (bad, goodness) = match gated_direction(col) {
                            None => (false, None),
                            Some(Direction::LowerIsBetter) => {
                                (pct > REGRESSION_THRESHOLD_PCT, Some(-pct))
                            }
                            Some(Direction::HigherIsBetter) => {
                                (pct < -REGRESSION_THRESHOLD_PCT, Some(pct))
                            }
                        };
                        if let Some(g) = goodness {
                            deltas.push((g, format!("{pct:+.1}% {col}")));
                        }
                        if bad {
                            summary.regressions.push(format!(
                                "{experiment}: {} {col}: {a} -> {b} ({pct:+.1}%)",
                                nrow[..w].join(" "),
                            ));
                        }
                        format!("{pct:+.1}%")
                    } else {
                        "n/a".into()
                    };
                    cells.push(format!("{col}: {a} -> {b} ({delta})"));
                }
                _ => {
                    if orow.get(i).map(String::as_str) != Some(ncell.as_str()) {
                        cells.push(format!(
                            "{col}: {:?} -> {ncell:?}",
                            orow.get(i).map(String::as_str).unwrap_or("")
                        ));
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "    {}: {}",
            nrow[..w].join(" "),
            if cells.is_empty() {
                "unchanged".to_string()
            } else {
                cells.join(", ")
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writer_shape() {
        let j = parse_json(
            r#"{"generated_unix":123,"params":{"keys":1000},
               "experiments":{"e1":[{"title":"T","header":["k","v"],
               "rows":[["a","1.5"],["b","2.0"]]}]}}"#,
        )
        .unwrap();
        assert_eq!(j.get("generated_unix"), Some(&Json::Num(123.0)));
        let tables = j.get("experiments").unwrap().get("e1").unwrap();
        assert_eq!(tables.as_arr().unwrap().len(), 1);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let j = parse_json(r#"["a\nb", "A", "é"]"#).unwrap();
        assert_eq!(
            j,
            Json::Arr(vec![
                Json::Str("a\nb".into()),
                Json::Str("A".into()),
                Json::Str("é".into())
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("123 45").is_err());
    }

    #[test]
    fn numeric_strips_decorations() {
        assert_eq!(numeric("1.50"), Some(1.5));
        assert_eq!(numeric("+12.5%"), Some(12.5));
        assert_eq!(numeric("3.0x"), Some(3.0));
        assert_eq!(numeric("uniform"), None);
    }

    #[test]
    fn comparison_reports_deltas_per_row() {
        let old = parse_json(
            r#"{"generated_unix":1,"experiments":{"shard_scaling":[
               {"title":"T","header":["shards","mops"],
                "rows":[["1","1.0"],["2","2.0"]]}]}}"#,
        )
        .unwrap();
        let new = parse_json(
            r#"{"generated_unix":2,"experiments":{"shard_scaling":[
               {"title":"T","header":["shards","mops"],
                "rows":[["1","1.1"],["2","1.0"],["4","4.0"]]}]}}"#,
        )
        .unwrap();
        let report = render_comparison(&old, &new).unwrap();
        assert!(report.contains("+10.0%"), "report: {report}");
        assert!(report.contains("-50.0%"), "report: {report}");
        assert!(report.contains("4: new row"), "report: {report}");
    }

    #[test]
    fn comparison_flags_missing_experiments() {
        let old = parse_json(r#"{"experiments":{"gone":[{"title":"T","header":[],"rows":[]}]}}"#)
            .unwrap();
        let new = parse_json(r#"{"experiments":{}}"#).unwrap();
        let (report, summary) = compare_runs(&old, &new).unwrap();
        assert!(report.contains("only in old run"));
        assert_eq!(summary.missing_experiments, vec!["gone".to_string()]);
        // A dropped experiment alone is loud but not a gating failure.
        assert!(!summary.should_fail());
    }

    #[test]
    fn experiment_missing_from_old_is_new_not_no_change() {
        // Regression: an experiment absent from the baseline used to read
        // like "no change"; it must be reported as `new` and fail the
        // regression gate (nothing was compared).
        let old = parse_json(r#"{"experiments":{}}"#).unwrap();
        let new = parse_json(
            r#"{"experiments":{"recovery_latency":[
               {"title":"T","header":["shards","replay_ms"],
                "rows":[["4","3.0"]]}]}}"#,
        )
        .unwrap();
        let (report, summary) = compare_runs(&old, &new).unwrap();
        assert!(report.contains("new (no baseline"), "report: {report}");
        assert!(!report.contains("unchanged"), "report: {report}");
        assert_eq!(
            summary.new_experiments,
            vec!["recovery_latency".to_string()]
        );
        assert!(summary.regressions.is_empty());
        assert!(summary.should_fail(), "no baseline must fail the gate");
    }

    #[test]
    fn regressions_respect_column_direction() {
        let old = parse_json(
            r#"{"experiments":{"e":[
               {"title":"T","header":["shards","mops","replay_ms"],
                "rows":[["1","2.0","10.0"],["2","2.0","10.0"],["4","2.0","10.0"]]}]}}"#,
        )
        .unwrap();
        // Row 1: throughput halves (regression). Row 2: replay_ms doubles
        // (regression: lower is better). Row 4: throughput up + replay
        // down (improvements only).
        let new = parse_json(
            r#"{"experiments":{"e":[
               {"title":"T","header":["shards","mops","replay_ms"],
                "rows":[["1","1.0","10.0"],["2","2.0","20.0"],["4","3.0","5.0"]]}]}}"#,
        )
        .unwrap();
        let (_, summary) = compare_runs(&old, &new).unwrap();
        assert_eq!(summary.regressions.len(), 2, "{:?}", summary.regressions);
        assert!(summary.regressions[0].contains("mops"));
        assert!(summary.regressions[1].contains("replay_ms"));
        assert!(summary.should_fail());
    }

    #[test]
    fn duplicate_numeric_keys_widen_until_rows_match_their_counterparts() {
        // recovery_latency keys rows by (shards, workers) — both numeric,
        // shards duplicated. Each new row must diff against its own
        // baseline row, not the first row sharing a shard count.
        let old = parse_json(
            r#"{"experiments":{"recovery_latency":[
               {"title":"T","header":["shards","workers","replay_ms"],
                "rows":[["4","1","3.0"],["4","2","2.5"],["4","4","2.0"]]}]}}"#,
        )
        .unwrap();
        // workers=4 regresses 2.0 -> 2.8 (+40%); workers=1 improves.
        let new = parse_json(
            r#"{"experiments":{"recovery_latency":[
               {"title":"T","header":["shards","workers","replay_ms"],
                "rows":[["4","1","2.9"],["4","2","2.5"],["4","4","2.8"]]}]}}"#,
        )
        .unwrap();
        let (report, summary) = compare_runs(&old, &new).unwrap();
        assert_eq!(
            summary.regressions.len(),
            1,
            "only the workers=4 cell regressed: {:?}\n{report}",
            summary.regressions
        );
        assert!(
            summary.regressions[0].contains("4 4"),
            "regression must be attributed to the (4, 4) row: {:?}",
            summary.regressions
        );
        // And a row with no baseline counterpart is reported as new, not
        // silently matched to a sibling.
        let grown = parse_json(
            r#"{"experiments":{"recovery_latency":[
               {"title":"T","header":["shards","workers","replay_ms"],
                "rows":[["4","1","3.0"],["4","8","1.5"]]}]}}"#,
        )
        .unwrap();
        let (report, summary) = compare_runs(&old, &grown).unwrap();
        assert!(report.contains("4 8: new row"), "report: {report}");
        assert!(summary.regressions.is_empty());
    }

    #[test]
    fn direction_neutral_volume_columns_never_gate() {
        // Replayed-entry counts are volumes, not better/worse: a big drop
        // must diff in the report but never fail the gate.
        let old = parse_json(
            r#"{"experiments":{"e":[{"title":"T","header":["mode","entries","mops"],
                "rows":[["a","1000","2.0"]]}]}}"#,
        )
        .unwrap();
        let new = parse_json(
            r#"{"experiments":{"e":[{"title":"T","header":["mode","entries","mops"],
                "rows":[["a","500","2.0"]]}]}}"#,
        )
        .unwrap();
        let (report, summary) = compare_runs(&old, &new).unwrap();
        assert!(report.contains("entries: 1000 -> 500"), "still diffed");
        assert!(summary.regressions.is_empty(), "{:?}", summary.regressions);
        assert!(!summary.should_fail());
    }

    #[test]
    fn small_noise_is_not_a_regression() {
        let old = parse_json(
            r#"{"experiments":{"e":[{"title":"T","header":["k","mops"],
                "rows":[["a","100.0"]]}]}}"#,
        )
        .unwrap();
        let new = parse_json(
            r#"{"experiments":{"e":[{"title":"T","header":["k","mops"],
                "rows":[["a","95.0"]]}]}}"#,
        )
        .unwrap();
        let (_, summary) = compare_runs(&old, &new).unwrap();
        assert!(summary.regressions.is_empty());
        assert!(!summary.should_fail());
    }

    #[test]
    fn summary_table_picks_direction_adjusted_best_and_worst() {
        // Three gated cells move: mops +20% (good), replay_ms -30% (good —
        // lower is better, goodness +30), stall_p99_us +50% (bad, goodness
        // -50). Best must be the replay drop, worst the stall growth, each
        // shown with its *raw* signed delta and column name.
        let old = parse_json(
            r#"{"experiments":{"e":[
               {"title":"T","header":["k","mops","replay_ms","stall_p99_us","keys"],
                "rows":[["a","1.0","10.0","10.0","100"]]}]}}"#,
        )
        .unwrap();
        let new = parse_json(
            r#"{"experiments":{"e":[
               {"title":"T","header":["k","mops","replay_ms","stall_p99_us","keys"],
                "rows":[["a","1.2","7.0","15.0","200"]]}]}}"#,
        )
        .unwrap();
        let (report, _) = compare_runs(&old, &new).unwrap();
        assert!(report.contains("== summary"), "report: {report}");
        let line = report
            .lines()
            .find(|l| l.starts_with("e ") && l.contains('%'))
            .expect("summary row for e");
        assert!(line.contains("-30.0% replay_ms"), "best: {line}");
        assert!(line.contains("+50.0% stall_p99_us"), "worst: {line}");
        // The neutral `keys` column doubled but never enters the summary.
        assert!(!line.contains("keys"), "neutral col leaked: {line}");
    }

    #[test]
    fn summary_table_handles_experiments_without_gated_deltas() {
        let old = parse_json(
            r#"{"experiments":{"e":[{"title":"T","header":["mode","keys"],
                "rows":[["a","100"]]}]}}"#,
        )
        .unwrap();
        let new = parse_json(
            r#"{"experiments":{"e":[{"title":"T","header":["mode","keys"],
                "rows":[["a","100"]]}]}}"#,
        )
        .unwrap();
        let (report, _) = compare_runs(&old, &new).unwrap();
        let line = report
            .lines()
            .skip_while(|l| !l.starts_with("== summary"))
            .find(|l| l.starts_with("e "))
            .expect("summary row");
        assert!(line.contains("n/a"), "line: {line}");
    }

    #[test]
    fn new_table_within_known_experiment_also_gates() {
        let old =
            parse_json(r#"{"experiments":{"e":[{"title":"T1","header":[],"rows":[]}]}}"#).unwrap();
        let new = parse_json(
            r#"{"experiments":{"e":[{"title":"T1","header":[],"rows":[]},
                                     {"title":"T2","header":[],"rows":[]}]}}"#,
        )
        .unwrap();
        let (_, summary) = compare_runs(&old, &new).unwrap();
        assert_eq!(summary.new_experiments, vec!["e/T2".to_string()]);
        assert!(summary.should_fail());
    }
}
