//! One function per paper figure / in-text table (§6).
//!
//! Each returns a [`Table`] (and prints it) so the `figures` binary, the
//! Criterion benches and EXPERIMENTS.md all share one source of truth.

use std::time::{Duration, Instant};

use incll_ycsb::{load, run, run_with_reads, Dist, Mix, ReadMode, RunConfig};

use crate::systems::{build_incll, build_mt, build_mtplus, SystemConfig};

/// Experiment sizing.
#[derive(Debug, Clone)]
pub struct ExpParams {
    /// Key-space size (paper: 20 M).
    pub keys: u64,
    /// Operations per driver thread (paper: 1 M).
    pub ops_per_thread: u64,
    /// Driver threads (paper: 8).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExpParams {
    /// The paper's configuration (§6).
    pub fn paper() -> Self {
        ExpParams {
            keys: 20_000_000,
            ops_per_thread: 1_000_000,
            threads: 8,
            seed: 42,
        }
    }

    /// Default laptop-scale parameters.
    pub fn default_scale() -> Self {
        ExpParams {
            keys: 1_000_000,
            ops_per_thread: 100_000,
            threads: 4,
            seed: 42,
        }
    }

    /// Tiny parameters for `cargo bench` smoke runs.
    pub fn quick() -> Self {
        ExpParams {
            keys: 20_000,
            ops_per_thread: 10_000,
            threads: 2,
            seed: 42,
        }
    }

    /// Uniformly scales keys and ops by `f`.
    #[must_use]
    pub fn scaled(mut self, f: f64) -> Self {
        self.keys = ((self.keys as f64 * f) as u64).max(1_000);
        self.ops_per_thread = ((self.ops_per_thread as f64 * f) as u64).max(1_000);
        self
    }

    fn run_config(&self, mix: Mix, dist: Dist) -> RunConfig {
        RunConfig {
            threads: self.threads,
            ops_per_thread: self.ops_per_thread,
            nkeys: self.keys,
            mix,
            dist,
            seed: self.seed,
        }
    }

    fn sys_config(&self) -> SystemConfig {
        SystemConfig::new(self.keys, self.threads)
    }
}

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure/table identifier and description.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row data.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("# {}\n", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Renders as a JSON object (`{"title", "header", "rows"}`) for the
    /// `figures` binary's `BENCH_results.json`. Hand-rolled: the workspace
    /// builds without crates.io, so there is no serde.
    pub fn to_json(&self) -> String {
        let arr = |cells: &[String]| {
            let inner: Vec<String> = cells.iter().map(|c| json_string(c)).collect();
            format!("[{}]", inner.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\":{},\"header\":{},\"rows\":[{}]}}",
            json_string(&self.title),
            arr(&self.header),
            rows.join(",")
        )
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn f2(x: f64) -> String {
    format!("{x:.3}")
}
fn pct(base: f64, v: f64) -> String {
    format!("{:+.1}%", (v - base) / base * 100.0)
}

// =====================================================================
// Figure 2 — throughput of MT, MT+, INCLL across YCSB mixes
// =====================================================================

/// Figure 2: throughput of the three systems on YCSB A/B/C/E × uniform/
/// zipfian. Paper result: MT+ 2.4–68.5 % above MT; INCLL 5.9–15.4 % below
/// MT+.
pub fn fig2(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "Figure 2: throughput (Mops/s) of MT, MT+, INCLL",
        &["workload", "dist", "MT", "MT+", "INCLL", "INCLL vs MT+"],
    );
    let cfg = p.sys_config();

    let mt = build_mt(&cfg);
    load(&mt.tree, p.keys, p.threads);
    let mtp = build_mtplus(&cfg);
    load(&mtp.tree, p.keys, p.threads);
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, p.threads);

    for mix in Mix::ALL {
        for dist in Dist::ALL {
            let rc = p.run_config(mix, dist);
            let a = run(&mt.tree, &rc).mops();
            let b = run(&mtp.tree, &rc).mops();
            let c = run(&inc.tree, &rc).mops();
            t.push(vec![
                mix.label().into(),
                dist.label().into(),
                f2(a),
                f2(b),
                f2(c),
                pct(b, c),
            ]);
        }
    }
    t.print();
    t
}

// =====================================================================
// Figure 3 — INCLL vs emulated NVM latency
// =====================================================================

/// The latency points the paper sweeps (ns after `sfence`).
pub const LATENCY_SWEEP_NS: &[u64] = &[0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

/// Figure 3: INCLL throughput as emulated NVM (post-`sfence`) latency
/// grows, YCSB A. Paper: ≤ 4.3 % (uniform) / 6.0 % (zipfian) drop at 1 µs.
pub fn fig3(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "Figure 3: INCLL throughput vs emulated sfence latency (YCSB_A)",
        &["latency_ns", "uniform", "vs 0ns", "zipfian", "vs 0ns"],
    );
    let cfg = p.sys_config();
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, p.threads);

    let mut base = [0.0f64; 2];
    for &ns in LATENCY_SWEEP_NS {
        inc.arena.latency().set_sfence_ns(ns);
        let u = run(&inc.tree, &p.run_config(Mix::A, Dist::Uniform)).mops();
        let z = run(&inc.tree, &p.run_config(Mix::A, Dist::Zipfian)).mops();
        if ns == 0 {
            base = [u, z];
        }
        t.push(vec![
            ns.to_string(),
            f2(u),
            pct(base[0], u),
            f2(z),
            pct(base[1], z),
        ]);
    }
    t.print();
    t
}

// =====================================================================
// Figure 4 — thread scaling
// =====================================================================

/// Figure 4: MT+ vs INCLL across thread counts, YCSB A. Paper: INCLL loss
/// roughly constant in the thread count (14.6–21.3 % uniform).
pub fn fig4(p: &ExpParams, thread_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "Figure 4: throughput vs threads (YCSB_A)",
        &["threads", "dist", "MT+", "INCLL", "INCLL vs MT+"],
    );
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let mut cfg = p.sys_config();
    cfg.threads = max_threads;
    let mtp = build_mtplus(&cfg);
    load(&mtp.tree, p.keys, max_threads.min(4));
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, max_threads.min(4));

    for &n in thread_counts {
        for dist in Dist::ALL {
            let mut rc = p.run_config(Mix::A, dist);
            rc.threads = n;
            let b = run(&mtp.tree, &rc).mops();
            let c = run(&inc.tree, &rc).mops();
            t.push(vec![
                n.to_string(),
                dist.label().into(),
                f2(b),
                f2(c),
                pct(b, c),
            ]);
        }
    }
    t.print();
    t
}

// =====================================================================
// Figures 5 + 6 — tree-size sweep and the overhead parabola
// =====================================================================

/// Figures 5 & 6: throughput and INCLL-overhead across tree sizes, YCSB A.
/// Paper: overhead forms a parabola peaking at 1–3 M keys (Fig. 6).
pub fn figs5_6(p: &ExpParams, sizes: &[u64]) -> (Table, Table) {
    let mut t5 = Table::new(
        "Figure 5: throughput vs tree size (YCSB_A)",
        &["keys", "dist", "MT+", "INCLL"],
    );
    let mut t6 = Table::new(
        "Figure 6: INCLL overhead over MT+ vs tree size (YCSB_A)",
        &["keys", "dist", "overhead"],
    );
    for &keys in sizes {
        let sub = ExpParams { keys, ..p.clone() };
        let cfg = sub.sys_config();
        let mtp = build_mtplus(&cfg);
        load(&mtp.tree, keys, p.threads);
        let inc = build_incll(&cfg);
        load(&inc.tree, keys, p.threads);
        for dist in Dist::ALL {
            let rc = sub.run_config(Mix::A, dist);
            let b = run(&mtp.tree, &rc).mops();
            let c = run(&inc.tree, &rc).mops();
            t5.push(vec![keys.to_string(), dist.label().into(), f2(b), f2(c)]);
            t6.push(vec![keys.to_string(), dist.label().into(), pct(b, c)]);
        }
    }
    t5.print();
    t6.print();
    (t5, t6)
}

// =====================================================================
// Figure 7 — externally logged nodes, LOGGING vs INCLL
// =====================================================================

/// Figure 7: number of externally logged nodes across tree sizes with
/// InCLL disabled (LOGGING) and enabled (INCLL), YCSB A. Paper: INCLL
/// collapses logging for large uniform trees; zipfian keeps logging.
pub fn fig7(p: &ExpParams, sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "Figure 7: externally logged nodes (YCSB_A)",
        &["keys", "dist", "LOGGING", "INCLL", "reduction"],
    );
    for &keys in sizes {
        let sub = ExpParams { keys, ..p.clone() };
        for dist in Dist::ALL {
            let mut counts = [0u64; 2];
            for (i, incll) in [false, true].into_iter().enumerate() {
                let mut cfg = sub.sys_config();
                cfg.incll = incll;
                let sys = build_incll(&cfg);
                load(&sys.tree, keys, p.threads);
                let before = sys.arena.stats().snapshot();
                run(&sys.tree, &sub.run_config(Mix::A, dist));
                counts[i] = sys.arena.stats().snapshot().delta(&before).ext_nodes_logged;
            }
            let reduction = if counts[0] > 0 {
                format!("{:.1}x", counts[0] as f64 / counts[1].max(1) as f64)
            } else {
                "-".into()
            };
            t.push(vec![
                keys.to_string(),
                dist.label().into(),
                counts[0].to_string(),
                counts[1].to_string(),
                reduction,
            ]);
        }
    }
    t.print();
    t
}

// =====================================================================
// Figure 8 — LOGGING vs INCLL under NVM latency
// =====================================================================

/// Figure 8: throughput under emulated latency with InCLL on/off, YCSB A.
/// Paper: at 1 µs LOGGING drops 42.5 %/28.5 % while INCLL drops only
/// 4.1 %/5.7 % — the headline robustness result.
pub fn fig8(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "Figure 8: throughput vs sfence latency, LOGGING vs INCLL (YCSB_A)",
        &["latency_ns", "dist", "LOGGING", "vs 0ns", "INCLL", "vs 0ns"],
    );
    let mut cfg_log = p.sys_config();
    cfg_log.incll = false;
    let logsys = build_incll(&cfg_log);
    load(&logsys.tree, p.keys, p.threads);
    let inc = build_incll(&p.sys_config());
    load(&inc.tree, p.keys, p.threads);

    let mut base = std::collections::HashMap::new();
    for &ns in LATENCY_SWEEP_NS {
        logsys.arena.latency().set_sfence_ns(ns);
        inc.arena.latency().set_sfence_ns(ns);
        for dist in Dist::ALL {
            let rc = p.run_config(Mix::A, dist);
            let l = run(&logsys.tree, &rc).mops();
            let i = run(&inc.tree, &rc).mops();
            let (bl, bi) = *base.entry(dist.label()).or_insert((l, i));
            t.push(vec![
                ns.to_string(),
                dist.label().into(),
                f2(l),
                pct(bl, l),
                f2(i),
                pct(bi, i),
            ]);
        }
    }
    t.print();
    t
}

// =====================================================================
// §6.2 — global flush cost
// =====================================================================

/// §6.2: cost of the whole-cache flush at each epoch boundary. Paper:
/// 1.38–1.39 ms per flush ⇒ 2.2 % of a 64 ms epoch.
pub fn flush_cost(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "§6.2: epoch checkpoint (global flush) cost",
        &["metric", "value"],
    );
    let mut cfg = p.sys_config();
    cfg.epoch_interval = None; // advance manually, measured
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, p.threads);

    // Background mutators keep caches dirty while we checkpoint.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut durations = Vec::new();
    std::thread::scope(|s| {
        for tid in 0..p.threads {
            let tree = inc.tree.clone();
            let stop = &stop;
            let keys = p.keys;
            s.spawn(move || {
                let ctx = tree.thread_ctx(tid).expect("tid within thread slots");
                let mut i = tid as u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    tree.put(&ctx, &incll_ycsb::storage_key(i % keys), i);
                    i += 1;
                }
            });
        }
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(64));
            let t0 = Instant::now();
            inc.tree.epoch_manager().advance();
            durations.push(t0.elapsed());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    durations.sort();
    let avg: Duration = durations.iter().sum::<Duration>() / durations.len() as u32;
    let p95 = durations[durations.len() * 95 / 100];
    let frac = avg.as_secs_f64() / 0.064 * 100.0;
    t.push(vec![
        "advances measured".into(),
        durations.len().to_string(),
    ]);
    t.push(vec!["avg advance".into(), format!("{avg:?}")]);
    t.push(vec!["p95 advance".into(), format!("{p95:?}")]);
    t.push(vec![
        "fraction of a 64ms epoch".into(),
        format!("{frac:.2}% (paper: 2.2%)"),
    ]);
    t.print();
    t
}

// =====================================================================
// §6.3 — recovery time
// =====================================================================

/// §6.3: worst-case recovery — crash right before the epoch boundary on a
/// write-heavy 1 M-key tree. Paper: ~84 K logged nodes replayed in ~15 ms.
pub fn recovery_time(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "§6.3: recovery after a crash at the end of a write-heavy epoch",
        &["metric", "value"],
    );
    let mut cfg = p.sys_config();
    cfg.epoch_interval = None; // one long doomed epoch, worst case
    let inc = build_incll(&cfg);
    load(&inc.tree, p.keys, p.threads);
    inc.tree.epoch_manager().advance(); // checkpoint the loaded tree

    let before = inc.arena.stats().snapshot();
    run(&inc.tree, &p.run_config(Mix::A, Dist::Uniform));
    let logged = inc.arena.stats().snapshot().delta(&before).ext_nodes_logged;

    // "Crash": drop the running system without advancing, then recover
    // through the same unified entry point production code uses.
    let arena = inc.arena.clone();
    drop(inc);
    let (store2, report) = incll::Store::open(&arena, incll::Options::new()).unwrap();
    assert!(!report.created, "reopen must recover, not re-create");

    // Lazy phase: first touch of every key (amortised in real use). Use
    // the mid-level u64 scan so the timing measures node repair, not the
    // facade's per-value byte copies.
    let sess = store2.session().unwrap();
    let t0 = Instant::now();
    let mut n = 0u64;
    store2
        .masstree()
        .scan(sess.ctx(), b"", usize::MAX, &mut |_, _| n += 1);
    let lazy = t0.elapsed();

    t.push(vec!["keys".into(), p.keys.to_string()]);
    t.push(vec![
        "nodes logged in doomed epoch".into(),
        logged.to_string(),
    ]);
    t.push(vec![
        "entries replayed".into(),
        report.replayed_entries.to_string(),
    ]);
    t.push(vec![
        "bytes replayed".into(),
        report.replayed_bytes.to_string(),
    ]);
    t.push(vec![
        "eager replay time".into(),
        format!("{:?} (paper: ~15ms for 84K nodes)", report.replay_time),
    ]);
    t.push(vec![
        "full lazy sweep (whole-tree scan)".into(),
        format!("{lazy:?} over {n} keys"),
    ]);
    t.print();
    t
}

// =====================================================================
// Recovery latency — parallel per-shard replay vs sequential
// =====================================================================

/// Shard counts the recovery-latency experiment sweeps.
pub const RECOVERY_SHARDS: &[usize] = &[1, 4, 8];
/// Recovery worker counts the experiment sweeps (clamped per shard count).
pub const RECOVERY_WORKERS: &[usize] = &[1, 2, 4];

/// Emulated NVM streaming-read cost of replay for the recovery-latency
/// experiment: ~1 GiB/s per recovery stream (conservative PMem read
/// bandwidth), i.e. 1000 ns per KiB of log scanned.
pub const RECOVERY_NVM_READ_NS_PER_KB: u64 = 1000;

/// Recovery latency: restart time after a write-heavy doomed epoch, as a
/// function of shards × recovery workers.
///
/// Each cell builds a fresh store in the LOGGING configuration (InCLL
/// off, so every touched leaf external-logs once per epoch — the
/// worst-case replay volume the paper's §6.3 experiment targets), loads
/// the keyspace, checkpoints, then runs an update burst with **no**
/// checkpoint and drops the store mid-epoch. The reopen replays every
/// shard's log buffers; [`incll::Options::recovery_threads`] spreads the
/// shards over recovery workers. Replay work is per-shard-disjoint, so
/// parallel replay beats sequential on multi-shard restarts while
/// recovering byte-identical state (the crash-matrix suite asserts the
/// equivalence; this experiment records the wall-clock).
///
/// Replay runs under an emulated NVM streaming-read cost
/// ([`RECOVERY_NVM_READ_NS_PER_KB`], the Figs. 3/8 latency-model idea
/// applied to recovery): each buffer's scan charges device time
/// proportional to the bytes streamed, and concurrent workers overlap
/// their streams' device time — the memory-level parallelism a
/// partitioned log exposes. The host-CPU share of replay (checksums,
/// copies) additionally parallelises on hosts with cores ≥ workers.
pub fn recovery_latency(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "Recovery latency: parallel per-shard replay vs sequential restart",
        &[
            "shards",
            "workers",
            "entries",
            "replay_ms",
            "vs 1 worker",
            "max_shard_ms",
        ],
    );
    let threads = p.threads.max(2);
    let keys = p.keys.clamp(1_000, 300_000);
    let ops = p.ops_per_thread.min(keys);

    for &shards in RECOVERY_SHARDS {
        let mut base_ms = 0.0f64;
        for &workers in RECOVERY_WORKERS {
            if workers > shards && workers != RECOVERY_WORKERS[0] {
                continue; // extra workers would idle: nothing to measure
            }
            let mut cfg = p.sys_config();
            cfg.threads = threads;
            cfg.shards = shards;
            cfg.incll = false; // LOGGING ablation: maximal replay volume
            cfg.epoch_interval = None; // one long doomed epoch
            cfg.keys = keys;
            let sys = build_incll(&cfg);
            let store = sys.store.clone();
            load(&store, keys, threads);
            store.checkpoint();

            // The doomed epoch: every thread updates a uniform slice of
            // the keyspace; in LOGGING mode each touched leaf seals one
            // external pre-image into its shard's (thread, domain) buffer.
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let store = store.clone();
                    s.spawn(move || {
                        let sess = store.session().expect("driver session");
                        let mut i = tid as u64;
                        let mut done = 0u64;
                        while done < ops {
                            store.put_u64(&sess, &incll_ycsb::storage_key(i % keys), i);
                            i += threads as u64;
                            done += 1;
                        }
                    });
                }
            });

            // "Crash": drop the running system without a checkpoint, then
            // recover through the production entry point with the worker
            // count under test, charging emulated NVM device time for the
            // log streaming.
            let arena = sys.arena.clone();
            drop(sys);
            drop(store);
            arena
                .latency()
                .set_replay_read_ns_per_kb(RECOVERY_NVM_READ_NS_PER_KB);
            let (store2, report) = incll::Store::open(
                &arena,
                incll::Options::new()
                    .threads(threads)
                    .incll(false)
                    .shards(shards)
                    .recovery_threads(workers),
            )
            .expect("reopen recovers");
            assert!(!report.created, "reopen must recover, not re-create");
            assert_eq!(report.parallel_workers, workers.min(shards));
            drop(store2);

            // The report's replay_time IS the eager restart phase.
            let ms = report.replay_time.as_secs_f64() * 1e3;
            if workers == 1 {
                base_ms = ms;
            }
            let max_shard_ms = report
                .per_shard
                .iter()
                .map(|s| s.replay_time.as_secs_f64() * 1e3)
                .fold(0.0f64, f64::max);
            t.push(vec![
                shards.to_string(),
                report.parallel_workers.to_string(),
                report.replayed_entries.to_string(),
                f2(ms),
                pct(base_ms, ms),
                f2(max_shard_ms),
            ]);
        }
    }
    t.print();
    t
}

// =====================================================================
// Shard scaling — N trees under one epoch vs the single-tree baseline
// =====================================================================

/// The shard counts the scaling experiment sweeps.
pub const SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Shard scaling: the same multi-thread workloads against 1/2/4/8
/// keyspace shards. The contended column interleaves monotonically
/// increasing keys across all threads — on one shard every insert lands
/// on the same right-edge leaf; hash routing spreads that hot edge over
/// the shards, so throughput should grow with the shard count. The
/// YCSB-A column shows the (near-contention-free) uniform mix for
/// contrast, and the scan column proves the k-way merge still visits
/// every key in global order.
pub fn shard_scaling(p: &ExpParams) -> Table {
    use incll_ycsb::KvBench;

    let mut t = Table::new(
        "Shard scaling: throughput vs shard count (same thread count)",
        &[
            "shards",
            "seq_put_mops",
            "vs 1 shard",
            "ycsb_a_mops",
            "scan_keys",
        ],
    );
    let threads = p.threads.max(2);
    let total_puts = p.ops_per_thread * threads as u64;
    let mut base = 0.0f64;
    for &shards in SHARD_SWEEP {
        let mut cfg = p.sys_config();
        cfg.threads = threads;
        cfg.shards = shards;
        // The experiment inserts `total_puts` sequential keys *and* (for
        // the YCSB phase) `total_puts` preloaded storage keys — size the
        // arena from that, not from `p.keys`, or a large --ops exhausts it.
        cfg.keys = (2 * total_puts).max(p.keys);
        let sys = build_incll(&cfg);
        let store = &sys.store;
        assert_eq!(store.bench_shards(), shards);

        // Contended phase: interleaved ascending keys from every thread.
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let store = store.clone();
                s.spawn(move || {
                    let sess = store.session().expect("one slot per driver thread");
                    let mut i = tid as u64;
                    while i < total_puts {
                        store.put_u64(&sess, &i.to_be_bytes(), i);
                        i += threads as u64;
                    }
                });
            }
        });
        let put_mops = total_puts as f64 / t0.elapsed().as_secs_f64() / 1e6;
        if shards == 1 {
            base = put_mops;
        }

        // Merged-scan proof: every sequentially-inserted key, globally
        // ordered (before the YCSB phase adds its own key encoding).
        let scanned;
        {
            let sess = store.session().expect("scan session");
            let mut last: Option<Vec<u8>> = None;
            let mut ordered = true;
            scanned = store.scan(&sess, b"", usize::MAX, &mut |k, _| {
                if let Some(prev) = &last {
                    ordered &= prev.as_slice() < k;
                }
                last = Some(k.to_vec());
            });
            assert_eq!(scanned as u64, total_puts, "merge must visit every key");
            assert!(ordered, "merge must yield global key order");
        }

        // Uniform YCSB-A for contrast, on a properly preloaded keyspace
        // (the driver addresses scrambled `storage_key`s, not the
        // sequential keys above).
        load(store, total_puts, threads);
        let mut rc = p.run_config(Mix::A, Dist::Uniform);
        rc.threads = threads;
        rc.nkeys = total_puts;
        let ycsb = run(store, &rc).mops();

        t.push(vec![
            shards.to_string(),
            f2(put_mops),
            pct(base, put_mops),
            f2(ycsb),
            scanned.to_string(),
        ]);
    }
    t.print();
    t
}

// =====================================================================
// Epoch domains — per-shard checkpoint cadence vs the global barrier
// =====================================================================

/// Shards used by the epoch-domains experiment.
const DOMAIN_SHARDS: usize = 4;

/// Epoch domains: contended inserts into hot shards while a cold-shard
/// scan runs concurrently, under two checkpoint regimes on the **same**
/// 4-shard store:
///
/// * `global` — one cadence advances every domain at each tick (the PR-3
///   barrier: every advance quiesces all sessions, including the scanner,
///   and pays the whole store's flush);
/// * `per_shard` — each domain is advanced on its own cadence only when
///   dirty (the dirty-work heuristic): hot-shard advances never stall the
///   cold-shard scanner, and the clean cold shard is never advanced at
///   all.
///
/// Reports insert and scan throughput, advances taken, and an
/// advance-stall histogram (p50/p99/max of the advance's quiesce + flush
/// + hook time).
pub fn epoch_domains(p: &ExpParams) -> Table {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let mut t = Table::new(
        "Epoch domains: per-shard cadence vs global barrier (contended inserts + cold-shard scan)",
        &[
            "mode",
            "put_mops",
            "scan_mops",
            "advances",
            "stall_p50_us",
            "stall_p99_us",
            "stall_max_us",
        ],
    );
    let threads = p.threads.max(2);
    let run_for = Duration::from_millis(600);
    let tick = Duration::from_millis(8);

    // The inserters cycle over a bounded key span (fresh inserts on the
    // first pass, contended updates after), so memory stays steady via
    // epoch-based buffer recycling however fast the host is.
    let span = 200_000u64;

    for mode in ["global", "per_shard"] {
        let mut cfg = p.sys_config();
        cfg.threads = threads + 1; // +1 session slot for the scanner
        cfg.shards = DOMAIN_SHARDS;
        cfg.epoch_interval = None; // the experiment drives (and times) advances
        cfg.keys = (2 * span).max(p.keys); // arena sizing
        let sys = build_incll(&cfg);
        let store = &sys.store;

        // The cold shard: preloaded, scanned, never written during the
        // run. Keys are routed by hash, so pick per-key.
        let cold = DOMAIN_SHARDS - 1;
        {
            let sess = store.session().expect("preload session");
            let mut loaded = 0u64;
            let mut i = 0u64;
            while loaded < 20_000 {
                let key = i.to_be_bytes();
                if store.shard_of(&key) == cold {
                    store.put_u64(&sess, &key, i);
                    loaded += 1;
                }
                i += 1;
            }
        }
        store.checkpoint();

        let stop = AtomicBool::new(false);
        let puts = AtomicU64::new(0);
        let scanned = AtomicU64::new(0);
        let mut stalls_us: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            // Hot inserters: interleaved ascending keys, skipping the cold
            // shard — on each hot shard every insert lands on the same
            // right-edge leaf (the contended workload).
            for tid in 0..threads {
                let store = store.clone();
                let stop = &stop;
                let puts = &puts;
                s.spawn(move || {
                    let sess = store.session().expect("inserter session");
                    let mut n = 0u64;
                    let mut i = tid as u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = (i % span).to_be_bytes();
                        if store.shard_of(&key) != cold {
                            store.put_u64(&sess, &key, i);
                            n += 1;
                        }
                        i += threads as u64;
                    }
                    puts.fetch_add(n, Ordering::Relaxed);
                });
            }
            // Cold-shard scanner: repeated bounded scans over the cold
            // shard's own tree (pins only that shard's domain).
            {
                let store = store.clone();
                let stop = &stop;
                let scanned = &scanned;
                s.spawn(move || {
                    let sess = store.session().expect("scanner session");
                    let shard = store.masstree().shard(cold);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        n += shard.scan(sess.ctx(), b"", 512, &mut |_, _| {}) as u64;
                    }
                    scanned.fetch_add(n, Ordering::Relaxed);
                });
            }
            // Advancer: the checkpoint regime under test, timed per
            // advance. Deadline-based ticking: both regimes target the
            // same checkpoint cadence, and a slow barrier eats into its
            // own next period instead of silently checkpointing less
            // often.
            let t0 = Instant::now();
            let mut next = t0 + tick;
            while t0.elapsed() < run_for {
                let now = Instant::now();
                if now < next {
                    std::thread::sleep(next - now);
                }
                next += tick;
                if mode == "global" {
                    let a0 = Instant::now();
                    store.checkpoint();
                    stalls_us.push(a0.elapsed().as_micros() as u64);
                } else {
                    let mgr = store.epoch_manager();
                    for d in 0..DOMAIN_SHARDS {
                        if mgr.domain_dirty(d) {
                            let a0 = Instant::now();
                            store.checkpoint_shard(d);
                            stalls_us.push(a0.elapsed().as_micros() as u64);
                        }
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        let secs = run_for.as_secs_f64();
        stalls_us.sort_unstable();
        let pick = |q: usize| stalls_us[(stalls_us.len() - 1) * q / 100];
        t.push(vec![
            mode.into(),
            f2(puts.load(Ordering::Relaxed) as f64 / secs / 1e6),
            f2(scanned.load(Ordering::Relaxed) as f64 / secs / 1e6),
            stalls_us.len().to_string(),
            pick(50).to_string(),
            pick(99).to_string(),
            stalls_us.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    t.print();
    t
}

// =====================================================================
// Read path — zero-copy gets and epoch-snapshot scans
// =====================================================================

/// Driver thread counts the read-path experiment sweeps.
pub const READ_PATH_THREADS: &[usize] = &[1, 4];
/// Shard counts the read-path experiment sweeps.
pub const READ_PATH_SHARDS: &[usize] = &[1, 8];
/// Value size preloaded for the read-mode throughput table.
pub const READ_PATH_VAL_BYTES: usize = 64;

/// Read path: the three read modes (allocating `get`, buffer-reusing
/// `get_into`, borrowed zero-copy `get_ref`) on the read-heavy YCSB
/// mixes, plus the scan-vs-advance stall histogram before/after
/// epoch-snapshot scans.
///
/// Table 1 runs YCSB-B (95 % reads) and YCSB-C (read-only) over each
/// read mode at 1/4 driver threads × 1/8 shards on the durable store,
/// preloaded with [`READ_PATH_VAL_BYTES`]-byte values (one cache line —
/// a small web-service object, not the paper's bare 8-byte register, so
/// the copying reads pay a real memcpy). The modes differ only in how
/// `Op::Read` is served: `get` allocates a fresh `Vec` per hit,
/// `get_into` copies into a reused buffer, and `get_ref` borrows the
/// value bytes in place under an epoch read pin — no allocation, no
/// copy.
///
/// Table 2 times `checkpoint_shard(0)` on a 1-shard store while a
/// scanner loops over the whole keyspace, under two scan disciplines:
///
/// * `pinned_scan` — the mid-level tree scan, which holds the shard's
///   epoch pin for the scan's **whole lifetime** (the pre-snapshot
///   behavior of the facade's scans): every advance waits out the
///   in-flight full scan;
/// * `snapshot_scan` — the facade's batched scan, which pins only per
///   batch refill: an advance waits at most one bounded refill.
///
/// The stall columns are the p50/p99/max of the advance's quiesce +
/// flush + hook time, the [`epoch_domains`] metric.
pub fn read_path(p: &ExpParams) -> (Table, Table) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    // ---------------- Table 1: read-mode throughput ----------------
    let mut t1 = Table::new(
        "Read path: YCSB-B/C throughput by read mode (get vs get_into vs get_ref)",
        &[
            "mix",
            "threads",
            "shards",
            "get_mops",
            "get_into_mops",
            "get_ref_mops",
            "ref_vs_get",
        ],
    );
    for &shards in READ_PATH_SHARDS {
        for &threads in READ_PATH_THREADS {
            let mut cfg = p.sys_config();
            cfg.threads = threads.max(2); // slots for drivers and loader
            cfg.shards = shards;
            let sys = build_incll(&cfg);
            {
                // Preload cache-line-sized byte values (not `load`'s u64
                // registers) so alloc-and-copy reads have real work.
                let sess = sys.store.session().expect("loader session");
                let val = [0x5Au8; READ_PATH_VAL_BYTES];
                for i in 0..p.keys {
                    sys.store
                        .put(&sess, &incll_ycsb::storage_key(i), &val)
                        .expect("fits size class");
                }
            }
            for mix in [Mix::B, Mix::C] {
                let mut rc = p.run_config(mix, Dist::Uniform);
                rc.threads = threads;
                let mops = |mode| run_with_reads(&sys.store, &rc, mode).mops();
                let alloc = mops(ReadMode::Alloc);
                let into = mops(ReadMode::Into);
                let byref = mops(ReadMode::Ref);
                t1.push(vec![
                    mix.label().into(),
                    threads.to_string(),
                    shards.to_string(),
                    f2(alloc),
                    f2(into),
                    f2(byref),
                    pct(alloc, byref),
                ]);
            }
        }
    }
    t1.print();

    // ------------- Table 2: scan-vs-advance stall histogram -------------
    let mut t2 = Table::new(
        "Read path: advance stall while a long scan runs (pinned vs snapshot scan)",
        &[
            "mode",
            "scanned_keys",
            "advances",
            "stall_p50_us",
            "stall_p99_us",
            "stall_max_us",
        ],
    );
    let keys = p.keys.clamp(2_000, 200_000);
    let run_for = Duration::from_millis(400);
    let tick = Duration::from_millis(8);
    for mode in ["pinned_scan", "snapshot_scan"] {
        let mut cfg = p.sys_config();
        cfg.threads = 3; // scanner + writer (+ headroom)
        cfg.shards = 1;
        cfg.epoch_interval = None; // the experiment drives (and times) advances
        cfg.keys = keys;
        // Both disciplines pay the emulated flush identically; zero it so
        // the stall columns isolate the quiesce wait — the part the scan
        // discipline actually changes.
        cfg.wbinvd_ns = 0;
        let sys = build_incll(&cfg);
        let store = &sys.store;
        load(store, keys, 2);
        store.checkpoint();

        let stop = AtomicBool::new(false);
        let scanned = AtomicU64::new(0);
        let mut stalls_us: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            // The long scanner: repeated whole-keyspace scans. The pinned
            // discipline is the mid-level tree scan (one pin across the
            // whole pass); the snapshot discipline is the facade scan
            // (one short pin per batch refill).
            {
                let store = store.clone();
                let stop = &stop;
                let scanned = &scanned;
                s.spawn(move || {
                    let sess = store.session().expect("scanner session");
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        n += if mode == "pinned_scan" {
                            store
                                .masstree()
                                .scan(sess.ctx(), b"", usize::MAX, &mut |_, _| {})
                                as u64
                        } else {
                            store.scan(&sess, b"", usize::MAX, &mut |_, _| {}) as u64
                        };
                    }
                    scanned.fetch_add(n, Ordering::Relaxed);
                });
            }
            // A low-duty writer keeps the domain dirty so every advance
            // has real flush + hook work, without competing for the CPU
            // (its own pin must not be what the advance waits on).
            {
                let store = store.clone();
                let stop = &stop;
                s.spawn(move || {
                    let sess = store.session().expect("writer session");
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..16 {
                            store.put_u64(&sess, &incll_ycsb::storage_key(i % keys), i);
                            i += 1;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                });
            }
            // Advancer: deadline-ticking scoped checkpoints, timed. With a
            // pinned scanner each advance waits out the in-flight full
            // scan; with snapshot scans it waits at most one batch.
            let t0 = Instant::now();
            let mut next = t0 + tick;
            while t0.elapsed() < run_for {
                let now = Instant::now();
                if now < next {
                    std::thread::sleep(next - now);
                }
                next += tick;
                let a0 = Instant::now();
                store.checkpoint_shard(0);
                stalls_us.push(a0.elapsed().as_micros() as u64);
            }
            stop.store(true, Ordering::Relaxed);
        });
        stalls_us.sort_unstable();
        let pick = |q: usize| stalls_us[(stalls_us.len() - 1) * q / 100];
        t2.push(vec![
            mode.into(),
            scanned.load(Ordering::Relaxed).to_string(),
            stalls_us.len().to_string(),
            pick(50).to_string(),
            pick(99).to_string(),
            stalls_us.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    t2.print();
    (t1, t2)
}

// =====================================================================
// Write batches — atomic cross-shard groups vs per-key vs barrier
// =====================================================================

/// Keys per atomic group in the txn-batches experiment.
pub const TXN_BATCH_GROUP: usize = 8;
/// Shards the txn-batches experiment runs on.
pub const TXN_BATCH_SHARDS: usize = 8;

/// Write batches: committing groups of [`TXN_BATCH_GROUP`] cross-shard
/// puts under three disciplines on the same 8-shard store:
///
/// * `batched` — one [`incll::WriteBatch`] commit per group: intents +
///   one durable batch-table record make the group crash-atomic across
///   shards, with no epoch barrier on the write path;
/// * `per_key` — plain individual puts: fastest, but a crash can tear
///   the group (the baseline the batch pays its atomicity tax against);
/// * `checkpoint_barrier` — individual puts followed by a full
///   [`incll::Store::checkpoint`]: the only pre-batch way to make a
///   cross-shard group crash-atomic, paying an all-domains quiesce +
///   flush per group.
///
/// Reports write throughput and the p50/p99/max per-group commit
/// latency. The batched mode's tail latency includes batch-table slot
/// evictions (a full table forces boundaries on the victim's shards) —
/// the cost of unbounded in-flight batches between checkpoints.
pub fn txn_batches(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "Write batches: cross-shard groups — batched vs per-key vs checkpoint barrier",
        &[
            "mode",
            "groups",
            "put_kops",
            "vs batched",
            "commit_p50_us",
            "commit_p99_us",
            "commit_max_us",
        ],
    );
    let k = TXN_BATCH_GROUP;
    let groups = ((p.ops_per_thread as usize) / k).clamp(50, 1_500);

    let mut base = 0.0f64;
    for mode in ["batched", "per_key", "checkpoint_barrier"] {
        // The barrier mode pays a full store checkpoint per group: cap its
        // group count so the experiment stays runnable at every scale (the
        // per-group latency columns are unaffected).
        let groups = if mode == "checkpoint_barrier" {
            groups.min(200)
        } else {
            groups
        };
        let mut cfg = p.sys_config();
        cfg.threads = 2;
        cfg.shards = TXN_BATCH_SHARDS;
        cfg.keys = ((groups * k) as u64 * 2).max(p.keys); // arena sizing
        let sys = build_incll(&cfg);
        let store = &sys.store;
        let sess = store.session().expect("driver session");

        let mut lat_us: Vec<u64> = Vec::with_capacity(groups);
        let t0 = Instant::now();
        for g in 0..groups {
            let val = (g as u64).to_le_bytes();
            let g0 = Instant::now();
            match mode {
                "batched" => {
                    let mut b = sess.batch();
                    for j in 0..k {
                        let key = incll_ycsb::storage_key((g * k + j) as u64);
                        b.put(&key, &val).expect("within batch caps");
                    }
                    b.commit().expect("batch commits");
                }
                "per_key" => {
                    for j in 0..k {
                        let key = incll_ycsb::storage_key((g * k + j) as u64);
                        store.put(&sess, &key, &val).expect("fits size class");
                    }
                }
                _ => {
                    for j in 0..k {
                        let key = incll_ycsb::storage_key((g * k + j) as u64);
                        store.put(&sess, &key, &val).expect("fits size class");
                    }
                    store.checkpoint(); // atomicity via the global barrier
                }
            }
            lat_us.push(g0.elapsed().as_micros() as u64);
        }
        let secs = t0.elapsed().as_secs_f64();
        let kops = (groups * k) as f64 / secs / 1e3;
        if mode == "batched" {
            base = kops;
        }
        lat_us.sort_unstable();
        let pick = |q: usize| lat_us[(lat_us.len() - 1) * q / 100];
        t.push(vec![
            mode.into(),
            groups.to_string(),
            f2(kops),
            pct(base, kops),
            pick(50).to_string(),
            pick(99).to_string(),
            lat_us.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    t.print();
    t
}

// =====================================================================
// §6.1 — InCLL-for-interior-nodes ablation
// =====================================================================

/// §6.1: the paper tried InCLL on interior nodes and rejected it — leaf
/// logging dominates. This ablation quantifies that: how much of the
/// external log is interior nodes at all.
pub fn ablation_internal(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "§6.1: interior-node share of external logging (YCSB_A uniform)",
        &["metric", "value"],
    );
    let sys = build_incll(&p.sys_config());
    load(&sys.tree, p.keys, p.threads);
    let before = sys.arena.stats().snapshot();
    run(&sys.tree, &p.run_config(Mix::A, Dist::Uniform));
    let d = sys.arena.stats().snapshot().delta(&before);
    let total = d.ext_nodes_logged.max(1);
    t.push(vec![
        "nodes ext-logged".into(),
        d.ext_nodes_logged.to_string(),
    ]);
    t.push(vec![
        "interior nodes ext-logged".into(),
        format!(
            "{} ({:.1}% of all logs)",
            d.ext_interior_logged,
            d.ext_interior_logged as f64 / total as f64 * 100.0
        ),
    ]);
    t.push(vec![
        "InCLLp logs (free)".into(),
        d.incll_perm_logs.to_string(),
    ]);
    t.push(vec![
        "ValInCLL logs (free)".into(),
        d.incll_val_logs.to_string(),
    ]);
    t.push(vec![
        "conclusion".into(),
        "interior logging is a tiny fraction; per-leaf InCLL is where the win is".into(),
    ]);
    t.print();
    t
}

// =====================================================================
// Adaptive per-shard cadence + batched log-buffer appends
// =====================================================================

/// Shards the adaptive-cadence experiment runs on.
pub const CADENCE_SHARDS: usize = 4;
/// Static per-shard cadences (ms) the adaptive controller competes
/// against; its `[min, max]` clamp spans the same range.
pub const CADENCE_STATIC_MS: &[u64] = &[2, 10, 40];
/// Run→crash→recover cycles per cadence mode. Several cycles, each
/// crashing at an uncorrelated point of the checkpoint window, so no
/// mode gets lucky with a crash right after (or right before) a
/// boundary.
pub const CADENCE_SEGMENTS: usize = 16;
/// Persistence granularities (bytes) the buffered-append table sweeps.
pub const GRANULARITY_SWEEP: &[usize] = &[0, 256, 4096];
/// Puts per atomic batch in the granularity table.
pub const GRANULARITY_BATCH: usize = 8;

/// Adaptive vs static checkpoint cadences on a **skew-shifting**
/// workload: a migrating tenant sweeps one shard's whole bucket
/// uniformly (its undo footprint grows with the checkpoint window) and
/// rotates across the 4 shards, while small Zipfian resident sets keep
/// every shard mildly dirty.
///
/// Each mode runs [`CADENCE_SEGMENTS`] cycles of *run → fail → recover*:
/// writers run for a fixed slice, the store is torn down mid-flight, and
/// the reopen's undo replay back to each shard's last boundary is timed
/// under an emulated NVM streaming-read cost. The score is **effective
/// throughput over the whole horizon including recoveries** —
/// `ops / (run + recovery)` — the quantity a cadence actually trades:
/// checkpointing too often stalls writers on per-shard scoped flushes
/// and once-per-epoch relogging, too rarely leaves long undo tails to
/// replay. A static interval is wrong for some shard in every phase
/// (the per-shard optimum tracks the shard's write rate, which the
/// rotating hotspot keeps moving); the adaptive controller re-tunes
/// each shard toward its own `target_dirty_bytes` equilibrium.
///
/// Runs the paper's external-LOGGING mode: with InCLL on, the in-line
/// logs absorb nearly all undo traffic (the paper's point) and cadence
/// barely moves the undo tail; the cadence trade-off is legible in the
/// mode whose undo bytes are explicit.
pub fn adaptive_cadence(p: &ExpParams) -> Table {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use incll_epoch::{AdaptiveCadence, Cadence};
    use incll_ycsb::{storage_key, ShiftingHotspot};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut t = Table::new(
        "Adaptive vs static per-shard cadence on a skew-shifting workload (score includes recovery after each of the 16 mid-flight failures)",
        &[
            "cadence",
            "put_mops",
            "advances",
            "skipped",
            "crash_tail_kb",
            "recovery_ms",
            "eff_mops",
        ],
    );
    // One writer: the cadence driver must actually *deliver* the tight
    // intervals under test, and on small CPU budgets a pack of writers
    // starves it into a blunt every-few-ms policy no matter what the
    // cadence asks for — which would measure the scheduler, not the
    // policy.
    let threads = 1;
    // Not a multiple of any swept interval: every static cadence crashes
    // mid-window, so the measured undo tail reflects the cadence rather
    // than a razor-edge race between the segment end and a boundary.
    let seg = Duration::from_millis(415);
    let keys = p.keys.clamp(4_000, 1_000_000);
    let min = Duration::from_millis(CADENCE_STATIC_MS[0]);
    let max = Duration::from_millis(*CADENCE_STATIC_MS.last().unwrap());

    let mut modes: Vec<(String, Cadence)> = CADENCE_STATIC_MS
        .iter()
        .map(|&ms| {
            (
                format!("static_{ms}ms"),
                Cadence::lazy(Duration::from_millis(ms)),
            )
        })
        .collect();
    modes.push((
        "adaptive".into(),
        Cadence::adaptive(AdaptiveCadence {
            min,
            max,
            target_dirty_bytes: 224 << 10,
            hysteresis: 2,
        }),
    ));

    for (name, cadence) in modes {
        let mut cfg = p.sys_config();
        cfg.threads = threads;
        cfg.shards = CADENCE_SHARDS;
        cfg.keys = keys;
        cfg.epoch_interval = None;
        // Preload on a driverless store: no cadence ticks pollute the
        // counters (or make preload duration mode-dependent); the mode's
        // cadence arrives with the reopen below.
        cfg.cadence = None;
        cfg.incll = false;
        cfg.sfence_ns = 600;
        cfg.scoped_flush_ns = Some(1_000_000);
        cfg.replay_read_ns_per_kb = 600_000;
        let sys = build_incll(&cfg);
        let arena = sys.arena.clone();
        // The open used after each simulated failure: same shape the
        // store runs with (cadence included, so each segment's driver
        // comes back up with it).
        let reopen_options = || {
            incll::Options::new()
                .threads(cfg.threads)
                .log_bytes_per_thread(cfg.log_bytes_per_thread)
                .incll(cfg.incll)
                .shards(cfg.shards)
                .persistence_granularity(cfg.persistence_granularity)
                .cadence(cadence)
        };
        let store = sys.store.clone();
        drop(sys); // keep exactly one owner; `store` is rebuilt per segment
        {
            let sess = store.session().expect("preload session");
            let val = [7u8; 64];
            for i in 0..keys {
                store.put(&sess, &storage_key(i), &val).expect("preload");
                // No driver is advancing epochs yet: bound the undo tail
                // (and the per-slot log cursors) by hand.
                if i % 20_000 == 19_999 {
                    store.checkpoint();
                }
            }
        }
        store.checkpoint();
        drop(store);
        // Untimed cadenced reopen: segment 1 starts from a clean boundary
        // with zeroed counters and the mode's own driver.
        let (s0, _report) = incll::Store::open(&arena, reopen_options()).expect("cadenced open");
        let mut store = s0;

        // Per-thread generators survive the failures: the rotation and
        // the RNG streams continue across segments.
        let mut gens: Vec<(ShiftingHotspot, StdRng)> = (0..threads)
            .map(|tid| {
                (
                    ShiftingHotspot::new(
                        keys,
                        CADENCE_SHARDS,
                        |k| store.shard_of(k),
                        220_000,
                        0.7,
                        128,
                    ),
                    StdRng::seed_from_u64(p.seed ^ ((tid as u64) << 17)),
                )
            })
            .collect();

        let (mut total, mut run_secs, mut rec_secs) = (0u64, 0.0f64, 0.0f64);
        let (mut fired, mut skipped, mut tail_kb) = (0u64, 0u64, 0u64);
        for _ in 0..CADENCE_SEGMENTS {
            let stop = AtomicBool::new(false);
            let puts = AtomicU64::new(0);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for (hotspot, rng) in gens.iter_mut() {
                    let store = store.clone();
                    let stop = &stop;
                    let puts = &puts;
                    s.spawn(move || {
                        let sess = store.session().expect("writer session");
                        let val = [9u8; 64];
                        let mut n = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let idx = hotspot.next_index(rng);
                            store
                                .put(&sess, &storage_key(idx), &val)
                                .expect("fits size class");
                            n += 1;
                        }
                        puts.fetch_add(n, Ordering::Relaxed);
                    });
                }
                std::thread::sleep(seg);
                // Freeze the cadence *before* quiescing the writers: this
                // teardown stands in for a power failure, and a backlogged
                // driver must not spend the sudden idle time on one last
                // catch-up advance that erases the very undo tail the
                // reopen below is supposed to replay.
                store.halt_cadence();
                stop.store(true, Ordering::Relaxed);
            });
            run_secs += t0.elapsed().as_secs_f64();
            total += puts.load(Ordering::Relaxed);

            // Controller observations at this failure point (counters
            // reset with the store, so sample before tearing it down).
            for d in 0..CADENCE_SHARDS {
                let st = store.shard_stats(d);
                fired += st.advances_fired;
                skipped += st.advances_skipped;
                tail_kb += st.bytes_since_boundary >> 10;
            }
            drop(store); // the last owner: the cadence driver stops too

            // Fail + recover: the reopen replays each shard's undo tail
            // back to its last boundary — the exposure the cadence was
            // (or wasn't) bounding — and doubles as the next segment's
            // store.
            let t0 = Instant::now();
            let (s2, _report) = incll::Store::open(&arena, reopen_options()).expect("recovery");
            rec_secs += t0.elapsed().as_secs_f64();
            store = s2;
        }
        drop(store);

        t.push(vec![
            name,
            f2(total as f64 / run_secs / 1e6),
            fired.to_string(),
            skipped.to_string(),
            (tail_kb / CADENCE_SEGMENTS as u64).to_string(),
            ((rec_secs * 1e3) as u64).to_string(),
            f2(total as f64 / (run_secs + rec_secs) / 1e6),
        ]);
    }
    t.print();
    t
}

/// Buffered vs eager external-log persistence on small-value batched
/// puts: groups of [`GRANULARITY_BATCH`] 64-byte-value updates commit
/// atomically, so every group stages one intent entry per op, swept
/// over [`GRANULARITY_SWEEP`]. Granularity 0 is the legacy path — one
/// `clwb`+`sfence` per intent; a nonzero granularity stages the group's
/// intents and the commit's pre-record drain pays one
/// `clwb_range`+`sfence` per shard for all of them. Undo pre-images are
/// *not* part of the batching: they seal before the modification they
/// guard at every granularity (the write-ahead invariant), so both
/// modes pay identical fences on that path. With a realistic
/// post-`sfence` NVM stall, cutting the per-intent fences is a direct
/// throughput win.
///
/// Like [`adaptive_cadence`], runs the external-LOGGING mode so the
/// append path under test is the one doing the undo logging.
pub fn persistence_granularity(p: &ExpParams) -> Table {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use incll_epoch::Cadence;
    use incll_ycsb::storage_key;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut t = Table::new(
        "Buffered log appends: persistence granularity vs small-value batched put throughput",
        &["granularity", "put_mops", "fences_per_kop"],
    );
    let threads = p.threads.max(2);
    let run_for = Duration::from_millis(400);
    let keys = p.keys.clamp(4_000, 200_000);

    for &gran in GRANULARITY_SWEEP {
        let mut cfg = p.sys_config();
        cfg.threads = threads;
        cfg.keys = keys;
        cfg.epoch_interval = None;
        // A fixed lazy cadence so every mode pays the same once-per-epoch
        // relogging; only the append path's flush discipline varies.
        cfg.cadence = Some(Cadence::lazy(Duration::from_millis(10)));
        cfg.incll = false;
        cfg.sfence_ns = 600;
        cfg.scoped_flush_ns = Some(10_000);
        // Cross-shard batches are the batchable path: a single-shard
        // store commits on the intent-free fast path, where a nonzero
        // granularity has (by design) nothing left to coalesce.
        cfg.shards = 4;
        cfg.persistence_granularity = gran;
        let sys = build_incll(&cfg);
        let store = sys.store.clone();
        {
            let sess = store.session().expect("preload session");
            let val = [7u8; 64];
            for i in 0..keys {
                store.put(&sess, &storage_key(i), &val).expect("preload");
            }
        }
        store.checkpoint();

        let before = sys.arena.stats().snapshot();
        let stop = AtomicBool::new(false);
        let puts = AtomicU64::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let store = store.clone();
                let stop = &stop;
                let puts = &puts;
                let seed = p.seed;
                s.spawn(move || {
                    let sess = store.session().expect("writer session");
                    let mut rng = StdRng::seed_from_u64(seed ^ ((tid as u64) << 23));
                    let val = [11u8; 64];
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let mut b = sess.batch();
                        for _ in 0..GRANULARITY_BATCH {
                            let idx = rng.gen_range(0..keys);
                            b.put(&storage_key(idx), &val).expect("within batch caps");
                        }
                        b.commit().expect("batch commits");
                        n += GRANULARITY_BATCH as u64;
                    }
                    puts.fetch_add(n, Ordering::Relaxed);
                });
            }
            std::thread::sleep(run_for);
            stop.store(true, Ordering::Relaxed);
        });
        let d = sys.arena.stats().snapshot().delta(&before);
        let total = puts.load(Ordering::Relaxed).max(1);
        t.push(vec![
            if gran == 0 {
                "0 (eager)".into()
            } else {
                gran.to_string()
            },
            f2(total as f64 / run_for.as_secs_f64() / 1e6),
            f2(d.sfence as f64 / (total as f64 / 1e3)),
        ]);
    }
    t.print();
    t
}

// =====================================================================
// Extent growth — chunked extents vs the static per-shard split
// =====================================================================

/// Shards the extent-growth experiment runs on.
pub const EXTENT_GROWTH_SHARDS: usize = 8;
/// Arena capacity for the extent-growth experiment (bytes).
pub const EXTENT_GROWTH_ARENA: usize = 64 << 20;
/// Value length: 3000 → the 4 KiB size class, so space consumption per
/// put is predictable.
pub const EXTENT_GROWTH_VAL: usize = 3000;

/// Extent growth: a skewed-hotspot fill on an 8-shard store, every
/// insert routed to **one** shard — the workload that makes a static
/// one-region-per-shard split (the layout-v5 shape) return
/// `OutOfMemory` once the hot shard's 1/8th fills, with 7/8ths of the
/// arena still free. Under the layout-v6 chunked extent pool the hot
/// shard claims free extents online and the fill completes.
///
/// The proof is in the extent accounting, not timing: the hot shard
/// ends the fill owning **more extents than the static per-shard
/// quota** (`extents_total / shards`), i.e. it consumed space a static
/// split could never have handed it. A uniform-fill row shows the
/// other regime: balanced pressure claims extents evenly, so the
/// per-shard ownership spread stays tight.
pub fn extent_growth(p: &ExpParams) -> Table {
    let mut t = Table::new(
        "Extent growth: skewed fill on 8 shards under the chunked extent pool",
        &[
            "workload",
            "completed",
            "puts",
            "mb_written",
            "extents_total",
            "extent_kb",
            "hot_extents",
            "static_quota",
            "min_owned",
            "max_owned",
        ],
    );
    // Enough 4 KiB-class puts to push the hot shard well past the static
    // quota (64 MiB arena → ~62 extents → quota ~7 ≈ 8 MiB; the lower
    // clamp alone writes ~12 MiB), however small the CI overrides are.
    let puts = usize::try_from(p.ops_per_thread)
        .unwrap_or(usize::MAX)
        .clamp(3_000, 6_000);

    for skewed in [false, true] {
        let arena = incll_pmem::PArena::builder()
            .capacity_bytes(EXTENT_GROWTH_ARENA)
            .build()
            .expect("arena");
        let (store, r) = incll::Store::open(
            &arena,
            incll::Options::new()
                .threads(2)
                .shards(EXTENT_GROWTH_SHARDS),
        )
        .expect("create");
        assert!(r.created);
        let sess = store.session().expect("driver session");
        let hot = 0usize;
        let val = vec![0x6bu8; EXTENT_GROWTH_VAL];
        let mut done = 0usize;
        let mut completed = true;
        let mut i = 0u64;
        while done < puts {
            let key = format!("eg{i}").into_bytes();
            i += 1;
            if skewed && store.shard_of(&key) != hot {
                continue; // the hotspot: every put lands on shard `hot`
            }
            if store.put(&sess, &key, &val).is_err() {
                completed = false; // typed OutOfMemory: the pool is spent
                break;
            }
            done += 1;
            if done.is_multiple_of(512) {
                store.checkpoint(); // bound the undo-log tail
            }
        }
        let stats = store.extent_stats().expect("multi-shard store");
        let quota = stats.extent_count / EXTENT_GROWTH_SHARDS;
        t.push(vec![
            if skewed {
                "skewed_hot_shard"
            } else {
                "uniform"
            }
            .into(),
            if completed { "yes" } else { "no" }.into(),
            done.to_string(),
            format!(
                "{:.1}",
                (done * EXTENT_GROWTH_VAL) as f64 / (1 << 20) as f64
            ),
            stats.extent_count.to_string(),
            (stats.extent_bytes >> 10).to_string(),
            stats.owned_per_shard[hot].to_string(),
            quota.to_string(),
            stats
                .owned_per_shard
                .iter()
                .min()
                .copied()
                .unwrap_or(0)
                .to_string(),
            stats
                .owned_per_shard
                .iter()
                .max()
                .copied()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    t.print();
    t
}

// =====================================================================
// Server scaling — the TCP front-end under pipelined network load
// =====================================================================

/// One server-under-test: a fresh durable store behind `incll-server`
/// on a loopback socket.
struct NetSystem {
    server: incll_server::Server,
    /// Kept alive for stats (`server` holds its own Store clone).
    sys: crate::systems::DurableSystem,
}

fn start_net_system(keys: u64, workers: usize, commit: incll_server::CommitMode) -> NetSystem {
    use std::net::TcpListener;
    let mut cfg = SystemConfig::new(keys, workers + 2); // workers + committer + spare
    cfg.epoch_interval = None; // checkpointless: commit records carry durability
    let sys = build_incll(&cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = incll_server::Server::start(
        sys.store.clone(),
        listener,
        incll_server::ServerConfig {
            workers,
            commit,
            session_timeout: Duration::from_secs(10),
            ..incll_server::ServerConfig::default()
        },
    )
    .expect("session pool sized for the worker count");
    NetSystem { server, sys }
}

/// Server scaling: closed-loop throughput of the TCP front-end across
/// commit modes, worker counts and connection counts — plus the fence
/// amortisation that is the group committer's whole point. The headline:
/// on a small-value put-heavy mix, `group` must beat `per_request` on
/// throughput *and* on fences per kop.
pub fn server_scaling(p: &ExpParams) -> (Table, Table) {
    use incll_server::{CommitMode, GroupConfig};
    use incll_ycsb::{net_load, run_closed_loop, run_open_loop, NetRunConfig};

    let keys = (p.keys / 50).clamp(5_000, 100_000);
    let ops_per_conn = ((p.ops_per_thread as usize) / 10).clamp(1_000, 50_000);

    let mut t = Table::new(
        "Server scaling: closed-loop YCSB-A over TCP, pipelined, per commit mode",
        &[
            "commit",
            "window_us",
            "workers",
            "conns",
            "kops",
            "vs per_request",
            "fences_per_kop",
            "groups",
            "ops_grouped",
        ],
    );

    let modes: &[(&str, u64, CommitMode)] = &[
        ("per_request", 0, CommitMode::PerRequest),
        (
            "group",
            50,
            CommitMode::Group(GroupConfig {
                window: Duration::from_micros(50),
                ..GroupConfig::default()
            }),
        ),
        (
            "group",
            200,
            CommitMode::Group(GroupConfig {
                window: Duration::from_micros(200),
                ..GroupConfig::default()
            }),
        ),
        ("async", 0, CommitMode::Async),
    ];
    let topologies: &[(usize, usize)] = &[(2, 4), (4, 8)];

    // Baseline (per_request kops) per topology, for the "vs" column.
    let mut base: std::collections::HashMap<(usize, usize), f64> = std::collections::HashMap::new();
    for &(label, window_us, ref commit) in modes {
        for &(workers, conns) in topologies {
            let ns = start_net_system(keys, workers, commit.clone());
            let addr = ns.server.local_addr();
            net_load(addr, keys, 8, 512).expect("preload over the wire");
            let cfg = NetRunConfig {
                connections: conns,
                pipeline: 8,
                ops_per_conn,
                nkeys: keys,
                mix: Mix::A,
                dist: Dist::Uniform,
                value_len: 8,
                seed: p.seed,
            };
            let before = ns.sys.arena.stats().snapshot();
            let res = run_closed_loop(addr, &cfg).expect("closed-loop run");
            let d = ns.sys.arena.stats().snapshot().delta(&before);
            assert_eq!(res.errors, 0, "server returned error responses");
            let (groups, grouped_ops) = ns.server.group_stats();
            let kops = res.kops();
            let b = *base.entry((workers, conns)).or_insert(kops);
            t.push(vec![
                label.into(),
                if window_us == 0 {
                    "-".into()
                } else {
                    window_us.to_string()
                },
                workers.to_string(),
                conns.to_string(),
                f2(kops),
                pct(b, kops),
                f2(d.sfence as f64 / (res.ops as f64 / 1e3)),
                groups.to_string(),
                grouped_ops.to_string(),
            ]);
        }
    }
    t.print();

    // Open loop: fixed-rate schedules, latency from *intended* send
    // times (coordinated-omission-safe percentiles).
    let mut t2 = Table::new(
        "Server open-loop latency: YCSB-A at a fixed target rate, per commit mode",
        &[
            "commit",
            "window_us",
            "target_qps",
            "achieved_qps",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    let target_qps = 10_000.0f64;
    let ol_conns = 4usize;
    let ol_ops = ((target_qps / ol_conns as f64) * 1.0) as usize; // ~1 s of schedule
    for &(label, window_us, ref commit) in modes {
        let ns = start_net_system(keys, 4, commit.clone());
        let addr = ns.server.local_addr();
        net_load(addr, keys, 8, 512).expect("preload over the wire");
        let cfg = NetRunConfig {
            connections: ol_conns,
            pipeline: 1,
            ops_per_conn: ol_ops,
            nkeys: keys,
            mix: Mix::A,
            dist: Dist::Uniform,
            value_len: 8,
            seed: p.seed,
        };
        let res = run_open_loop(addr, &cfg, target_qps).expect("open-loop run");
        assert_eq!(res.errors, 0, "server returned error responses");
        t2.push(vec![
            label.into(),
            if window_us == 0 {
                "-".into()
            } else {
                window_us.to_string()
            },
            f2(res.target_qps),
            f2(res.achieved_qps()),
            f2(res.p50_us),
            f2(res.p95_us),
            f2(res.p99_us),
        ]);
    }
    t2.print();
    (t, t2)
}
