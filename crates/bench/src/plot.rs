//! Standalone SVG charts from `BENCH_results.json` — no plotting deps.
//!
//! The workspace builds without crates.io, so the `figures --plot` mode
//! hand-rolls its charts: for every experiment table it emits one SVG of
//! horizontal bar panels, one panel per numeric column, one bar per row.
//! Each panel is scaled to its own column maximum, so differently-scaled
//! metrics (kops next to µs next to fence counts) stay readable side by
//! side.

use std::fmt::Write as _;

use crate::compare::Json;

/// Columns whose cells mostly parse as numbers become bar panels.
fn numeric(cell: &str) -> Option<f64> {
    let c = cell.trim().trim_start_matches('+').trim_end_matches('%');
    if c.is_empty() || c == "-" {
        return None;
    }
    c.parse::<f64>().ok()
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// One parsed table, lifted out of the JSON.
struct TableData {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn lift_table(t: &Json) -> Option<TableData> {
    let Json::Obj(m) = t else { return None };
    let title = match m.get("title") {
        Some(Json::Str(s)) => s.clone(),
        _ => return None,
    };
    let strings = |v: &Json| -> Vec<String> {
        match v {
            Json::Arr(a) => a
                .iter()
                .map(|c| match c {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => n.to_string(),
                    _ => String::new(),
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let header = m.get("header").map(&strings).unwrap_or_default();
    let rows = match m.get("rows") {
        Some(Json::Arr(rs)) => rs.iter().map(&strings).collect(),
        _ => Vec::new(),
    };
    Some(TableData {
        title,
        header,
        rows,
    })
}

const PANEL_W: f64 = 420.0;
const ROW_H: f64 = 20.0;
const LABEL_W: f64 = 150.0;
const BAR_MAX_W: f64 = PANEL_W - LABEL_W - 80.0;
const PALETTE: &[&str] = &[
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c", "#dc7ec0",
];

/// Renders one table as a standalone SVG document.
fn table_to_svg(t: &TableData) -> Option<String> {
    if t.rows.is_empty() || t.header.is_empty() {
        return None;
    }
    // A column is a metric if over half its cells are numeric.
    let cols = t.header.len();
    let metric_cols: Vec<usize> = (0..cols)
        .filter(|&c| {
            let hits = t
                .rows
                .iter()
                .filter(|r| r.get(c).map(|v| numeric(v).is_some()).unwrap_or(false))
                .count();
            hits * 2 > t.rows.len()
        })
        .collect();
    if metric_cols.is_empty() {
        return None;
    }
    // Row labels: the non-metric cells, joined.
    let labels: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            let parts: Vec<&str> = (0..cols)
                .filter(|c| !metric_cols.contains(c))
                .filter_map(|c| r.get(c).map(|s| s.as_str()))
                .filter(|s| !s.is_empty())
                .collect();
            if parts.is_empty() {
                "(row)".to_string()
            } else {
                parts.join(" / ")
            }
        })
        .collect();

    let panel_h = 30.0 + t.rows.len() as f64 * ROW_H + 10.0;
    let total_h = 34.0 + metric_cols.len() as f64 * panel_h + 6.0;
    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{PANEL_W}\" height=\"{total_h}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n\
         <text x=\"8\" y=\"18\" font-size=\"13\" font-weight=\"bold\">{}</text>\n",
        esc(&t.title)
    );
    for (pi, &c) in metric_cols.iter().enumerate() {
        let top = 34.0 + pi as f64 * panel_h;
        let color = PALETTE[pi % PALETTE.len()];
        let max = t
            .rows
            .iter()
            .filter_map(|r| r.get(c).and_then(|v| numeric(v)))
            .fold(0.0f64, |a, b| a.max(b.abs()))
            .max(f64::MIN_POSITIVE);
        let _ = writeln!(
            svg,
            "<text x=\"8\" y=\"{}\" font-weight=\"bold\" fill=\"{color}\">{}</text>",
            top + 14.0,
            esc(&t.header[c])
        );
        for (ri, row) in t.rows.iter().enumerate() {
            let y = top + 22.0 + ri as f64 * ROW_H;
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
                LABEL_W - 6.0,
                y + 12.0,
                esc(&labels[ri])
            );
            match row.get(c).and_then(|v| numeric(v)) {
                Some(v) => {
                    let w = (v.abs() / max * BAR_MAX_W).max(1.0);
                    let _ = write!(
                        svg,
                        "<rect x=\"{LABEL_W}\" y=\"{}\" width=\"{w:.1}\" height=\"{}\" \
                         fill=\"{color}\" opacity=\"0.85\"/>\n\
                         <text x=\"{}\" y=\"{}\">{}</text>\n",
                        y + 2.0,
                        ROW_H - 6.0,
                        LABEL_W + w + 6.0,
                        y + 12.0,
                        esc(row.get(c).map(|s| s.as_str()).unwrap_or(""))
                    );
                }
                None => {
                    let _ = writeln!(
                        svg,
                        "<text x=\"{LABEL_W}\" y=\"{}\" fill=\"#999\">n/a</text>",
                        y + 12.0
                    );
                }
            }
        }
    }
    svg.push_str("</svg>\n");
    Some(svg)
}

/// Renders every experiment table in a parsed `BENCH_results.json` into
/// `(file_stem, svg_document)` pairs, in experiment order.
///
/// # Errors
///
/// Returns a message when the document has no `experiments` object.
pub fn plot_results(doc: &Json) -> Result<Vec<(String, String)>, String> {
    let Some(Json::Obj(experiments)) = (match doc {
        Json::Obj(m) => m.get("experiments"),
        _ => None,
    }) else {
        return Err("no \"experiments\" object in results file".into());
    };
    let mut out = Vec::new();
    for (name, tables) in experiments {
        let Json::Arr(tables) = tables else { continue };
        for (i, t) in tables.iter().enumerate() {
            let Some(td) = lift_table(t) else { continue };
            let Some(svg) = table_to_svg(&td) else {
                continue;
            };
            let stem = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}_{i}")
            };
            out.push((stem, svg));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::parse_json;

    const SAMPLE: &str = r#"{"generated_unix":1,"experiments":{"demo":[
        {"title":"Demo: kops by mode","header":["mode","kops","p99_us"],
         "rows":[["group","120.5","340"],["per_request","80.1","150"],["async","-","90"]]}
    ]}}"#;

    #[test]
    fn sample_results_produce_one_svg_per_table() {
        let doc = parse_json(SAMPLE).unwrap();
        let plots = plot_results(&doc).unwrap();
        assert_eq!(plots.len(), 1);
        let (stem, svg) = &plots[0];
        assert_eq!(stem, "demo");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // Two metric panels (kops, p99_us), three rows each.
        assert_eq!(svg.matches("font-weight=\"bold\" fill=").count(), 2);
        assert!(svg.contains("group"));
        // The "-" cell renders as n/a instead of a zero-width lie.
        assert!(svg.contains("n/a"));
    }

    #[test]
    fn non_numeric_tables_are_skipped_not_errored() {
        let doc = parse_json(
            r#"{"experiments":{"notes":[
                {"title":"t","header":["a","b"],"rows":[["x","y"]]}
            ]}}"#,
        )
        .unwrap();
        assert!(plot_results(&doc).unwrap().is_empty());
    }

    #[test]
    fn percent_and_signed_cells_count_as_numeric() {
        assert_eq!(numeric("+12.5%"), Some(12.5));
        assert_eq!(numeric("-3.0%"), Some(-3.0));
        assert_eq!(numeric("-"), None);
        assert_eq!(numeric("group"), None);
    }
}
