//! Experiment harness: builders for the three systems under test and one
//! function per paper figure/table.
//!
//! Every experiment here regenerates a figure or in-text measurement from
//! §6 of the paper (see DESIGN.md's per-experiment index). Absolute
//! numbers depend on the host; the *shapes* — who wins, by what factor,
//! where the crossovers fall — are the reproduction targets, recorded in
//! EXPERIMENTS.md.
//!
//! Scale: `ExpParams::scaled` shrinks key counts and op counts uniformly
//! so the whole suite runs in CI time; `--paper` selects the paper's
//! 20 M-key / 8 M-op configuration.

pub mod compare;
pub mod experiments;
pub mod plot;
pub mod systems;

pub use experiments::ExpParams;
