//! The length-prefixed request/response wire protocol.
//!
//! Every message is one **frame**: a 4-byte little-endian payload length
//! followed by that many payload bytes. The first payload byte tags the
//! message (an opcode for requests, a status for responses); the rest is
//! the tag-specific body. All integers are little-endian; keys carry a
//! `u16` length, values a `u32` length.
//!
//! | opcode | request | body |
//! |--------|---------|------|
//! | `0x01` | GET     | `klen:u16, key` |
//! | `0x02` | PUT     | `klen:u16, key, vlen:u32, val` |
//! | `0x03` | DEL     | `klen:u16, key` |
//! | `0x04` | BATCH   | `count:u16, count × (kind:u8, klen:u16, key[, vlen:u32, val])` |
//! | `0x05` | SCAN    | `klen:u16, start, limit:u32` |
//! | `0x06` | STATS   | *(empty)* |
//!
//! | status | response | body |
//! |--------|----------|------|
//! | `0x00` | OK        | *(empty)* |
//! | `0x01` | NOT_FOUND | *(empty)* |
//! | `0x02` | ERROR     | UTF-8 message |
//! | `0x03` | VALUE     | raw value bytes |
//! | `0x04` | COMMITTED | `id:u64` |
//! | `0x05` | ENTRIES   | `count:u32, count × (klen:u16, key, vlen:u32, val)` |
//! | `0x06` | STATS     | UTF-8 JSON object |
//!
//! Responses are **self-describing** (each variant has its own status
//! byte), so a decoded stream round-trips without knowing which request
//! each frame answers — the property the codec tests lean on.

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length. Oversized frames are rejected
/// before any allocation, bounding what one connection can pin.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Everything that can be wrong with the bytes of one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left.
        got: usize,
    },
    /// The frame header announced a payload over [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced payload length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The first payload byte names no request.
    UnknownOpcode(u8),
    /// The first payload byte names no response.
    UnknownStatus(u8),
    /// A structurally invalid body (bad batch-op kind, empty payload,
    /// non-UTF-8 text, ...).
    Malformed(&'static str),
    /// Decoding consumed the message but bytes remain.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: field needs {needed} bytes, {got} left")
            }
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            WireError::UnknownStatus(st) => write!(f, "unknown response status {st:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "frame carries {extra} trailing bytes past the message")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// The key.
        key: Vec<u8>,
    },
    /// Insert or update. Durability depends on the server's commit mode.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        val: Vec<u8>,
    },
    /// Remove a key.
    Del {
        /// The key.
        key: Vec<u8>,
    },
    /// An atomic multi-op batch (commits durably before the reply).
    Batch {
        /// The staged operations, applied atomically.
        ops: Vec<BatchOp>,
    },
    /// Ordered scan of at most `limit` keys ≥ `start`.
    Scan {
        /// First key of the range (inclusive).
        start: Vec<u8>,
        /// Maximum number of entries returned.
        limit: u32,
    },
    /// Server counters as a JSON object.
    Stats,
}

/// One operation inside a [`Request::Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or update `key`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        val: Vec<u8>,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: Vec<u8>,
    },
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded with nothing to return.
    Ok,
    /// The key (GET) or target (DEL) was absent.
    NotFound,
    /// The operation failed; the message says why.
    Error(String),
    /// A GET hit: the value bytes.
    Value(Vec<u8>),
    /// A BATCH commit: the durable batch id.
    Committed(u64),
    /// A SCAN result: `(key, value)` pairs in key order.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// A STATS reply: a JSON object.
    Stats(String),
}

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_BATCH: u8 = 0x04;
const OP_SCAN: u8 = 0x05;
const OP_STATS: u8 = 0x06;

const ST_OK: u8 = 0x00;
const ST_NOT_FOUND: u8 = 0x01;
const ST_ERROR: u8 = 0x02;
const ST_VALUE: u8 = 0x03;
const ST_COMMITTED: u8 = 0x04;
const ST_ENTRIES: u8 = 0x05;
const ST_STATS: u8 = 0x06;

// ====================================================================
// Encoding
// ====================================================================

fn put_key(out: &mut Vec<u8>, key: &[u8]) {
    debug_assert!(key.len() <= u16::MAX as usize);
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
}

fn put_val(out: &mut Vec<u8>, val: &[u8]) {
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(val);
}

/// Appends `req` to `out` as one complete frame (header included).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match req {
        Request::Get { key } => {
            out.push(OP_GET);
            put_key(out, key);
        }
        Request::Put { key, val } => {
            out.push(OP_PUT);
            put_key(out, key);
            put_val(out, val);
        }
        Request::Del { key } => {
            out.push(OP_DEL);
            put_key(out, key);
        }
        Request::Batch { ops } => {
            out.push(OP_BATCH);
            debug_assert!(ops.len() <= u16::MAX as usize);
            out.extend_from_slice(&(ops.len() as u16).to_le_bytes());
            for op in ops {
                match op {
                    BatchOp::Put { key, val } => {
                        out.push(0);
                        put_key(out, key);
                        put_val(out, val);
                    }
                    BatchOp::Del { key } => {
                        out.push(1);
                        put_key(out, key);
                    }
                }
            }
        }
        Request::Scan { start, limit } => {
            out.push(OP_SCAN);
            put_key(out, start);
            out.extend_from_slice(&limit.to_le_bytes());
        }
        Request::Stats => out.push(OP_STATS),
    }
    end_frame(out, at);
}

/// Appends `resp` to `out` as one complete frame (header included).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match resp {
        Response::Ok => out.push(ST_OK),
        Response::NotFound => out.push(ST_NOT_FOUND),
        Response::Error(msg) => {
            out.push(ST_ERROR);
            out.extend_from_slice(msg.as_bytes());
        }
        Response::Value(val) => {
            out.push(ST_VALUE);
            out.extend_from_slice(val);
        }
        Response::Committed(id) => {
            out.push(ST_COMMITTED);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Response::Entries(entries) => {
            out.push(ST_ENTRIES);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                put_key(out, k);
                put_val(out, v);
            }
        }
        Response::Stats(json) => {
            out.push(ST_STATS);
            out.extend_from_slice(json.as_bytes());
        }
    }
    end_frame(out, at);
}

/// Reserves a frame header; returns the payload start for [`end_frame`].
fn begin_frame(out: &mut Vec<u8>) -> usize {
    out.extend_from_slice(&[0u8; 4]);
    out.len()
}

/// Backfills the frame header with the payload length.
fn end_frame(out: &mut [u8], payload_start: usize) {
    let len = out.len() - payload_start;
    debug_assert!(len <= MAX_FRAME_BYTES);
    out[payload_start - 4..payload_start].copy_from_slice(&(len as u32).to_le_bytes());
}

// ====================================================================
// Decoding
// ====================================================================

/// A zero-copy cursor over one frame's payload.
struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.buf.len() - self.at;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn val(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    fn finish(self) -> Result<(), WireError> {
        let extra = self.buf.len() - self.at;
        if extra != 0 {
            return Err(WireError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn utf8(bytes: &[u8]) -> Result<String, WireError> {
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 text body"))
}

/// Decodes one request from a frame payload (header already stripped).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cur {
        buf: payload,
        at: 0,
    };
    if payload.is_empty() {
        return Err(WireError::Malformed("empty payload"));
    }
    let req = match c.u8()? {
        OP_GET => Request::Get { key: c.key()? },
        OP_PUT => Request::Put {
            key: c.key()?,
            val: c.val()?,
        },
        OP_DEL => Request::Del { key: c.key()? },
        OP_BATCH => {
            let count = c.u16()? as usize;
            let mut ops = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                ops.push(match c.u8()? {
                    0 => BatchOp::Put {
                        key: c.key()?,
                        val: c.val()?,
                    },
                    1 => BatchOp::Del { key: c.key()? },
                    _ => return Err(WireError::Malformed("unknown batch-op kind")),
                });
            }
            Request::Batch { ops }
        }
        OP_SCAN => Request::Scan {
            start: c.key()?,
            limit: c.u32()?,
        },
        OP_STATS => Request::Stats,
        op => return Err(WireError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes one response from a frame payload (header already stripped).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cur {
        buf: payload,
        at: 0,
    };
    if payload.is_empty() {
        return Err(WireError::Malformed("empty payload"));
    }
    let resp = match c.u8()? {
        ST_OK => Response::Ok,
        ST_NOT_FOUND => Response::NotFound,
        ST_ERROR => Response::Error(utf8(c.rest())?),
        ST_VALUE => Response::Value(c.rest().to_vec()),
        ST_COMMITTED => Response::Committed(c.u64()?),
        ST_ENTRIES => {
            let count = c.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let k = c.key()?;
                let v = c.val()?;
                entries.push((k, v));
            }
            Response::Entries(entries)
        }
        ST_STATS => Response::Stats(utf8(c.rest())?),
        st => return Err(WireError::UnknownStatus(st)),
    };
    c.finish()?;
    Ok(resp)
}

// ====================================================================
// Framing over a stream
// ====================================================================

/// Reads one frame payload from `r`. Returns `Ok(None)` on a clean EOF
/// **between** frames; EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error, and an oversized header surfaces as
/// [`io::ErrorKind::InvalidData`] wrapping [`WireError::Oversized`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    let mut at = 0;
    while at < 4 {
        match r.read(&mut hdr[at..])? {
            0 if at == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    WireError::Truncated { needed: 4, got: at },
                ))
            }
            n => at += n,
        }
    }
    let len = u32::from_le_bytes(hdr) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized {
                len,
                max: MAX_FRAME_BYTES,
            },
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes `payload` to `w` as one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_roundtrip(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 4, "header must match payload");
        assert_eq!(decode_request(&buf[4..]).unwrap(), req);
    }

    fn resp_roundtrip(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(decode_response(&buf[4..]).unwrap(), resp);
    }

    #[test]
    fn every_request_shape_roundtrips() {
        req_roundtrip(Request::Get { key: b"k".to_vec() });
        req_roundtrip(Request::Get { key: Vec::new() });
        req_roundtrip(Request::Put {
            key: b"key".to_vec(),
            val: vec![0u8; 3000],
        });
        req_roundtrip(Request::Del {
            key: b"gone".to_vec(),
        });
        req_roundtrip(Request::Batch { ops: Vec::new() });
        req_roundtrip(Request::Batch {
            ops: vec![
                BatchOp::Put {
                    key: b"a".to_vec(),
                    val: b"1".to_vec(),
                },
                BatchOp::Del { key: b"b".to_vec() },
            ],
        });
        req_roundtrip(Request::Scan {
            start: b"m".to_vec(),
            limit: 77,
        });
        req_roundtrip(Request::Stats);
    }

    #[test]
    fn every_response_shape_roundtrips() {
        resp_roundtrip(Response::Ok);
        resp_roundtrip(Response::NotFound);
        resp_roundtrip(Response::Error("bad".into()));
        resp_roundtrip(Response::Value(vec![9u8; 100]));
        resp_roundtrip(Response::Value(Vec::new()));
        resp_roundtrip(Response::Committed(u64::MAX));
        resp_roundtrip(Response::Entries(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), Vec::new()),
        ]));
        resp_roundtrip(Response::Stats("{\"x\":1}".into()));
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Put {
                key: b"key".to_vec(),
                val: b"value".to_vec(),
            },
            &mut buf,
        );
        let payload = &buf[4..];
        for cut in 0..payload.len() {
            let err = decode_request(&payload[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Malformed(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::Stats, &mut buf);
        buf.push(0xAA);
        assert_eq!(
            decode_request(&buf[4..]),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_tags_are_typed() {
        assert_eq!(decode_request(&[0xEE]), Err(WireError::UnknownOpcode(0xEE)));
        assert_eq!(
            decode_response(&[0xEE]),
            Err(WireError::UnknownStatus(0xEE))
        );
        assert_eq!(
            decode_request(&[OP_BATCH, 1, 0, 7]),
            Err(WireError::Malformed("unknown batch-op kind"))
        );
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut hdr = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        hdr.extend_from_slice(&[0u8; 8]);
        let err = read_frame(&mut &hdr[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn clean_eof_is_none_but_midframe_eof_is_an_error() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        let partial = [5u8, 0, 0, 0, 1, 2]; // promises 5 payload bytes, has 2
        let err = read_frame(&mut &partial[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let cut_header = [5u8, 0]; // EOF inside the length prefix itself
        let err = read_frame(&mut &cut_header[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
