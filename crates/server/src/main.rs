//! `incll-server` — serve an InCLL store over TCP.
//!
//! ```text
//! incll-server [--addr HOST:PORT] [--mem MIB] [--shards N] [--threads N]
//!              [--workers N] [--commit per-request|group|async]
//!              [--window-us U] [--group-max-ops N] [--group-max-bytes B]
//!              [--pipeline-depth N]
//! ```
//!
//! The store lives in an in-memory persistent-arena emulation; the
//! binary exists to put the full network stack (framing, pipelining,
//! group commit) under real sockets and real load generators.

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use incll::{Options, Store};
use incll_pmem::PArena;
use incll_server::{CommitMode, GroupConfig, Server, ServerConfig};

struct Args {
    addr: String,
    mem_mib: usize,
    shards: usize,
    threads: usize,
    workers: usize,
    commit: CommitMode,
    pipeline_depth: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7700".into(),
        mem_mib: 256,
        shards: 4,
        threads: 8,
        workers: 4,
        commit: CommitMode::Group(GroupConfig::default()),
        pipeline_depth: ServerConfig::default().pipeline_depth,
    };
    let mut group = GroupConfig::default();
    let mut commit_kind = "group".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--mem" => args.mem_mib = num(&val("--mem")?)?,
            "--shards" => args.shards = num(&val("--shards")?)?,
            "--threads" => args.threads = num(&val("--threads")?)?,
            "--workers" => args.workers = num(&val("--workers")?)?,
            "--commit" => commit_kind = val("--commit")?,
            "--window-us" => {
                group.window = Duration::from_micros(num(&val("--window-us")?)? as u64)
            }
            "--group-max-ops" => group.max_ops = num(&val("--group-max-ops")?)?,
            "--group-max-bytes" => group.max_bytes = num(&val("--group-max-bytes")?)?,
            "--pipeline-depth" => args.pipeline_depth = num(&val("--pipeline-depth")?)?,
            "--help" | "-h" => {
                return Err("usage: incll-server [--addr HOST:PORT] [--mem MIB] \
                            [--shards N] [--threads N] [--workers N] \
                            [--commit per-request|group|async] [--window-us U] \
                            [--group-max-ops N] [--group-max-bytes B] \
                            [--pipeline-depth N]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    args.commit = match commit_kind.as_str() {
        "per-request" => CommitMode::PerRequest,
        "group" => CommitMode::Group(group),
        "async" => CommitMode::Async,
        other => return Err(format!("unknown commit mode {other}")),
    };
    Ok(args)
}

fn num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let arena = match PArena::builder().capacity_bytes(args.mem_mib << 20).build() {
        Ok(a) => Box::leak(Box::new(a)),
        Err(e) => {
            eprintln!("arena: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Workers + group committer + the main thread all hold sessions.
    let threads = args.threads.max(args.workers + 2);
    let options = Options::new().threads(threads).shards(args.shards);
    let (store, report) = match Store::open(arena, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("store: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !report.created {
        eprintln!("recovered: {report:?}");
    }
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServerConfig {
        workers: args.workers,
        commit: args.commit,
        session_timeout: Duration::from_secs(5),
        pipeline_depth: args.pipeline_depth,
    };
    let server = match Server::start(store, listener, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("incll-server listening on {}", server.local_addr());
    // Serve until killed; the driver scripts stop us with a signal.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
