//! The concurrent TCP front-end: M connections on N worker sessions.
//!
//! ```text
//!  conn 1 ──reader──┐                       ┌─ worker 1 (Session) ─┐
//!  conn 2 ──reader──┼──▶ shared job queue ──┼─ worker 2 (Session) ─┼─▶ per-conn
//!    ...            │    (seq-stamped)      │        ...           │   reorder
//!  conn M ──reader──┘                       └─ worker N (Session) ─┘   buffers
//!                                                   │
//!                                     puts/dels ────┴──▶ group committer
//! ```
//!
//! Each connection gets a cheap reader thread that frames requests and
//! stamps them with a per-connection sequence number; the heavyweight
//! resource — a [`Session`] from the store's bounded pool — is held by
//! the N workers, so M ≫ N connections share N sessions. Workers finish
//! requests in whatever order the queue and the group committer dictate;
//! the per-connection **reorder buffer** holds completed frames until
//! all earlier sequence numbers have flushed, so each client observes
//! strict request order while later requests execute under earlier ones
//! still in flight (pipelining).

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use incll::{Error, Session, Store};

use crate::group::{GroupCommitter, GroupConfig, GroupOp};
use crate::protocol::{
    decode_request, encode_response, read_frame, BatchOp, Request, Response, WireError,
};

/// How (and when) a PUT or DEL becomes durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitMode {
    /// Every write commits durably before its response — one
    /// intent/commit protocol (and its fences) per request. The
    /// baseline the group committer is measured against.
    PerRequest,
    /// Writes coalesce across connections into fence-shared groups;
    /// the response is sent only after the write's group is durable.
    Group(GroupConfig),
    /// Writes apply in place and are acknowledged immediately; they
    /// become durable only at the next epoch boundary. Acked writes
    /// **can vanish** in a crash — the fast, weak mode.
    Async,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= sessions drawn from the store's pool).
    pub workers: usize,
    /// Durability discipline for PUT and DEL (BATCH is always durable).
    pub commit: CommitMode,
    /// How long `Server::start` waits for each worker's session before
    /// giving up with [`Error::SessionTimeout`].
    pub session_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            commit: CommitMode::Group(GroupConfig::default()),
            session_timeout: Duration::from_secs(5),
        }
    }
}

/// Atomic request counters, surfaced by the STATS opcode.
#[derive(Default)]
struct Counters {
    conns: AtomicU64,
    requests: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    dels: AtomicU64,
    batches: AtomicU64,
    scans: AtomicU64,
    wire_errors: AtomicU64,
}

/// One queued request, stamped with its connection and order.
struct Job {
    conn: Arc<Conn>,
    seq: u64,
    req: Result<Request, WireError>,
}

/// The response side of one connection: frames complete out of order
/// (workers + group committer race) but must leave in `seq` order.
struct OutBuf {
    sock: TcpStream,
    /// Next sequence number the socket owes the client.
    next: u64,
    /// Completed frames waiting on earlier ones.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Set once a write fails; later frames are dropped silently.
    broken: bool,
}

struct Conn {
    out: Mutex<OutBuf>,
}

impl Conn {
    /// Hands `seq`'s encoded frame to the reorder buffer, flushing the
    /// in-order prefix to the socket.
    fn complete(&self, seq: u64, frame: Vec<u8>) {
        let mut out = self.out.lock().unwrap();
        out.ready.insert(seq, frame);
        while let Some(frame) = {
            let next = out.next;
            out.ready.remove(&next)
        } {
            out.next += 1;
            if out.broken {
                continue;
            }
            if out.sock.write_all(&frame).is_err() {
                // The client went away; keep draining so seqs stay
                // contiguous and memory doesn't pool in `ready`.
                out.broken = true;
            }
        }
        if !out.broken && out.ready.is_empty() {
            let _ = out.sock.flush();
        }
    }
}

struct Shared {
    store: Store,
    commit: CommitMode,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    counters: Counters,
    group: Option<GroupCommitter>,
}

/// A running server; dropping it (or calling [`Server::shutdown`])
/// stops every thread and flushes the group committer.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds worker sessions and starts serving `listener`.
    ///
    /// Sessions for all workers (plus one for the group committer) are
    /// acquired up front with [`Store::session_blocking`], so a pool
    /// too small for `cfg.workers` fails here with
    /// [`Error::SessionTimeout`] instead of wedging a worker later.
    pub fn start(store: Store, listener: TcpListener, cfg: ServerConfig) -> Result<Server, Error> {
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        listener
            .set_nonblocking(true)
            .expect("set_nonblocking on listener");

        // Reserve every session before any thread spawns.
        let mut sessions = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            sessions.push(store.session_blocking(cfg.session_timeout)?);
        }
        let group = match &cfg.commit {
            CommitMode::Group(gc) => {
                let sess = store.session_blocking(cfg.session_timeout)?;
                Some(GroupCommitter::start(store.clone(), sess, gc.clone()))
            }
            _ => None,
        };

        let shared = Arc::new(Shared {
            store,
            commit: cfg.commit.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            group,
        });

        let workers = sessions
            .into_iter()
            .enumerate()
            .map(|(i, sess)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("incll-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &sess))
                    .expect("spawn worker")
            })
            .collect();

        let readers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("incll-acceptor".into())
                .spawn(move || accept_loop(&shared, &listener, &readers))
                .expect("spawn acceptor")
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            readers,
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(groups_committed, ops_grouped)` from the group committer, or
    /// zeros when running in a non-grouping commit mode.
    pub fn group_stats(&self) -> (u64, u64) {
        self.shared.group.as_ref().map_or((0, 0), |g| g.stats())
    }

    /// Stops accepting, drains the group committer, joins every thread.
    /// In-flight requests complete; their responses still flush.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in std::mem::take(&mut *self.readers.lock().unwrap()) {
            let _ = t.join();
        }
        // Readers are gone, so no new jobs: wake workers to drain out.
        self.shared.queue_cv.notify_all();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Workers are gone; flushing the committer completes the last
        // grouped acks before the sockets drop.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, readers: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _)) => {
                shared.counters.conns.fetch_add(1, Ordering::Relaxed);
                let _ = sock.set_nodelay(true);
                // A finite read timeout lets the reader poll `stop`.
                let _ = sock.set_read_timeout(Some(Duration::from_millis(50)));
                let write_half = sock.try_clone().expect("clone socket");
                let conn = Arc::new(Conn {
                    out: Mutex::new(OutBuf {
                        sock: write_half,
                        next: 0,
                        ready: BTreeMap::new(),
                        broken: false,
                    }),
                });
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("incll-reader".into())
                    .spawn(move || reader_loop(&shared, sock, &conn))
                    .expect("spawn reader");
                readers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Retries the socket's read timeouts so `read_frame` never observes a
/// mid-frame `WouldBlock` (which would drop partially read bytes and
/// desync the stream). Each timeout tick polls the stop flag; stopping
/// surfaces as `ConnectionAborted` — a kind `read_exact` won't retry.
struct PollRead<'a> {
    sock: &'a mut TcpStream,
    stop: &'a AtomicBool,
}

impl io::Read for PollRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match io::Read::read(self.sock, buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server stopping",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

/// Frames one connection's requests into seq-stamped jobs.
fn reader_loop(shared: &Arc<Shared>, mut sock: TcpStream, conn: &Arc<Conn>) {
    let mut seq = 0u64;
    loop {
        let mut poll = PollRead {
            sock: &mut sock,
            stop: &shared.stop,
        };
        let payload = match read_frame(&mut poll) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close between frames
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized header: we cannot resynchronise the stream,
                // so answer in order and hang up.
                enqueue(
                    shared,
                    conn,
                    seq,
                    Err(WireError::Oversized {
                        len: 0,
                        max: crate::protocol::MAX_FRAME_BYTES,
                    }),
                );
                return;
            }
            Err(_) => return, // peer reset / mid-frame EOF
        };
        // Frame intact: a decode error is answerable without desync.
        enqueue(shared, conn, seq, decode_request(&payload));
        seq += 1;
    }
}

fn enqueue(shared: &Arc<Shared>, conn: &Arc<Conn>, seq: u64, req: Result<Request, WireError>) {
    let job = Job {
        conn: Arc::clone(conn),
        seq,
        req,
    };
    shared.queue.lock().unwrap().push_back(job);
    shared.queue_cv.notify_one();
}

fn worker_loop(shared: &Arc<Shared>, sess: &Session) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap();
            }
        };
        handle_job(shared, sess, job);
    }
}

fn frame_of(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_response(resp, &mut buf);
    buf
}

fn handle_job(shared: &Arc<Shared>, sess: &Session, job: Job) {
    let c = &shared.counters;
    c.requests.fetch_add(1, Ordering::Relaxed);
    let req = match job.req {
        Ok(req) => req,
        Err(e) => {
            c.wire_errors.fetch_add(1, Ordering::Relaxed);
            job.conn
                .complete(job.seq, frame_of(&Response::Error(e.to_string())));
            return;
        }
    };
    let store = &shared.store;
    let resp = match req {
        Request::Get { key } => {
            c.gets.fetch_add(1, Ordering::Relaxed);
            match store.get(sess, &key) {
                Some(val) => Response::Value(val),
                None => Response::NotFound,
            }
        }
        Request::Put { key, val } => {
            c.puts.fetch_add(1, Ordering::Relaxed);
            match &shared.commit {
                CommitMode::Async => match store.put(sess, &key, &val) {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
                CommitMode::PerRequest => {
                    let mut b = sess.batch();
                    match b
                        .put(&key, &val)
                        .and_then(|()| b.commit_durable().map(|_| ()))
                    {
                        Ok(()) => Response::Ok,
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                CommitMode::Group(_) => {
                    submit_grouped(shared, job.conn, job.seq, GroupOp::Put { key, val });
                    return; // the committer completes this seq
                }
            }
        }
        Request::Del { key } => {
            c.dels.fetch_add(1, Ordering::Relaxed);
            match &shared.commit {
                CommitMode::Async => {
                    store.remove(sess, &key);
                    Response::Ok
                }
                CommitMode::PerRequest => {
                    let mut b = sess.batch();
                    match b.delete(&key).and_then(|()| b.commit_durable().map(|_| ())) {
                        Ok(()) => Response::Ok,
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                CommitMode::Group(_) => {
                    submit_grouped(shared, job.conn, job.seq, GroupOp::Del { key });
                    return;
                }
            }
        }
        Request::Batch { ops } => {
            c.batches.fetch_add(1, Ordering::Relaxed);
            let mut b = sess.batch();
            let staged = ops.iter().try_for_each(|op| match op {
                BatchOp::Put { key, val } => b.put(key, val),
                BatchOp::Del { key } => b.delete(key),
            });
            match staged.and_then(|()| b.commit_durable()) {
                Ok(id) => Response::Committed(id),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Scan { start, limit } => {
            c.scans.fetch_add(1, Ordering::Relaxed);
            let mut entries = Vec::new();
            store.scan(sess, &start, limit as usize, &mut |k, v| {
                entries.push((k.to_vec(), v.to_vec()));
            });
            Response::Entries(entries)
        }
        Request::Stats => Response::Stats(stats_json(shared)),
    };
    job.conn.complete(job.seq, frame_of(&resp));
}

/// Routes a write through the group committer; the completion runs on
/// the committer thread once the write's group is durable.
fn submit_grouped(shared: &Arc<Shared>, conn: Arc<Conn>, seq: u64, op: GroupOp) {
    let group = shared.group.as_ref().expect("Group mode has a committer");
    group.submit(
        op,
        Box::new(move |outcome| {
            let resp = match outcome {
                Ok(_) => Response::Ok,
                Err(msg) => Response::Error(msg),
            };
            conn.complete(seq, frame_of(&resp));
        }),
    );
}

/// Hand-rolled flat JSON object — the protocol's one schemaless reply.
fn stats_json(shared: &Shared) -> String {
    let c = &shared.counters;
    let (groups, grouped_ops) = shared.group.as_ref().map_or((0, 0), |g| g.stats());
    let pm = shared.store.arena().stats().snapshot();
    let mode = match &shared.commit {
        CommitMode::PerRequest => "per_request",
        CommitMode::Group(_) => "group",
        CommitMode::Async => "async",
    };
    format!(
        concat!(
            "{{\"commit_mode\":\"{}\",\"connections\":{},\"requests\":{},",
            "\"gets\":{},\"puts\":{},\"dels\":{},\"batches\":{},\"scans\":{},",
            "\"wire_errors\":{},\"groups_committed\":{},\"ops_grouped\":{},",
            "\"sfences\":{},\"clwbs\":{},\"shards\":{}}}"
        ),
        mode,
        c.conns.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.gets.load(Ordering::Relaxed),
        c.puts.load(Ordering::Relaxed),
        c.dels.load(Ordering::Relaxed),
        c.batches.load(Ordering::Relaxed),
        c.scans.load(Ordering::Relaxed),
        c.wire_errors.load(Ordering::Relaxed),
        groups,
        grouped_ops,
        pm.sfence,
        pm.clwb,
        shared.store.shard_count(),
    )
}
