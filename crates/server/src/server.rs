//! The concurrent TCP front-end: M connections on N worker sessions.
//!
//! ```text
//!  conn 1 ──reader──▶ queue 1 ──▶ worker 1 (Session) ──┐        ┌─▶ writer 1 ──▶ conn 1
//!  conn 2 ──reader──▶ queue 2 ──▶ worker 2 (Session) ──┤ reorder├─▶ writer 2 ──▶ conn 2
//!    ...                ...              ...           │ buffers│       ...
//!  conn M ──reader──▶ queue N ──▶ worker N (Session) ──┘        └─▶ writer M ──▶ conn M
//!                                        │
//!                          puts/dels/batches ──▶ group committer
//! ```
//!
//! Each connection gets a cheap reader thread that frames requests and
//! stamps them with a per-connection sequence number; the heavyweight
//! resource — a [`Session`] from the store's bounded pool — is held by
//! the N workers, so M ≫ N connections share N sessions. A connection is
//! **pinned** to one worker (round-robin at accept): its requests
//! execute on that worker in sequence order, which is what makes writes
//! from one pipeline reach the store — and, through the single committer
//! thread, durability — in request order. Requests still *complete* out
//! of order (grouped acks arrive on the committer thread); the
//! per-connection **reorder buffer** holds completed frames until all
//! earlier sequence numbers are ready, and a per-connection **writer
//! thread** drains the in-order prefix to the socket. Workers and the
//! committer never touch a socket, so a client that stops reading stalls
//! only its own writer, never the commit path.
//!
//! Backpressure: the reader pauses once
//! [`ServerConfig::pipeline_depth`] requests are in flight (read but
//! not yet written back), so one connection can pin at most
//! `pipeline_depth` request + response frames — the 1&nbsp;MiB frame cap
//! then bounds bytes, not just one frame.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use incll::{Error, Session, Store};

use crate::group::{GroupCommitter, GroupConfig, GroupOp};
use crate::protocol::{
    decode_request, encode_response, read_frame, BatchOp, Request, Response, WireError,
};

/// How long blocked socket reads and writes wait before re-checking the
/// stop flag.
const SOCKET_POLL: Duration = Duration::from_millis(50);

/// The writer thread coalesces contiguous ready frames into one socket
/// write up to this many bytes.
const WRITER_COALESCE_BYTES: usize = 64 << 10;

/// How (and when) a PUT or DEL becomes durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitMode {
    /// Every write commits durably before its response — one
    /// intent/commit protocol (and its fences) per request. The
    /// baseline the group committer is measured against.
    PerRequest,
    /// Writes coalesce across connections into fence-shared groups;
    /// the response is sent only after the write's group is durable.
    /// `BATCH` requests ride the same committer queue (as their own
    /// atomic commit), keeping each connection's writes in order.
    Group(GroupConfig),
    /// Writes apply in place and are acknowledged immediately; they
    /// become durable only at the next epoch boundary. Acked writes
    /// **can vanish** in a crash — the fast, weak mode.
    Async,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= sessions drawn from the store's pool).
    pub workers: usize,
    /// Durability discipline for PUT and DEL (BATCH is always durable).
    pub commit: CommitMode,
    /// How long `Server::start` waits for each worker's session before
    /// giving up with [`Error::SessionTimeout`].
    pub session_timeout: Duration,
    /// Most requests one connection may have in flight (read off the
    /// socket but not yet answered on the wire). The reader pauses at
    /// the bound, bounding the memory a connection can pin.
    pub pipeline_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            commit: CommitMode::Group(GroupConfig::default()),
            session_timeout: Duration::from_secs(5),
            pipeline_depth: 256,
        }
    }
}

/// Atomic request counters, surfaced by the STATS opcode.
#[derive(Default)]
struct Counters {
    conns: AtomicU64,
    requests: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    dels: AtomicU64,
    batches: AtomicU64,
    scans: AtomicU64,
    wire_errors: AtomicU64,
}

/// One queued request, stamped with its connection and order.
struct Job {
    conn: Arc<Conn>,
    seq: u64,
    req: Result<Request, WireError>,
}

/// The response side of one connection: frames complete out of order
/// (the pinned worker and the group committer interleave) but must
/// leave in `seq` order.
struct OutBuf {
    /// Next sequence number the socket owes the client.
    next: u64,
    /// Completed frames waiting on earlier ones.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Set by the writer once the socket is dead; later frames drop.
    broken: bool,
    /// Set when the reader exits: how many requests it issued in all.
    /// The writer exits once `next` catches up.
    total: Option<u64>,
}

struct Conn {
    /// The worker this connection is pinned to. All its requests
    /// execute there in sequence order — the write-ordering guarantee.
    worker: usize,
    /// Requests issued so far; mirrors the reader's local counter so a
    /// drop guard can publish `total` even if the reader panics.
    issued: AtomicU64,
    out: Mutex<OutBuf>,
    /// Wakes the writer (frame completed / reader done) and the reader
    /// (backpressure slot freed / socket broken).
    cv: Condvar,
}

impl Conn {
    /// Hands `seq`'s encoded frame to the reorder buffer; the writer
    /// thread flushes the in-order prefix. Never blocks on the socket,
    /// so this is safe to call from the group-commit thread.
    fn complete(&self, seq: u64, frame: Vec<u8>) {
        let mut out = self.out.lock().unwrap();
        if out.broken {
            return; // client gone; the writer has already exited
        }
        out.ready.insert(seq, frame);
        drop(out);
        self.cv.notify_all();
    }
}

/// Publishes the reader's final request count when the reader thread
/// ends — even by panic — so the connection's writer can terminate.
struct ReaderDone<'a>(&'a Conn);

impl Drop for ReaderDone<'_> {
    fn drop(&mut self) {
        let issued = self.0.issued.load(Ordering::SeqCst);
        self.0.out.lock().unwrap().total = Some(issued);
        self.0.cv.notify_all();
    }
}

/// One worker's private job queue. Connections are pinned to a queue,
/// so a connection's jobs are handled by one thread, in order.
struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

struct Shared {
    store: Store,
    commit: CommitMode,
    queues: Vec<WorkerQueue>,
    pipeline_depth: u64,
    stop: AtomicBool,
    /// Set (after `stop`) once every reader has been joined: no more
    /// jobs can arrive, so an idle worker may exit.
    readers_done: AtomicBool,
    counters: Counters,
    group: Option<GroupCommitter>,
}

/// A running server; dropping it (or calling [`Server::shutdown`])
/// stops every thread and flushes the group committer.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    writers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds worker sessions and starts serving `listener`.
    ///
    /// Sessions for all workers (plus one for the group committer) are
    /// acquired up front with [`Store::session_blocking`], so a pool
    /// too small for `cfg.workers` fails here with
    /// [`Error::SessionTimeout`] instead of wedging a worker later.
    pub fn start(store: Store, listener: TcpListener, cfg: ServerConfig) -> Result<Server, Error> {
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        listener
            .set_nonblocking(true)
            .expect("set_nonblocking on listener");

        // Reserve every session before any thread spawns.
        let mut sessions = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            sessions.push(store.session_blocking(cfg.session_timeout)?);
        }
        let group = match &cfg.commit {
            CommitMode::Group(gc) => {
                let sess = store.session_blocking(cfg.session_timeout)?;
                Some(
                    GroupCommitter::start(store.clone(), sess, gc.clone())
                        .map_err(|e| Error::Internal(format!("spawn group-commit thread: {e}")))?,
                )
            }
            _ => None,
        };

        let shared = Arc::new(Shared {
            store,
            commit: cfg.commit.clone(),
            queues: (0..cfg.workers.max(1))
                .map(|_| WorkerQueue {
                    jobs: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            pipeline_depth: cfg.pipeline_depth.max(1) as u64,
            stop: AtomicBool::new(false),
            readers_done: AtomicBool::new(false),
            counters: Counters::default(),
            group,
        });

        // Unwinds a partial start: stop flag up, wake and join whatever
        // already runs, flush the committer — then surface the spawn
        // failure as a typed error instead of panicking the caller.
        let unwind = |workers: Vec<JoinHandle<()>>, what: &str, e: std::io::Error| {
            shared.stop.store(true, Ordering::SeqCst);
            shared.readers_done.store(true, Ordering::SeqCst);
            for q in &shared.queues {
                q.cv.notify_all();
            }
            for t in workers {
                let _ = t.join();
            }
            if let Some(g) = &shared.group {
                g.shutdown();
            }
            Error::Internal(format!("spawn {what} thread: {e}"))
        };

        let mut workers = Vec::with_capacity(sessions.len());
        for (i, sess) in sessions.into_iter().enumerate() {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("incll-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared, i, &sess))
            {
                Ok(t) => workers.push(t),
                Err(e) => return Err(unwind(workers, "worker", e)),
            }
        }

        let readers = Arc::new(Mutex::new(Vec::new()));
        let writers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let acceptor_shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let writers = Arc::clone(&writers);
            match std::thread::Builder::new()
                .name("incll-acceptor".into())
                .spawn(move || accept_loop(&acceptor_shared, &listener, &readers, &writers))
            {
                Ok(t) => t,
                Err(e) => return Err(unwind(workers, "acceptor", e)),
            }
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            readers,
            writers,
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(groups_committed, ops_grouped)` from the group committer, or
    /// zeros when running in a non-grouping commit mode.
    pub fn group_stats(&self) -> (u64, u64) {
        self.shared.group.as_ref().map_or((0, 0), |g| g.stats())
    }

    /// Stops accepting, drains the group committer, joins every thread.
    /// In-flight requests complete; their responses still flush (unless
    /// the client has stopped reading, in which case its writer gives
    /// up at the next blocked-write poll).
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in std::mem::take(&mut *self.readers.lock().unwrap()) {
            let _ = t.join();
        }
        // Readers are gone, so no new jobs can arrive: let idle workers
        // exit, and let busy ones drain what is already queued.
        self.shared.readers_done.store(true, Ordering::SeqCst);
        for q in &self.shared.queues {
            q.cv.notify_all();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Workers are gone; flushing the committer completes the last
        // grouped acks, after which each writer reaches its total.
        if let Some(g) = &self.shared.group {
            g.shutdown();
        }
        for t in std::mem::take(&mut *self.writers.lock().unwrap()) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Joins whichever of `handles` have already finished, keeping the
/// rest — called on each accept so a long-lived server does not
/// accumulate one dead JoinHandle per connection ever served.
fn reap_finished(handles: &Mutex<Vec<JoinHandle<()>>>) {
    let finished: Vec<_> = {
        let mut hs = handles.lock().unwrap();
        let mut live = Vec::with_capacity(hs.len());
        let mut finished = Vec::new();
        for h in hs.drain(..) {
            if h.is_finished() {
                finished.push(h);
            } else {
                live.push(h);
            }
        }
        *hs = live;
        finished
    };
    for h in finished {
        let _ = h.join();
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    readers: &Mutex<Vec<JoinHandle<()>>>,
    writers: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut next_worker = 0usize;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _)) => {
                reap_finished(readers);
                reap_finished(writers);
                // Under fd exhaustion the clone fails; shed this
                // connection and keep accepting rather than dying.
                let write_half = match sock.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                shared.counters.conns.fetch_add(1, Ordering::Relaxed);
                let _ = sock.set_nodelay(true);
                // Finite timeouts let both halves poll `stop`.
                let _ = sock.set_read_timeout(Some(SOCKET_POLL));
                let _ = write_half.set_write_timeout(Some(SOCKET_POLL));
                let conn = Arc::new(Conn {
                    worker: next_worker % shared.queues.len(),
                    issued: AtomicU64::new(0),
                    out: Mutex::new(OutBuf {
                        next: 0,
                        ready: BTreeMap::new(),
                        broken: false,
                        total: None,
                    }),
                    cv: Condvar::new(),
                });
                next_worker = next_worker.wrapping_add(1);
                let writer = {
                    let shared = Arc::clone(shared);
                    let conn = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name("incll-writer".into())
                        .spawn(move || writer_loop(&conn, write_half, &shared.stop))
                };
                let Ok(writer) = writer else { continue };
                writers.lock().unwrap().push(writer);
                let reader = {
                    let shared = Arc::clone(shared);
                    let conn = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name("incll-reader".into())
                        .spawn(move || {
                            let _done = ReaderDone(&conn);
                            reader_loop(&shared, sock, &conn);
                        })
                };
                match reader {
                    Ok(r) => readers.lock().unwrap().push(r),
                    Err(_) => {
                        // No reader ever runs: report zero requests so
                        // the already-spawned writer can exit.
                        conn.out.lock().unwrap().total = Some(0);
                        conn.cv.notify_all();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Retries the socket's read timeouts so `read_frame` never observes a
/// mid-frame `WouldBlock` (which would drop partially read bytes and
/// desync the stream). Each timeout tick polls the stop flag; stopping
/// surfaces as `ConnectionAborted` — a kind `read_exact` won't retry.
struct PollRead<'a> {
    sock: &'a mut TcpStream,
    stop: &'a AtomicBool,
}

impl io::Read for PollRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match io::Read::read(self.sock, buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server stopping",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

/// Frames one connection's requests into seq-stamped jobs.
fn reader_loop(shared: &Arc<Shared>, mut sock: TcpStream, conn: &Arc<Conn>) {
    let mut seq = 0u64;
    loop {
        if !admit(shared, conn, seq) {
            return; // backpressure met a dead socket or a stopping server
        }
        let mut poll = PollRead {
            sock: &mut sock,
            stop: &shared.stop,
        };
        let payload = match read_frame(&mut poll) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close between frames
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized header: we cannot resynchronise the stream,
                // so answer in order and hang up.
                enqueue(
                    shared,
                    conn,
                    seq,
                    Err(WireError::Oversized {
                        len: 0,
                        max: crate::protocol::MAX_FRAME_BYTES,
                    }),
                );
                return;
            }
            Err(_) => return, // peer reset / mid-frame EOF
        };
        // Frame intact: a decode error is answerable without desync.
        enqueue(shared, conn, seq, decode_request(&payload));
        seq += 1;
    }
}

/// Blocks until the connection is below its pipeline-depth bound.
/// Returns `false` when reading should stop instead (socket broken, or
/// the server is stopping while the bound is still met).
fn admit(shared: &Shared, conn: &Conn, issued: u64) -> bool {
    let mut out = conn.out.lock().unwrap();
    loop {
        if out.broken {
            return false;
        }
        if issued - out.next < shared.pipeline_depth {
            return true;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let (guard, _) = conn.cv.wait_timeout(out, SOCKET_POLL).unwrap();
        out = guard;
    }
}

fn enqueue(shared: &Arc<Shared>, conn: &Arc<Conn>, seq: u64, req: Result<Request, WireError>) {
    let q = &shared.queues[conn.worker];
    let job = Job {
        conn: Arc::clone(conn),
        seq,
        req,
    };
    conn.issued.store(seq + 1, Ordering::SeqCst);
    q.jobs.lock().unwrap().push_back(job);
    q.cv.notify_one();
}

/// Drains the connection's in-order response prefix to the socket.
/// The only thread that writes to (or errors on) this socket.
fn writer_loop(conn: &Conn, mut sock: TcpStream, stop: &AtomicBool) {
    let mut buf = Vec::new();
    loop {
        buf.clear();
        {
            let mut out = conn.out.lock().unwrap();
            loop {
                while buf.len() < WRITER_COALESCE_BYTES {
                    let next = out.next;
                    match out.ready.remove(&next) {
                        Some(frame) => {
                            out.next += 1;
                            buf.extend_from_slice(&frame);
                        }
                        None => break,
                    }
                }
                if !buf.is_empty() {
                    break;
                }
                if out.total == Some(out.next) {
                    return; // every issued request has been answered
                }
                out = conn.cv.wait(out).unwrap();
            }
        }
        // Slots freed: a reader paused at the pipeline bound may resume.
        conn.cv.notify_all();
        if write_poll(&mut sock, &buf, stop).is_err() {
            let mut out = conn.out.lock().unwrap();
            out.broken = true;
            out.ready.clear(); // nothing further will be sent
            drop(out);
            conn.cv.notify_all(); // unblock a reader waiting on a slot
            return;
        }
    }
}

/// `write_all` over a socket with a write timeout: timeout ticks poll
/// the stop flag (so shutdown is never wedged by a client that stopped
/// reading), everything else is a real error.
fn write_poll(sock: &mut TcpStream, buf: &[u8], stop: &AtomicBool) -> io::Result<()> {
    let mut at = 0;
    while at < buf.len() {
        match sock.write(&buf[at..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server stopping",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>, idx: usize, sess: &Session) {
    let q = &shared.queues[idx];
    loop {
        let job = {
            let mut jobs = q.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                // `readers_done` (not `stop`) gates the exit: readers
                // may still be flushing their last jobs at stop time,
                // and every enqueued job must be answered.
                if shared.readers_done.load(Ordering::SeqCst) {
                    return;
                }
                jobs = q.cv.wait(jobs).unwrap();
            }
        };
        handle_job(shared, sess, job);
    }
}

fn frame_of(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_response(resp, &mut buf);
    buf
}

fn handle_job(shared: &Arc<Shared>, sess: &Session, job: Job) {
    let c = &shared.counters;
    c.requests.fetch_add(1, Ordering::Relaxed);
    let req = match job.req {
        Ok(req) => req,
        Err(e) => {
            c.wire_errors.fetch_add(1, Ordering::Relaxed);
            job.conn
                .complete(job.seq, frame_of(&Response::Error(e.to_string())));
            return;
        }
    };
    let store = &shared.store;
    let resp = match req {
        Request::Get { key } => {
            c.gets.fetch_add(1, Ordering::Relaxed);
            match store.get(sess, &key) {
                Some(val) => Response::Value(val),
                None => Response::NotFound,
            }
        }
        Request::Put { key, val } => {
            c.puts.fetch_add(1, Ordering::Relaxed);
            match &shared.commit {
                CommitMode::Async => match store.put(sess, &key, &val) {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
                CommitMode::PerRequest => {
                    let mut b = sess.batch();
                    match b
                        .put(&key, &val)
                        .and_then(|()| b.commit_durable().map(|_| ()))
                    {
                        Ok(()) => Response::Ok,
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                CommitMode::Group(_) => {
                    submit_grouped(shared, job.conn, job.seq, GroupOp::Put { key, val });
                    return; // the committer completes this seq
                }
            }
        }
        Request::Del { key } => {
            c.dels.fetch_add(1, Ordering::Relaxed);
            match &shared.commit {
                CommitMode::Async => {
                    store.remove(sess, &key);
                    Response::Ok
                }
                CommitMode::PerRequest => {
                    let mut b = sess.batch();
                    match b.delete(&key).and_then(|()| b.commit_durable().map(|_| ())) {
                        Ok(()) => Response::Ok,
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                CommitMode::Group(_) => {
                    submit_grouped(shared, job.conn, job.seq, GroupOp::Del { key });
                    return;
                }
            }
        }
        Request::Batch { ops } => {
            c.batches.fetch_add(1, Ordering::Relaxed);
            if matches!(&shared.commit, CommitMode::Group(_)) {
                // Ride the committer queue so this connection's writes
                // stay in request order relative to its grouped
                // puts/dels; the batch still commits as its own atomic
                // WriteBatch.
                submit_grouped(shared, job.conn, job.seq, GroupOp::Batch { ops });
                return;
            }
            let mut b = sess.batch();
            let staged = ops.iter().try_for_each(|op| match op {
                BatchOp::Put { key, val } => b.put(key, val),
                BatchOp::Del { key } => b.delete(key),
            });
            match staged.and_then(|()| b.commit_durable()) {
                Ok(id) => Response::Committed(id),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Scan { start, limit } => {
            c.scans.fetch_add(1, Ordering::Relaxed);
            let mut entries = Vec::new();
            store.scan(sess, &start, limit as usize, &mut |k, v| {
                entries.push((k.to_vec(), v.to_vec()));
            });
            Response::Entries(entries)
        }
        Request::Stats => Response::Stats(stats_json(shared)),
    };
    job.conn.complete(job.seq, frame_of(&resp));
}

/// Routes a write through the group committer; the completion runs on
/// the committer thread once the write's group is durable.
fn submit_grouped(shared: &Arc<Shared>, conn: Arc<Conn>, seq: u64, op: GroupOp) {
    let group = shared.group.as_ref().expect("Group mode has a committer");
    let batch_reply = matches!(op, GroupOp::Batch { .. });
    group.submit(
        op,
        Box::new(move |outcome| {
            let resp = match outcome {
                Ok(id) if batch_reply => Response::Committed(id),
                Ok(_) => Response::Ok,
                Err(msg) => Response::Error(msg),
            };
            conn.complete(seq, frame_of(&resp));
        }),
    );
}

/// Hand-rolled flat JSON object — the protocol's one schemaless reply.
fn stats_json(shared: &Shared) -> String {
    let c = &shared.counters;
    let (groups, grouped_ops) = shared.group.as_ref().map_or((0, 0), |g| g.stats());
    let pm = shared.store.arena().stats().snapshot();
    let mode = match &shared.commit {
        CommitMode::PerRequest => "per_request",
        CommitMode::Group(_) => "group",
        CommitMode::Async => "async",
    };
    format!(
        concat!(
            "{{\"commit_mode\":\"{}\",\"connections\":{},\"requests\":{},",
            "\"gets\":{},\"puts\":{},\"dels\":{},\"batches\":{},\"scans\":{},",
            "\"wire_errors\":{},\"groups_committed\":{},\"ops_grouped\":{},",
            "\"sfences\":{},\"clwbs\":{},\"shards\":{}}}"
        ),
        mode,
        c.conns.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.gets.load(Ordering::Relaxed),
        c.puts.load(Ordering::Relaxed),
        c.dels.load(Ordering::Relaxed),
        c.batches.load(Ordering::Relaxed),
        c.scans.load(Ordering::Relaxed),
        c.wire_errors.load(Ordering::Relaxed),
        groups,
        grouped_ops,
        pm.sfence,
        pm.clwb,
        shared.store.shard_count(),
    )
}
