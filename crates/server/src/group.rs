//! The group-commit stage: many small writes, one fence.
//!
//! Per-request durable commits pay one intent/commit-record protocol —
//! and its fences — *per put*. For small values that protocol dominates
//! the work. The [`GroupCommitter`] instead lets worker threads enqueue
//! writes and return immediately; a dedicated committer thread drains
//! the queue into one [`WriteBatch::commit_durable`] per group, bounded
//! by a time window and ops/bytes budgets, then runs every enqueued
//! completion. Requests from *different connections* coalesce into the
//! same group, so the fence cost amortises across the whole server, not
//! just one pipeline. The queue is also the server's write-ordering
//! spine: ops drain — and commit — in submission order, and a
//! [`GroupOp::Batch`] is an ordered flush point that commits alone,
//! which is why grouped mode can route `BATCH` requests through here
//! and keep one connection's writes in request order.
//!
//! [`WriteBatch::commit_durable`]: incll::WriteBatch::commit_durable

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use incll::{Session, Store, MAX_BATCH_OPS};

use crate::protocol::BatchOp;

/// When the committer closes a group and fences it.
///
/// A group commits as soon as **any** bound is hit: the window elapses
/// (latency bound), or the pending ops/bytes reach their budgets
/// (throughput bound — no point waiting once a batch is full).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// Longest a queued write waits before its group commits, measured
    /// from the moment the group's *first* write arrived.
    pub window: Duration,
    /// Commit immediately once this many writes are pending.
    pub max_ops: usize,
    /// Commit immediately once the pending writes' key+value bytes
    /// reach this budget.
    pub max_bytes: usize,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            window: Duration::from_micros(200),
            max_ops: MAX_BATCH_OPS,
            max_bytes: 1 << 20,
        }
    }
}

/// One write awaiting its group.
pub enum GroupOp {
    /// Insert or update `key`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        val: Vec<u8>,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: Vec<u8>,
    },
    /// An atomic multi-op batch riding the committer's queue. In group
    /// commit mode the server routes `BATCH` requests here instead of
    /// committing them inline on a worker, so one connection's
    /// `PUT`/`DEL`/`BATCH` stream reaches durability in request order.
    /// A batch never merges with neighbouring writes: it commits as its
    /// own [`WriteBatch`](incll::WriteBatch), preserving its
    /// all-or-nothing contract, and its completion receives the real
    /// batch id.
    Batch {
        /// The staged operations, applied atomically.
        ops: Vec<BatchOp>,
    },
}

impl GroupOp {
    fn bytes(&self) -> usize {
        match self {
            GroupOp::Put { key, val } => key.len() + val.len(),
            GroupOp::Del { key } => key.len(),
            GroupOp::Batch { ops } => ops
                .iter()
                .map(|op| match op {
                    BatchOp::Put { key, val } => key.len() + val.len(),
                    BatchOp::Del { key } => key.len(),
                })
                .sum(),
        }
    }
}

/// Called exactly once when the write's group commits (or fails):
/// `Ok(batch_id)` after the group's commit record is durable.
pub type Completion = Box<dyn FnOnce(Result<u64, String>) + Send>;

struct PendingWrite {
    op: GroupOp,
    done: Completion,
}

struct State {
    pending: Vec<PendingWrite>,
    pending_bytes: usize,
    /// When the oldest pending write arrived; the window counts from here.
    first_at: Option<Instant>,
    stop: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    cfg: GroupConfig,
    /// Groups durably committed (fence-bearing commits).
    groups: AtomicU64,
    /// Writes that rode in those groups.
    ops: AtomicU64,
}

/// The committer: owns the queue and the thread that drains it.
///
/// Dropping the committer commits every still-pending write (no
/// enqueued ack is ever dropped) and joins the thread.
pub struct GroupCommitter {
    inner: Arc<Inner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl GroupCommitter {
    /// Starts the committer thread. `sess` is the session the thread
    /// commits through — acquire it from the same [`Store`] before
    /// spawning workers so pool exhaustion surfaces at startup.
    ///
    /// # Errors
    ///
    /// The spawn failure, verbatim, when the OS refuses the committer
    /// thread — the caller decides whether to degrade or abort.
    pub fn start(store: Store, sess: Session, cfg: GroupConfig) -> std::io::Result<Self> {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                pending: Vec::new(),
                pending_bytes: 0,
                first_at: None,
                stop: false,
            }),
            cv: Condvar::new(),
            cfg,
            groups: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("incll-group-commit".into())
                .spawn(move || committer_loop(&inner, &store, &sess))?
        };
        Ok(GroupCommitter {
            inner,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Enqueues one write; `done` runs once its group is durable.
    pub fn submit(&self, op: GroupOp, done: Completion) {
        let mut st = self.inner.state.lock().unwrap();
        if st.stop {
            drop(st);
            done(Err("server shutting down".into()));
            return;
        }
        st.pending_bytes += op.bytes();
        if st.first_at.is_none() {
            st.first_at = Some(Instant::now());
        }
        st.pending.push(PendingWrite { op, done });
        // The committer re-derives deadlines itself; one wake suffices
        // whether this write opened a group or filled one.
        self.inner.cv.notify_one();
    }

    /// `(groups_committed, ops_grouped)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.groups.load(Ordering::Relaxed),
            self.inner.ops.load(Ordering::Relaxed),
        )
    }

    /// Commits everything still queued, then stops the thread.
    /// Idempotent, and callable through a shared reference so a server
    /// can flush grouped acks mid-teardown (before joining the writer
    /// threads that deliver them).
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.stop = true;
        }
        self.inner.cv.notify_all();
        if let Some(t) = self.thread.lock().unwrap().take() {
            let _ = t.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(inner: &Inner, store: &Store, sess: &Session) {
    loop {
        // Phase 1: wait until a group is ready to close.
        let (writes, stopping) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.stop {
                    break;
                }
                if st.pending.is_empty() {
                    st = inner.cv.wait(st).unwrap();
                    continue;
                }
                let elapsed = st.first_at.expect("first_at set with pending").elapsed();
                if elapsed >= inner.cfg.window
                    || st.pending.len() >= inner.cfg.max_ops
                    || st.pending_bytes >= inner.cfg.max_bytes
                {
                    break;
                }
                // Group still open: sleep out the rest of the window (a
                // budget-filling submit wakes us early).
                let (g, _) = inner
                    .cv
                    .wait_timeout(st, inner.cfg.window - elapsed)
                    .unwrap();
                st = g;
            }
            let writes = std::mem::take(&mut st.pending);
            st.pending_bytes = 0;
            st.first_at = None;
            (writes, st.stop)
        };

        // Phase 2: commit outside the lock — submits keep flowing into
        // the *next* group while this one fences.
        if !writes.is_empty() {
            commit_group(inner, sess, writes);
        }
        if stopping {
            // One more sweep: submits may have raced the stop flag.
            let leftovers = {
                let mut st = inner.state.lock().unwrap();
                st.pending_bytes = 0;
                st.first_at = None;
                std::mem::take(&mut st.pending)
            };
            if !leftovers.is_empty() {
                commit_group(inner, sess, leftovers);
            }
            let _ = store; // the committer's store handle pins the pool
            return;
        }
    }
}

/// Commits one closed group, chunking to the batch-size cap, and runs
/// every completion with its chunk's outcome. [`GroupOp::Batch`]
/// entries act as ordered flush points: the open chunk commits first,
/// then the batch commits alone (atomic, its own id), then chunking
/// resumes — queue order is durability order.
fn commit_group(inner: &Inner, sess: &Session, writes: Vec<PendingWrite>) {
    let mut writes = writes.into_iter().peekable();
    while writes.peek().is_some() {
        if matches!(writes.peek().map(|w| &w.op), Some(GroupOp::Batch { .. })) {
            let w = writes.next().unwrap();
            let GroupOp::Batch { ops } = w.op else {
                unreachable!("peeked a batch")
            };
            commit_standalone_batch(sess, ops, w.done);
            continue;
        }
        let mut batch = sess.batch();
        let mut chunk: Vec<PendingWrite> = Vec::new();
        while chunk.len() < MAX_BATCH_OPS {
            let Some(w) = writes.peek() else { break };
            let staged = match &w.op {
                GroupOp::Put { key, val } => batch.put(key, val),
                GroupOp::Del { key } => batch.delete(key),
                GroupOp::Batch { .. } => break, // flush point: close the chunk
            };
            match staged {
                Ok(()) => {
                    chunk.push(writes.next().unwrap());
                }
                Err(e) => {
                    // A single bad write (oversized value) must not
                    // poison its neighbours: fail it alone, keep going.
                    let w = writes.next().unwrap();
                    (w.done)(Err(e.to_string()));
                }
            }
        }
        if chunk.is_empty() {
            continue;
        }
        match batch.commit_durable() {
            Ok(id) => {
                inner.groups.fetch_add(1, Ordering::Relaxed);
                inner.ops.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                for w in chunk {
                    (w.done)(Ok(id));
                }
            }
            Err(_) => {
                // A store-level failure (e.g. one shard's pool is
                // exhausted) aborted the whole chunk before anything
                // durable happened. Error-acking every rider would
                // poison writes that are individually fine, so retry
                // each as its own durable one-op batch: only the ops
                // that truly cannot commit error-ack, and the committer
                // stays alive for later groups.
                for w in chunk {
                    commit_single(inner, sess, w);
                }
            }
        }
    }
}

/// Per-op fallback after a failed chunk commit: the write commits (and
/// fences) alone, so its ack reflects *its* outcome, not a neighbour's.
fn commit_single(inner: &Inner, sess: &Session, w: PendingWrite) {
    let mut batch = sess.batch();
    let staged = match &w.op {
        GroupOp::Put { key, val } => batch.put(key, val),
        GroupOp::Del { key } => batch.delete(key),
        GroupOp::Batch { .. } => unreachable!("chunks never hold batches"),
    };
    match staged.and_then(|()| batch.commit_durable()) {
        Ok(id) => {
            inner.groups.fetch_add(1, Ordering::Relaxed);
            inner.ops.fetch_add(1, Ordering::Relaxed);
            (w.done)(Ok(id));
        }
        Err(e) => (w.done)(Err(e.to_string())),
    }
}

/// Commits one [`GroupOp::Batch`] as its own atomic [`WriteBatch`]
/// (all-or-nothing: a bad op fails the whole batch, matching the
/// inline `BATCH` path of the non-grouping commit modes). Not counted
/// in the grouping stats — those track coalesced small writes.
///
/// [`WriteBatch`]: incll::WriteBatch
fn commit_standalone_batch(sess: &Session, ops: Vec<BatchOp>, done: Completion) {
    let mut batch = sess.batch();
    let staged = ops.iter().try_for_each(|op| match op {
        BatchOp::Put { key, val } => batch.put(key, val),
        BatchOp::Del { key } => batch.delete(key),
    });
    match staged.and_then(|()| batch.commit_durable()) {
        Ok(id) => done(Ok(id)),
        Err(e) => done(Err(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incll::Options;
    use incll_pmem::PArena;
    use std::sync::mpsc;

    fn store() -> (&'static PArena, Store) {
        let arena = Box::leak(Box::new(
            PArena::builder().capacity_bytes(64 << 20).build().unwrap(),
        ));
        let options = Options::new().threads(4).log_bytes_per_thread(4 << 20);
        let (store, _) = Store::open(arena, options).unwrap();
        (arena, store)
    }

    #[test]
    fn a_full_window_commits_every_enqueued_write_once() {
        let (_, store) = store();
        let sess = store.session().unwrap();
        let committer = GroupCommitter::start(
            store.clone(),
            store.session().unwrap(),
            GroupConfig {
                window: Duration::from_millis(2),
                ..GroupConfig::default()
            },
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        for i in 0..100u64 {
            let tx = tx.clone();
            committer.submit(
                GroupOp::Put {
                    key: i.to_be_bytes().to_vec(),
                    val: vec![i as u8; 64],
                },
                Box::new(move |r| tx.send((i, r)).unwrap()),
            );
        }
        let mut acked = 0;
        for _ in 0..100 {
            let (_, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            acked += 1;
        }
        assert_eq!(acked, 100);
        for i in 0..100u64 {
            assert_eq!(store.get(&sess, &i.to_be_bytes()), Some(vec![i as u8; 64]));
        }
        let (groups, ops) = committer.stats();
        assert_eq!(ops, 100);
        assert!(groups >= 1, "at least one group must have committed");
        assert!(
            groups < 100,
            "grouping must coalesce: {groups} groups for 100 ops"
        );
    }

    #[test]
    fn max_ops_closes_a_group_before_the_window() {
        let (_, store) = store();
        let committer = GroupCommitter::start(
            store.clone(),
            store.session().unwrap(),
            GroupConfig {
                // A window long enough that only the ops budget can
                // plausibly close the group.
                window: Duration::from_secs(30),
                max_ops: 8,
                max_bytes: 1 << 20,
            },
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        for i in 0..8u64 {
            let tx = tx.clone();
            committer.submit(
                GroupOp::Put {
                    key: i.to_be_bytes().to_vec(),
                    val: b"v".to_vec(),
                },
                Box::new(move |r| tx.send(r).unwrap()),
            );
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        }
    }

    #[test]
    fn shutdown_flushes_pending_writes_instead_of_dropping_them() {
        let (_, store) = store();
        let sess = store.session().unwrap();
        let committer = GroupCommitter::start(
            store.clone(),
            store.session().unwrap(),
            GroupConfig {
                window: Duration::from_secs(30), // would never fire on its own
                ..GroupConfig::default()
            },
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        for i in 0..5u64 {
            let tx = tx.clone();
            committer.submit(
                GroupOp::Put {
                    key: i.to_be_bytes().to_vec(),
                    val: b"flushed".to_vec(),
                },
                Box::new(move |r| tx.send(r).unwrap()),
            );
        }
        committer.shutdown();
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        }
        for i in 0..5u64 {
            assert_eq!(
                store.get(&sess, &i.to_be_bytes()),
                Some(b"flushed".to_vec())
            );
        }
    }

    #[test]
    fn queue_order_is_durability_order_across_puts_dels_and_batches() {
        let (_, store) = store();
        let sess = store.session().unwrap();
        let committer = GroupCommitter::start(
            store.clone(),
            store.session().unwrap(),
            GroupConfig {
                window: Duration::from_micros(50),
                ..GroupConfig::default()
            },
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        let k = b"contended".to_vec();
        // put v1, BATCH{put v2}, del, put v3 — all on one key, enqueued
        // back to back. Whatever group boundaries the window draws, the
        // final state must be the *last* submitted op's.
        let seqs: Vec<GroupOp> = vec![
            GroupOp::Put {
                key: k.clone(),
                val: b"v1".to_vec(),
            },
            GroupOp::Batch {
                ops: vec![BatchOp::Put {
                    key: k.clone(),
                    val: b"v2".to_vec(),
                }],
            },
            GroupOp::Del { key: k.clone() },
            GroupOp::Put {
                key: k.clone(),
                val: b"v3".to_vec(),
            },
        ];
        for (i, op) in seqs.into_iter().enumerate() {
            let tx = tx.clone();
            committer.submit(op, Box::new(move |r| tx.send((i, r)).unwrap()));
        }
        for _ in 0..4 {
            let (i, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            let id = r.unwrap_or_else(|e| panic!("op {i} failed: {e}"));
            if i == 1 {
                assert!(id >= 1, "a standalone batch reports a real batch id");
            }
        }
        assert_eq!(store.get(&sess, &k), Some(b"v3".to_vec()));
    }

    #[test]
    fn an_oversized_value_fails_alone_without_poisoning_the_group() {
        let (_, store) = store();
        let sess = store.session().unwrap();
        let committer = GroupCommitter::start(
            store.clone(),
            store.session().unwrap(),
            GroupConfig {
                window: Duration::from_millis(2),
                ..GroupConfig::default()
            },
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        let t1 = tx.clone();
        committer.submit(
            GroupOp::Put {
                key: b"good-1".to_vec(),
                val: b"x".to_vec(),
            },
            Box::new(move |r| t1.send(("g1", r)).unwrap()),
        );
        let t2 = tx.clone();
        committer.submit(
            GroupOp::Put {
                key: b"bad".to_vec(),
                val: vec![0u8; incll::MAX_VALUE_BYTES + 1],
            },
            Box::new(move |r| t2.send(("bad", r)).unwrap()),
        );
        committer.submit(
            GroupOp::Put {
                key: b"good-2".to_vec(),
                val: b"y".to_vec(),
            },
            Box::new(move |r| tx.send(("g2", r)).unwrap()),
        );
        let mut outcomes = std::collections::BTreeMap::new();
        for _ in 0..3 {
            let (who, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            outcomes.insert(who, r.is_ok());
        }
        assert!(outcomes["g1"]);
        assert!(!outcomes["bad"]);
        assert!(outcomes["g2"]);
        assert_eq!(store.get(&sess, b"good-2"), Some(b"y".to_vec()));
        assert_eq!(store.get(&sess, b"bad"), None);
    }

    #[test]
    fn a_full_shard_error_acks_only_the_affected_writes() {
        // A store-level OutOfMemory inside the group window (one shard's
        // extent pool exhausted) must not poison the whole group or kill
        // the committer: riders on healthy shards still commit and ack
        // `Ok`, only the writes that truly cannot commit ack `Err`, and
        // later groups keep working.
        let arena = Box::leak(Box::new(
            PArena::builder().capacity_bytes(16 << 20).build().unwrap(),
        ));
        let options = Options::new()
            .threads(4)
            .log_bytes_per_thread(1 << 20)
            .shards(2);
        let (store, _) = Store::open(arena, options).unwrap();
        let sess = store.session().unwrap();
        let key_on = |shard: usize, tag: u64| -> Vec<u8> {
            (0u64..)
                .map(|i| format!("gk{tag}-{i}").into_bytes())
                .find(|k| store.shard_of(k) == shard)
                .unwrap()
        };

        // Exhaust shard 0 by overwriting a fixed working set (updates
        // only, so exhaustion is always a typed value-buffer error).
        let hot: Vec<Vec<u8>> = (0..16).map(|t| key_on(0, t)).collect();
        for k in &hot {
            store.put(&sess, k, b"seed").unwrap();
        }
        store.checkpoint();
        let big = vec![0x5au8; 3000];
        let mut i = 0usize;
        while store.put(&sess, &hot[i % hot.len()], &big).is_ok() {
            i += 1;
        }

        let committer = GroupCommitter::start(
            store.clone(),
            store.session().unwrap(),
            GroupConfig {
                window: Duration::from_millis(2),
                ..GroupConfig::default()
            },
        )
        .unwrap();
        // One group window: a healthy-shard put, a doomed full-shard
        // put, and a delete on the full shard (no allocation — fine).
        let healthy = key_on(1, 900);
        let (tx, rx) = mpsc::channel();
        let t1 = tx.clone();
        committer.submit(
            GroupOp::Put {
                key: healthy.clone(),
                val: b"survives".to_vec(),
            },
            Box::new(move |r| t1.send(("healthy", r)).unwrap()),
        );
        let t2 = tx.clone();
        committer.submit(
            GroupOp::Put {
                key: hot[0].clone(),
                val: big.clone(),
            },
            Box::new(move |r| t2.send(("doomed", r)).unwrap()),
        );
        committer.submit(
            GroupOp::Del {
                key: hot[1].clone(),
            },
            Box::new(move |r| tx.send(("del", r)).unwrap()),
        );
        let mut outcomes = std::collections::BTreeMap::new();
        for _ in 0..3 {
            let (who, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            outcomes.insert(who, r.is_ok());
        }
        assert!(outcomes["healthy"], "healthy-shard write must commit");
        assert!(!outcomes["doomed"], "full-shard write must error-ack");
        assert!(outcomes["del"], "allocation-free op must commit");
        assert_eq!(
            store.get(&sess, &healthy),
            Some(b"survives".to_vec()),
            "the healthy rider's bytes must be applied"
        );
        assert_eq!(store.get(&sess, &hot[1]), None, "delete must apply");

        // The committer survived: a later group still commits.
        let (tx2, rx2) = mpsc::channel();
        committer.submit(
            GroupOp::Put {
                key: key_on(1, 901),
                val: b"later".to_vec(),
            },
            Box::new(move |r| tx2.send(r).unwrap()),
        );
        rx2.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
    }
}
