//! A concurrent TCP front-end for the InCLL store.
//!
//! Three pieces, one per module:
//!
//! * [`protocol`] — the length-prefixed request/response wire format
//!   (GET/PUT/DEL/BATCH/SCAN/STATS) with a typed [`WireError`] for every
//!   way a frame can be wrong.
//! * [`group`] — the group-commit stage: puts and dels from *all*
//!   connections coalesce into one durable [`WriteBatch`] commit per
//!   window/budget, so the commit protocol's fences amortise across the
//!   whole server instead of being paid per request.
//! * [`server`] — the M-connections-on-N-sessions server: per-connection
//!   reader threads stamp requests with sequence numbers, N workers
//!   (each owning a pooled [`Session`]) execute them — every connection
//!   pinned to one worker, so its writes reach durability in request
//!   order — and per-connection reorder buffers plus writer threads
//!   stream responses back in request order while later requests run
//!   under earlier ones (pipelining, bounded per connection by a
//!   configurable depth).
//!
//! The `incll-server` binary (`src/main.rs`) serves an in-memory arena
//! over TCP; see `incll_ycsb`'s network driver for load generation.
//!
//! [`WireError`]: protocol::WireError
//! [`WriteBatch`]: incll::WriteBatch
//! [`Session`]: incll::Session

pub mod group;
pub mod protocol;
pub mod server;

pub use group::{GroupCommitter, GroupConfig, GroupOp};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BatchOp, Request, Response, WireError, MAX_FRAME_BYTES,
};
pub use server::{CommitMode, Server, ServerConfig};
