use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::EpochManager;

/// A background thread that advances the epoch on a fixed interval,
/// mirroring the paper's 64 ms checkpoint cadence.
///
/// The driver stops (and joins its thread) on [`AdvanceDriver::stop`] or
/// drop. Stopping is prompt regardless of the interval: the thread waits
/// in `park_timeout` slices and is unparked by `stop`, so a driver on a
/// multi-second cadence still joins in microseconds.
///
/// # Example
///
/// ```
/// use incll_pmem::{superblock, PArena};
/// use incll_epoch::{AdvanceDriver, EpochManager, EpochOptions};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), incll_pmem::Error> {
/// let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
/// superblock::format(&arena);
/// let mgr = EpochManager::new(arena, EpochOptions::durable());
/// let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(5));
/// std::thread::sleep(Duration::from_millis(40));
/// driver.stop();
/// assert!(mgr.current_epoch() > 1);
/// # Ok(())
/// # }
/// ```
pub struct AdvanceDriver {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// One domain's cadence in a per-domain driver
/// ([`AdvanceDriver::spawn_per_domain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainCadence {
    /// Target time between this domain's advances.
    pub interval: Duration,
    /// Skip an advance when the domain saw no **write** pins since its
    /// last one (the dirty-work heuristic: a clean domain has nothing to
    /// flush and nothing new to checkpoint, so stalling its — nonexistent
    /// — writers buys nothing). Read-only pins — borrowed `get_ref`
    /// lookups, snapshot-scan batch refills — never count as dirty work,
    /// so a pure-read workload leaves a lazy cadence idle forever. The
    /// skipped tick still reschedules normally.
    pub skip_clean: bool,
}

impl DomainCadence {
    /// A cadence advancing every `interval`, skipping clean domains.
    pub fn lazy(interval: Duration) -> Self {
        DomainCadence {
            interval,
            skip_clean: true,
        }
    }

    /// A cadence advancing every `interval` unconditionally.
    pub fn eager(interval: Duration) -> Self {
        DomainCadence {
            interval,
            skip_clean: false,
        }
    }
}

impl AdvanceDriver {
    /// Spawns a driver advancing every domain of `mgr` (in index order)
    /// every `interval` — the single global cadence. For independent
    /// per-domain cadences see [`AdvanceDriver::spawn_per_domain`].
    pub fn spawn(mgr: EpochManager, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("incll-epoch-driver".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    // Interruptible wait: `stop` unparks us, and spurious
                    // wakeups just re-check the deadline.
                    let deadline = Instant::now() + interval;
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            return;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::park_timeout(deadline - now);
                    }
                    mgr.advance();
                }
            })
            .expect("spawn epoch driver");
        AdvanceDriver {
            stop,
            thread: Some(thread),
        }
    }

    /// Spawns a driver scheduling each domain on its **own** cadence: a
    /// hot shard can checkpoint every few milliseconds while cold shards
    /// tick lazily (or, with [`DomainCadence::lazy`], not at all while
    /// idle). One background thread serves every domain, always advancing
    /// the earliest-deadline domain next.
    ///
    /// # Panics
    ///
    /// Panics if `cadences.len() != mgr.domains()`.
    pub fn spawn_per_domain(mgr: EpochManager, cadences: Vec<DomainCadence>) -> Self {
        assert_eq!(
            cadences.len(),
            mgr.domains(),
            "one cadence per epoch domain"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("incll-epoch-driver".into())
            .spawn(move || {
                let now = Instant::now();
                let mut deadlines: Vec<Instant> =
                    cadences.iter().map(|c| now + c.interval).collect();
                loop {
                    let (d, &deadline) = deadlines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .expect("at least one domain");
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            return;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::park_timeout(deadline - now);
                    }
                    if !cadences[d].skip_clean || mgr.domain_dirty(d) {
                        mgr.advance_domain(d);
                    }
                    deadlines[d] = Instant::now() + cadences[d].interval;
                }
            })
            .expect("spawn epoch driver");
        AdvanceDriver {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the driver and joins its thread (promptly, even mid-interval).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for AdvanceDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for AdvanceDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdvanceDriver")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpochOptions;
    use incll_pmem::{superblock, PArena};

    #[test]
    fn driver_advances_epochs() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::durable());
        let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.current_epoch() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        assert!(mgr.current_epoch() >= 4);
    }

    #[test]
    fn driver_stops_on_drop() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        {
            let _driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(1));
            std::thread::sleep(Duration::from_millis(10));
        }
        let settled = mgr.current_epoch();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(mgr.current_epoch(), settled);
    }

    #[test]
    fn stop_is_prompt_even_with_a_long_interval() {
        // Regression: the driver used to sleep out its full interval
        // before noticing `stop`; with a 60 s cadence that hung drop for
        // a minute. The parked wait must join far inside one interval.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::durable());
        let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        driver.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "stop took {:?}, must not wait out the 60 s interval",
            t0.elapsed()
        );
        assert_eq!(mgr.current_epoch(), 1, "no advance fired mid-interval");
    }

    #[test]
    fn drop_is_prompt_even_with_a_long_interval() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        let t0 = std::time::Instant::now();
        {
            let _driver = AdvanceDriver::spawn(mgr, Duration::from_secs(60));
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn per_domain_driver_runs_independent_cadences() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        // Domain 0 hot (2 ms, eager), domain 1 cold (lazy: skip while
        // clean, so it must never advance — nothing ever pins it).
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![
                DomainCadence::eager(Duration::from_millis(2)),
                DomainCadence::lazy(Duration::from_millis(2)),
            ],
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.current_epoch_of(0) < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        assert!(mgr.current_epoch_of(0) >= 4, "hot domain must tick");
        assert_eq!(
            mgr.current_epoch_of(1),
            1,
            "clean lazy domain must be skipped"
        );
    }

    #[test]
    fn lazy_cadence_advances_once_dirty() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![
                DomainCadence::lazy(Duration::from_millis(2)),
                DomainCadence::lazy(Duration::from_millis(2)),
            ],
        );
        let h = mgr.register();
        drop(h.pin_domain_mut(1)); // dirty domain 1 only
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.current_epoch_of(1) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        assert!(mgr.current_epoch_of(1) >= 2, "dirty domain must advance");
        assert_eq!(mgr.current_epoch_of(0), 1);
    }

    #[test]
    fn lazy_cadence_ignores_read_pins() {
        // Regression for the read-path contract: read-only pins (both the
        // generic `pin_domain` and the explicit `pin_domain_read`) must
        // not mark a domain dirty, so a pure-scan workload hammering a
        // lazily cadenced domain leaves its checkpoint timer idle.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![
                DomainCadence::lazy(Duration::from_millis(1)),
                DomainCadence::lazy(Duration::from_millis(1)),
            ],
        );
        let h = mgr.register();
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(20) {
            drop(h.pin_domain(0));
            drop(h.pin_domain_read(0));
            drop(h.pin_domain_read(1));
        }
        driver.stop();
        assert_eq!(
            mgr.current_epoch_of(0),
            1,
            "read pins must not dirty domain 0"
        );
        assert_eq!(
            mgr.current_epoch_of(1),
            1,
            "read pins must not dirty domain 1"
        );
    }

    #[test]
    fn driver_with_workers() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::durable());
        let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(1));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let mgr = mgr.clone();
                s.spawn(move || {
                    let h = mgr.register();
                    for _ in 0..10_000 {
                        let _g = h.pin();
                    }
                });
            }
        });
        driver.stop();
        assert!(mgr.current_epoch() >= 1);
    }
}
