use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::EpochManager;

/// A background thread that advances the epoch on a fixed interval,
/// mirroring the paper's 64 ms checkpoint cadence.
///
/// The driver stops (and joins its thread) on [`AdvanceDriver::stop`] or
/// drop. Stopping is prompt regardless of the interval: the thread waits
/// in `park_timeout` slices and is unparked by `stop`, so a driver on a
/// multi-second cadence still joins in microseconds.
///
/// # Example
///
/// ```
/// use incll_pmem::{superblock, PArena};
/// use incll_epoch::{AdvanceDriver, EpochManager, EpochOptions};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), incll_pmem::Error> {
/// let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
/// superblock::format(&arena);
/// let mgr = EpochManager::new(arena, EpochOptions::durable());
/// let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(5));
/// std::thread::sleep(Duration::from_millis(40));
/// driver.stop();
/// assert!(mgr.current_epoch() > 1);
/// # Ok(())
/// # }
/// ```
pub struct AdvanceDriver {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// Per-domain current interval in nanoseconds (empty for the global
    /// [`AdvanceDriver::spawn`] form) — the adaptive controller's
    /// observable state.
    intervals: Arc<Vec<AtomicU64>>,
}

/// One domain's **static** cadence in a per-domain driver
/// ([`AdvanceDriver::spawn_per_domain`]). The degenerate (non-adaptive)
/// configs: [`DomainCadence::eager`] and [`DomainCadence::lazy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainCadence {
    /// Target time between this domain's advances.
    pub interval: Duration,
    /// Skip an advance when the domain saw no **write** pins since its
    /// last one (the dirty-work heuristic: a clean domain has nothing to
    /// flush and nothing new to checkpoint, so stalling its — nonexistent
    /// — writers buys nothing). Read-only pins — borrowed `get_ref`
    /// lookups, snapshot-scan batch refills — never count as dirty work,
    /// so a pure-read workload leaves a lazy cadence idle forever. The
    /// skipped tick still reschedules normally.
    pub skip_clean: bool,
}

impl DomainCadence {
    /// A cadence advancing every `interval`, skipping clean domains.
    pub fn lazy(interval: Duration) -> Self {
        DomainCadence {
            interval,
            skip_clean: true,
        }
    }

    /// A cadence advancing every `interval` unconditionally.
    pub fn eager(interval: Duration) -> Self {
        DomainCadence {
            interval,
            skip_clean: false,
        }
    }
}

/// An **adaptive** per-domain cadence: the controller samples each
/// domain's write-rate counters ([`EpochManager::domain_counters`]) and
/// moves the interval to follow the measured rate — tightening a hot
/// domain toward [`AdaptiveCadence::min`] (short undo windows where they
/// pay off) and relaxing a cold one toward [`AdaptiveCadence::max`] (no
/// flush work for idle shards).
///
/// The controller is deliberately simple and damped:
///
/// * the write-rate counters are sampled every [`AdaptiveCadence::min`]
///   (the observation tick, decoupled from the advances themselves);
///   each sample is one **observation** of the *predicted window* — the
///   measured byte rate times the current interval: `hot` when above
///   [`AdaptiveCadence::target_dirty_bytes`], `cold` when below half of
///   it, neutral in between (a dead band);
/// * the interval moves only after [`AdaptiveCadence::hysteresis`]
///   *consecutive same-direction* observations — a single bursty or
///   quiet sample never moves the cadence. A move re-targets the
///   interval straight to the measured equilibrium —
///   `target_dirty_bytes / rate`, clamped to `[min, max]` — so a shard
///   whose write rate shifted by orders of magnitude (a hotspot arriving
///   or leaving) converges in one move instead of a ladder of steps;
/// * when the controller tightens, the domain's next advance deadline is
///   pulled forward to at most one new interval away, so a domain that
///   *turns* hot reacts within a few `min` ticks instead of waiting out
///   a relaxed interval already in flight;
/// * adaptive domains always skip clean ticks (the dirty-work heuristic),
///   counting them in [`crate::DomainCounters::advances_skipped`];
/// * the interval starts at the geometric midpoint of `[min, max]`:
///   equidistant (in doublings) from both clamps, so a restarted
///   controller converges to either extreme in half the observations a
///   `min` or `max` start would need in the worst case.
///
/// A dirty domain is therefore never starved: whatever the controller
/// has done, its next deadline is at most `max` away, and a dirty
/// deadline always advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveCadence {
    /// Tightest interval the controller may reach (hot-domain cadence) —
    /// also the controller's sampling period: write rates are observed
    /// every `min` regardless of the current interval.
    pub min: Duration,
    /// Most relaxed interval — also the starvation bound: a dirty domain
    /// waits at most this long for its next advance.
    pub max: Duration,
    /// Bytes of external-log traffic per window the controller steers
    /// toward: above this is a `hot` observation, below half of it `cold`.
    pub target_dirty_bytes: u64,
    /// Consecutive same-direction observations required before the
    /// interval moves one step.
    pub hysteresis: u32,
}

impl Default for AdaptiveCadence {
    /// Paper-anchored defaults: 8 ms–256 ms around the 64 ms epoch,
    /// targeting 256 KiB of log traffic per window, two-observation
    /// damping.
    fn default() -> Self {
        AdaptiveCadence {
            min: crate::DEFAULT_EPOCH_INTERVAL / 8,
            max: crate::DEFAULT_EPOCH_INTERVAL * 4,
            target_dirty_bytes: 256 << 10,
            hysteresis: 2,
        }
    }
}

/// One domain's checkpoint policy for
/// [`AdvanceDriver::spawn_per_domain`]: a fixed [`DomainCadence`] or the
/// measured [`AdaptiveCadence`] controller. Both static forms convert
/// with `From`, so existing `DomainCadence` lists keep working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cadence {
    /// A fixed interval (optionally skipping clean domains).
    Static(DomainCadence),
    /// The write-rate-following controller.
    Adaptive(AdaptiveCadence),
}

impl Cadence {
    /// Static cadence advancing every `interval`, skipping clean domains.
    pub fn lazy(interval: Duration) -> Self {
        Cadence::Static(DomainCadence::lazy(interval))
    }

    /// Static cadence advancing every `interval` unconditionally.
    pub fn eager(interval: Duration) -> Self {
        Cadence::Static(DomainCadence::eager(interval))
    }

    /// The adaptive controller with the given bounds.
    pub fn adaptive(cfg: AdaptiveCadence) -> Self {
        Cadence::Adaptive(cfg)
    }

    /// The interval this policy starts at: the configured interval for
    /// statics, the geometric midpoint of `[min, max]` for the adaptive
    /// controller (equally many doublings from either clamp, so a fresh
    /// controller — e.g. right after recovery — reaches any equilibrium
    /// in the fewest worst-case observations).
    fn initial_interval(&self) -> Duration {
        match self {
            Cadence::Static(c) => c.interval,
            Cadence::Adaptive(a) => {
                let mid = (a.min.as_nanos() as f64 * a.max.as_nanos() as f64).sqrt();
                Duration::from_nanos(mid as u64).clamp(a.min, a.max)
            }
        }
    }
}

impl From<DomainCadence> for Cadence {
    fn from(c: DomainCadence) -> Self {
        Cadence::Static(c)
    }
}

impl From<AdaptiveCadence> for Cadence {
    fn from(a: AdaptiveCadence) -> Self {
        Cadence::Adaptive(a)
    }
}

/// Per-domain controller state inside the driver thread.
struct DomainCtl {
    cadence: Cadence,
    interval: Duration,
    skip_clean: bool,
    /// Signed run of same-direction observations: positive = consecutive
    /// hot samples, negative = consecutive cold ones.
    streak: i64,
    /// `bytes_logged` at the last observation (rate differencing).
    last_bytes: u64,
    /// When the last observation was taken (rate denominator).
    last_obs: Instant,
}

impl AdvanceDriver {
    /// Spawns a driver advancing every domain of `mgr` (in index order)
    /// every `interval` — the single global cadence. For independent
    /// per-domain cadences see [`AdvanceDriver::spawn_per_domain`].
    pub fn spawn(mgr: EpochManager, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("incll-epoch-driver".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    // Interruptible wait: `stop` unparks us, and spurious
                    // wakeups just re-check the deadline.
                    let deadline = Instant::now() + interval;
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            return;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::park_timeout(deadline - now);
                    }
                    mgr.advance();
                }
            })
            .expect("spawn epoch driver");
        AdvanceDriver {
            stop,
            thread: Some(thread),
            intervals: Arc::new(Vec::new()),
        }
    }

    /// Spawns a driver scheduling each domain on its **own** policy: a
    /// hot shard can checkpoint every few milliseconds while cold shards
    /// tick lazily (or, with [`DomainCadence::lazy`] /
    /// [`Cadence::Adaptive`], not at all while idle). One background
    /// thread serves every domain, always advancing the earliest-deadline
    /// domain next.
    ///
    /// Scheduling is **fixed-rate**, not fixed-delay: each domain's next
    /// deadline is computed from its *previous deadline*, so a slow
    /// advance (long quiesce, big flush, slow boundary hooks) eats into
    /// its own period instead of silently stretching every subsequent
    /// one. Only when an advance overruns its whole period does the
    /// schedule re-anchor at "now" (no catch-up bursts).
    ///
    /// Accepts any mix of policies via `Into<Cadence>`; a plain
    /// `Vec<DomainCadence>` keeps the pre-adaptive behavior.
    ///
    /// # Panics
    ///
    /// Panics if `cadences.len() != mgr.domains()`, or if an adaptive
    /// entry is malformed (`min` zero, `min > max`, or zero
    /// `hysteresis`).
    pub fn spawn_per_domain<C: Into<Cadence>>(mgr: EpochManager, cadences: Vec<C>) -> Self {
        let cadences: Vec<Cadence> = cadences.into_iter().map(Into::into).collect();
        assert_eq!(
            cadences.len(),
            mgr.domains(),
            "one cadence per epoch domain"
        );
        for c in &cadences {
            if let Cadence::Adaptive(a) = c {
                assert!(!a.min.is_zero(), "adaptive min interval must be nonzero");
                assert!(a.min <= a.max, "adaptive min must not exceed max");
                assert!(a.hysteresis >= 1, "hysteresis must be at least 1");
            }
        }
        let intervals: Arc<Vec<AtomicU64>> = Arc::new(
            cadences
                .iter()
                .map(|c| AtomicU64::new(c.initial_interval().as_nanos() as u64))
                .collect(),
        );
        let intervals2 = intervals.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("incll-epoch-driver".into())
            .spawn(move || {
                let now = Instant::now();
                let mut ctls: Vec<DomainCtl> = cadences
                    .iter()
                    .map(|&cadence| DomainCtl {
                        cadence,
                        interval: cadence.initial_interval(),
                        // Adaptive domains always use the dirty-work
                        // heuristic: a clean tick has nothing to flush.
                        skip_clean: match cadence {
                            Cadence::Static(c) => c.skip_clean,
                            Cadence::Adaptive(_) => true,
                        },
                        streak: 0,
                        last_bytes: 0,
                        last_obs: now,
                    })
                    .collect();
                let mut deadlines: Vec<Instant> = ctls.iter().map(|c| now + c.interval).collect();
                // Adaptive domains also take a write-rate **observation**
                // every `min`, independent of their advances, so a domain
                // that turns hot is noticed within O(min) rather than at
                // the end of a relaxed interval already in flight. Static
                // domains never observe: `None`, skipped by the selection
                // loop (a time-based sentinel would eventually become the
                // permanently-earliest deadline and livelock the driver).
                let mut observe_at: Vec<Option<Instant>> = cadences
                    .iter()
                    .map(|c| match c {
                        Cadence::Adaptive(a) => Some(now + a.min),
                        Cadence::Static(_) => None,
                    })
                    .collect();
                loop {
                    // Next event: the earliest advance or observation
                    // deadline across every domain.
                    let mut d = 0usize;
                    let mut deadline = deadlines[0];
                    let mut observation = false;
                    for (i, &t) in deadlines.iter().enumerate() {
                        if t < deadline {
                            (d, deadline, observation) = (i, t, false);
                        }
                    }
                    for (i, &t) in observe_at.iter().enumerate() {
                        if let Some(t) = t {
                            if t < deadline {
                                (d, deadline, observation) = (i, t, true);
                            }
                        }
                    }
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            return;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::park_timeout(deadline - now);
                    }
                    let ctl = &mut ctls[d];
                    if observation {
                        if let Cadence::Adaptive(a) = ctl.cadence {
                            let now = Instant::now();
                            // One observation: the predicted window — the
                            // byte rate since the last sample, scaled to
                            // the current interval. Equal to the plain
                            // per-window byte count at steady state, but
                            // available every `min` tick.
                            let bytes = mgr.domain_counters(d).bytes_logged;
                            let delta = bytes.saturating_sub(ctl.last_bytes);
                            ctl.last_bytes = bytes;
                            let elapsed = now
                                .saturating_duration_since(ctl.last_obs)
                                .max(Duration::from_micros(100));
                            ctl.last_obs = now;
                            let predicted = delta as f64 * ctl.interval.as_nanos() as f64
                                / elapsed.as_nanos() as f64;
                            let dir: i64 = if predicted > a.target_dirty_bytes as f64 {
                                1 // hot: tighten
                            } else if predicted < a.target_dirty_bytes as f64 / 2.0 {
                                -1 // cold: relax
                            } else {
                                0 // dead band: hold
                            };
                            ctl.streak = if dir == 0 || ctl.streak.signum() != dir {
                                dir
                            } else {
                                ctl.streak + dir
                            };
                            if ctl.streak.unsigned_abs() >= u64::from(a.hysteresis) {
                                let tighten = ctl.streak > 0;
                                // Re-target to the measured equilibrium:
                                // the interval whose window would hold
                                // `target_dirty_bytes` at the current
                                // rate. Gated by direction so a hot
                                // streak only ever tightens (and vice
                                // versa), never overshoots past "hold".
                                let ideal = if delta == 0 {
                                    a.max
                                } else {
                                    Duration::from_nanos(
                                        (a.target_dirty_bytes as f64 * elapsed.as_nanos() as f64
                                            / delta as f64)
                                            as u64,
                                    )
                                };
                                ctl.interval = if tighten {
                                    ideal.clamp(a.min, ctl.interval)
                                } else {
                                    ideal.clamp(ctl.interval, a.max)
                                };
                                ctl.streak = 0;
                                intervals2[d]
                                    .store(ctl.interval.as_nanos() as u64, Ordering::Relaxed);
                                if tighten {
                                    // React now: the pending deadline was
                                    // scheduled under the old, longer
                                    // interval.
                                    deadlines[d] = deadlines[d].min(now + ctl.interval);
                                }
                            }
                            let next = deadline + a.min;
                            observe_at[d] = Some(if next > now { next } else { now + a.min });
                        }
                    } else {
                        if !ctl.skip_clean || mgr.domain_dirty(d) {
                            mgr.advance_domain(d);
                        } else {
                            mgr.note_advance_skipped(d);
                        }
                        // Fixed-rate rescheduling: from the deadline that
                        // just fired, re-anchoring only on a whole-period
                        // overrun.
                        let next = deadline + ctl.interval;
                        let now = Instant::now();
                        deadlines[d] = if next > now { next } else { now + ctl.interval };
                    }
                }
            })
            .expect("spawn epoch driver");
        AdvanceDriver {
            stop,
            thread: Some(thread),
            intervals,
        }
    }

    /// Domain `d`'s current checkpoint interval — for static cadences the
    /// configured one, for adaptive domains wherever the controller has
    /// moved it. `None` for the global [`AdvanceDriver::spawn`] form or
    /// an out-of-range `d`.
    pub fn current_interval(&self, d: usize) -> Option<Duration> {
        self.intervals
            .get(d)
            .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
    }

    /// Stops the driver and joins its thread (promptly, even mid-interval).
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Permanently stops the driver **without joining** its thread: the
    /// stop flag is raised and the thread unparked, so no advance fires
    /// after the in-flight one (if any) completes. Callable through a
    /// shared handle, unlike [`AdvanceDriver::stop`], which consumes the
    /// driver. The use case is a controlled-teardown harness: freeze the
    /// cadence *before* quiescing writers, so a backlogged driver can't
    /// spend the sudden idle time on one last catch-up advance and erase
    /// the undo tail the harness is about to measure. The thread is
    /// joined by `stop` or drop as usual.
    pub fn halt(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = &self.thread {
            t.thread().unpark();
        }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for AdvanceDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for AdvanceDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdvanceDriver")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpochOptions;
    use incll_pmem::{superblock, PArena};

    #[test]
    fn driver_advances_epochs() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::durable());
        let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.current_epoch() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        assert!(mgr.current_epoch() >= 4);
    }

    #[test]
    fn driver_stops_on_drop() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        {
            let _driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(1));
            std::thread::sleep(Duration::from_millis(10));
        }
        let settled = mgr.current_epoch();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(mgr.current_epoch(), settled);
    }

    #[test]
    fn stop_is_prompt_even_with_a_long_interval() {
        // Regression: the driver used to sleep out its full interval
        // before noticing `stop`; with a 60 s cadence that hung drop for
        // a minute. The parked wait must join far inside one interval.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::durable());
        let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        driver.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "stop took {:?}, must not wait out the 60 s interval",
            t0.elapsed()
        );
        assert_eq!(mgr.current_epoch(), 1, "no advance fired mid-interval");
    }

    #[test]
    fn drop_is_prompt_even_with_a_long_interval() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        let t0 = std::time::Instant::now();
        {
            let _driver = AdvanceDriver::spawn(mgr, Duration::from_secs(60));
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn per_domain_driver_runs_independent_cadences() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        // Domain 0 hot (2 ms, eager), domain 1 cold (lazy: skip while
        // clean, so it must never advance — nothing ever pins it).
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![
                DomainCadence::eager(Duration::from_millis(2)),
                DomainCadence::lazy(Duration::from_millis(2)),
            ],
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.current_epoch_of(0) < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        assert!(mgr.current_epoch_of(0) >= 4, "hot domain must tick");
        assert_eq!(
            mgr.current_epoch_of(1),
            1,
            "clean lazy domain must be skipped"
        );
    }

    #[test]
    fn lazy_cadence_advances_once_dirty() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![
                DomainCadence::lazy(Duration::from_millis(2)),
                DomainCadence::lazy(Duration::from_millis(2)),
            ],
        );
        let h = mgr.register();
        drop(h.pin_domain_mut(1)); // dirty domain 1 only
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.current_epoch_of(1) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        assert!(mgr.current_epoch_of(1) >= 2, "dirty domain must advance");
        assert_eq!(mgr.current_epoch_of(0), 1);
    }

    #[test]
    fn lazy_cadence_ignores_read_pins() {
        // Regression for the read-path contract: read-only pins (both the
        // generic `pin_domain` and the explicit `pin_domain_read`) must
        // not mark a domain dirty, so a pure-scan workload hammering a
        // lazily cadenced domain leaves its checkpoint timer idle.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![
                DomainCadence::lazy(Duration::from_millis(1)),
                DomainCadence::lazy(Duration::from_millis(1)),
            ],
        );
        let h = mgr.register();
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(20) {
            drop(h.pin_domain(0));
            drop(h.pin_domain_read(0));
            drop(h.pin_domain_read(1));
        }
        driver.stop();
        assert_eq!(
            mgr.current_epoch_of(0),
            1,
            "read pins must not dirty domain 0"
        );
        assert_eq!(
            mgr.current_epoch_of(1),
            1,
            "read pins must not dirty domain 1"
        );
    }

    #[test]
    fn driver_with_workers() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::new(arena, EpochOptions::durable());
        let driver = AdvanceDriver::spawn(mgr.clone(), Duration::from_millis(1));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let mgr = mgr.clone();
                s.spawn(move || {
                    let h = mgr.register();
                    for _ in 0..10_000 {
                        let _g = h.pin();
                    }
                });
            }
        });
        driver.stop();
        assert!(mgr.current_epoch() >= 1);
    }

    #[test]
    fn slow_advances_do_not_stretch_the_cadence() {
        // Regression (fixed-rate scheduling): deadlines used to be
        // recomputed from `Instant::now()` *after* the advance completed,
        // so a slow flush/hook stretched every subsequent period
        // (fixed-delay). With a 14 ms boundary hook on a 20 ms cadence,
        // fixed-delay manages at most 1000/34 ≈ 29 advances per second;
        // fixed-rate holds the 20 ms period (the hook fits inside it) and
        // reaches ~50.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 1);
        mgr.add_advance_hook_on(
            0,
            Box::new(|_| std::thread::sleep(Duration::from_millis(14))),
        );
        let driver = AdvanceDriver::spawn_per_domain(
            mgr.clone(),
            vec![DomainCadence::eager(Duration::from_millis(20))],
        );
        std::thread::sleep(Duration::from_millis(1_000));
        driver.stop();
        let advances = mgr.current_epoch_of(0) - 1;
        assert!(
            advances >= 32,
            "{advances} advances in 1 s: the slow hook stretched the \
             cadence (fixed-delay scheduling)"
        );
    }

    #[test]
    fn adaptive_cadence_tightens_hot_and_relaxes_cold() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        let cfg = AdaptiveCadence {
            min: Duration::from_millis(2),
            max: Duration::from_millis(64),
            target_dirty_bytes: 1024,
            hysteresis: 2,
        };
        let driver = AdvanceDriver::spawn_per_domain(mgr.clone(), vec![cfg; 2]);
        let start = driver.current_interval(0).unwrap();
        assert!(
            start > cfg.min && start < cfg.max,
            "starts between the clamps (geometric midpoint), got {start:?}"
        );
        assert_eq!(driver.current_interval(2), None, "out of range");

        // Domain 0 hot: a writer keeps it dirty and logs far past the
        // target every window. Domain 1 stays untouched.
        let stop = AtomicBool::new(false);
        let hot_live = std::thread::scope(|s| {
            let mgr2 = mgr.clone();
            let stop = &stop;
            s.spawn(move || {
                let h = mgr2.register();
                while !stop.load(Ordering::Relaxed) {
                    drop(h.pin_domain_mut(0));
                    mgr2.note_logged_bytes(0, 4096);
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            let deadline = Instant::now() + Duration::from_secs(5);
            while (driver.current_interval(1) != Some(cfg.max)
                || driver.current_interval(0) != Some(cfg.min)
                || mgr.current_epoch_of(0) < 4
                || mgr.domain_counters(1).advances_skipped == 0)
                && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            // Sample the hot interval while the writer is still running:
            // the moment it stops, domain 0 turns idle and the controller
            // (correctly) starts relaxing it.
            let hot_live = driver.current_interval(0);
            stop.store(true, Ordering::Relaxed);
            hot_live
        });
        assert_eq!(
            driver.current_interval(1),
            Some(cfg.max),
            "cold domain must relax to max"
        );
        assert_eq!(hot_live, Some(cfg.min), "hot domain must hold min");
        driver.stop();
        assert!(
            mgr.current_epoch_of(0) >= 4,
            "hot domain must have checkpointed repeatedly"
        );
        assert_eq!(
            mgr.current_epoch_of(1),
            1,
            "clean adaptive domain is skipped, never advanced"
        );
        assert!(
            mgr.domain_counters(1).advances_skipped > 0,
            "skipped ticks must be counted"
        );
        assert_eq!(mgr.domain_counters(1).advances_fired, 0);
    }

    #[test]
    fn adaptive_relaxation_never_starves_a_dirty_domain() {
        // Starvation guard: skip_clean + adaptive relaxation must never
        // leave a dirty domain un-advanced past `max`. Pause the writer
        // until the controller has fully relaxed, then resume it: the
        // dirty domain must advance within a small multiple of `max`,
        // and the interval must never exceed `max`.
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        let mgr = EpochManager::with_domains(arena, EpochOptions::durable(), 1);
        let cfg = AdaptiveCadence {
            min: Duration::from_millis(5),
            max: Duration::from_millis(50),
            target_dirty_bytes: 1 << 20,
            hysteresis: 1,
        };
        let driver = AdvanceDriver::spawn_per_domain(mgr.clone(), vec![cfg]);

        // Paused writer: every window is cold, so the controller relaxes.
        let deadline = Instant::now() + Duration::from_secs(5);
        while driver.current_interval(0) != Some(cfg.max) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(driver.current_interval(0), Some(cfg.max));
        // Fully relaxed and still idle: the clamp must hold at max.
        std::thread::sleep(3 * cfg.max);
        assert_eq!(
            driver.current_interval(0),
            Some(cfg.max),
            "relaxation must clamp at max"
        );
        assert_eq!(mgr.current_epoch_of(0), 1, "idle domain never advanced");

        // Resumed writer: one dirty stamp must be checkpointed within the
        // starvation bound (max, plus generous scheduler slack).
        let h = mgr.register();
        drop(h.pin_domain_mut(0));
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs(5);
        while mgr.current_epoch_of(0) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let waited = t0.elapsed();
        assert!(
            mgr.current_epoch_of(0) >= 2,
            "dirty domain must advance after the writer resumes"
        );
        assert!(
            waited <= 10 * cfg.max,
            "dirty domain waited {waited:?}, far past the {:?} bound",
            cfg.max
        );
        assert!(
            driver.current_interval(0).unwrap() <= cfg.max,
            "interval may never exceed max"
        );
        driver.stop();
    }

    #[test]
    fn cadence_conversions_and_constructors_agree() {
        let iv = Duration::from_millis(7);
        assert_eq!(Cadence::lazy(iv), Cadence::from(DomainCadence::lazy(iv)));
        assert_eq!(Cadence::eager(iv), Cadence::from(DomainCadence::eager(iv)));
        let a = AdaptiveCadence::default();
        assert_eq!(Cadence::adaptive(a), Cadence::from(a));
        assert!(a.min <= a.max);
        assert!(a.hysteresis >= 1);
        let start = Cadence::Adaptive(a).initial_interval();
        assert!(start >= a.min && start <= a.max, "start within clamps");
        assert_eq!(Cadence::lazy(iv).initial_interval(), iv);
    }
}
