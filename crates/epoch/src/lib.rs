//! Epoch management for fine-grain checkpointing.
//!
//! The paper partitions execution into short epochs (64 ms). At the start of
//! each epoch every worker thread is briefly quiesced at a **global
//! barrier** (one of the two MT+ enhancements, §6), the whole cache is
//! flushed to NVM (`wbinvd`, §6.2), the durable epoch counter is bumped,
//! and per-epoch state (external log, allocator pending-free lists) is
//! reset. Epochs double as the memory-reclamation grace period: an object
//! freed in epoch *e* may be reused from *e + 1* on, which is exactly the
//! property the durable allocator's recovery argument needs (§5).
//!
//! This crate provides:
//!
//! * [`EpochManager`] — global epoch word, thread registration, the
//!   Dekker-style pin/advance protocol, durable epoch recording, and
//!   epoch-boundary hooks.
//! * [`ThreadHandle`]/[`Guard`] — per-thread epoch pinning. Every data
//!   structure operation runs inside a guard; the epoch cannot advance
//!   while any guard is live.
//! * [`AdvanceDriver`] — a background thread advancing the epoch on a
//!   timer, like the paper's 64 ms cadence.
//!
//! # Example
//!
//! ```
//! use incll_pmem::{superblock, PArena};
//! use incll_epoch::{EpochManager, EpochOptions};
//!
//! # fn main() -> Result<(), incll_pmem::Error> {
//! let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
//! superblock::format(&arena);
//! let mgr = EpochManager::new(arena, EpochOptions::durable());
//! let handle = mgr.register();
//! {
//!     let guard = handle.pin();
//!     assert_eq!(guard.epoch(), 1);
//! } // guard dropped: thread quiescent
//! mgr.advance();
//! assert_eq!(handle.pin().epoch(), 2);
//! # Ok(())
//! # }
//! ```

mod driver;
mod manager;

pub use driver::AdvanceDriver;
pub use manager::{AdvanceHook, EpochManager, EpochOptions, Guard, ThreadHandle};

/// The paper's epoch length: 64 ms (Masstree's reclamation interval, §4).
pub const DEFAULT_EPOCH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(64);
