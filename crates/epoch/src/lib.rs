//! Epoch management for fine-grain checkpointing, organised as
//! independent per-shard epoch **domains**.
//!
//! The paper partitions execution into short epochs (64 ms). At the start of
//! each epoch every worker thread is briefly quiesced at a **global
//! barrier** (one of the two MT+ enhancements, §6), the whole cache is
//! flushed to NVM (`wbinvd`, §6.2), the durable epoch counter is bumped,
//! and per-epoch state (external log, allocator pending-free lists) is
//! reset. Epochs double as the memory-reclamation grace period: an object
//! freed in epoch *e* may be reused from *e + 1* on, which is exactly the
//! property the durable allocator's recovery argument needs (§5).
//!
//! A single-domain [`EpochManager`] (the default) is exactly that global
//! epoch. With [`EpochManager::with_domains`], each keyspace shard gets
//! its **own** counter, quiescence set, advance path and boundary hooks:
//! advancing one domain quiesces only the threads pinned in it
//! ([`ThreadHandle::pin_domain`]) and issues a *scoped* flush
//! ([`incll_pmem::PArena::flush_domain`]) covering only that domain's
//! dirty lines, so a hot shard can checkpoint on a tight cadence while
//! cold shards idle — without ever stalling each other.
//!
//! This crate provides:
//!
//! * [`EpochManager`] — the domain array: per-domain epoch words, thread
//!   registration, the Dekker-style pin/advance protocol, durable epoch
//!   recording, boundary hooks, and pre-flush hooks (where failed-epoch
//!   compaction sweeps run).
//! * [`ThreadHandle`]/[`Guard`] — per-thread, per-domain epoch pinning.
//!   Every data structure operation runs inside a guard; a domain cannot
//!   advance while any of *its* guards is live. Mutating operations pin
//!   with [`ThreadHandle::pin_domain_mut`], which feeds the dirty-work
//!   heuristic ([`EpochManager::domain_dirty`]).
//! * [`AdvanceDriver`] — a background thread advancing on a timer, like
//!   the paper's 64 ms cadence; [`AdvanceDriver::spawn_per_domain`] gives
//!   every domain an independent policy ([`Cadence`]): a fixed
//!   [`DomainCadence`] (optionally skipping domains with no dirty work)
//!   or an [`AdaptiveCadence`] controller that follows each domain's
//!   measured write rate ([`EpochManager::domain_counters`]) between
//!   `min` and `max`, with hysteresis damping.
//!
//! # Example
//!
//! ```
//! use incll_pmem::{superblock, PArena};
//! use incll_epoch::{EpochManager, EpochOptions};
//!
//! # fn main() -> Result<(), incll_pmem::Error> {
//! let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
//! superblock::format(&arena);
//! let mgr = EpochManager::new(arena, EpochOptions::durable());
//! let handle = mgr.register();
//! {
//!     let guard = handle.pin();
//!     assert_eq!(guard.epoch(), 1);
//! } // guard dropped: thread quiescent
//! mgr.advance();
//! assert_eq!(handle.pin().epoch(), 2);
//! # Ok(())
//! # }
//! ```

mod driver;
mod manager;

pub use driver::{AdaptiveCadence, AdvanceDriver, Cadence, DomainCadence};
pub use manager::{AdvanceHook, DomainCounters, EpochManager, EpochOptions, Guard, ThreadHandle};

/// The paper's epoch length: 64 ms (Masstree's reclamation interval, §4).
pub const DEFAULT_EPOCH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(64);
